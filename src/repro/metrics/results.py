"""Result containers for the four-configuration experiments.

Every figure pair in the paper reports, per configuration:

* overall execution time normalized to "normal";
* host processor utilization ``(1 - idle/exec)``;
* host I/O traffic normalized to "normal";

plus an execution-time breakdown (CPU busy / cache stall / idle) for the
host ("n-HP", "n+p-HP", "a-HP", "a+p-HP") and the switch CPU ("a-SP",
"a+p-SP").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..cpu.accounting import Breakdown

#: Breakdown labels used in the paper's figures.
_BREAKDOWN_PREFIX = {
    "normal": "n",
    "normal+pref": "n+p",
    "active": "a",
    "active+pref": "a+p",
}


@dataclass
class CaseResult:
    """Everything measured for one configuration of one benchmark."""

    label: str
    exec_ps: int
    host: Breakdown
    switch_cpus: List[Breakdown] = field(default_factory=list)
    host_bytes_in: int = 0
    host_bytes_out: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def host_traffic_bytes(self) -> int:
        """Total data in/out of the host (the paper's traffic metric)."""
        return self.host_bytes_in + self.host_bytes_out

    @property
    def host_utilization(self) -> float:
        return self.host.utilization

    @property
    def prefix(self) -> str:
        return _BREAKDOWN_PREFIX.get(self.label, self.label)

    def breakdown_rows(self):
        """(label, breakdown) rows this case contributes to a figure."""
        rows = [(f"{self.prefix}-HP", self.host)]
        for breakdown in self.switch_cpus:
            rows.append((f"{self.prefix}-SP", breakdown))
        return rows


@dataclass
class BenchmarkResult:
    """All four configurations of one benchmark."""

    name: str
    cases: Dict[str, CaseResult]

    def case(self, label: str) -> CaseResult:
        return self.cases[label]

    # ------------------------------------------------------------------
    # The paper's three normalized metrics
    # ------------------------------------------------------------------
    def normalized_time(self, label: str) -> float:
        """Execution time relative to the "normal" case."""
        return self.cases[label].exec_ps / self.cases["normal"].exec_ps

    def utilization(self, label: str) -> float:
        return self.cases[label].host_utilization

    def normalized_traffic(self, label: str) -> float:
        base = self.cases["normal"].host_traffic_bytes
        if base == 0:
            return 0.0
        return self.cases[label].host_traffic_bytes / base

    # ------------------------------------------------------------------
    # Derived speedups as quoted in the paper's prose
    # ------------------------------------------------------------------
    def speedup(self, over: str, of: str) -> float:
        """How many times faster ``of`` is than ``over``."""
        return self.cases[over].exec_ps / self.cases[of].exec_ps

    @property
    def active_speedup(self) -> float:
        """active vs normal (both synchronous)."""
        return self.speedup("normal", "active")

    @property
    def active_pref_speedup(self) -> float:
        """active+pref vs normal+pref."""
        return self.speedup("normal+pref", "active+pref")

    def summary(self) -> Dict[str, Dict[str, float]]:
        """The three figure metrics for every case."""
        return {
            label: {
                "normalized_time": self.normalized_time(label),
                "host_utilization": self.utilization(label),
                "normalized_traffic": self.normalized_traffic(label),
            }
            for label in self.cases
        }

    def report(self):
        """A :class:`~repro.metrics.Report` over this result.

        ``result.report().performance()`` etc.; the unified reporting
        entry point.
        """
        from .report import Report
        return Report(self)

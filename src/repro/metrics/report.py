"""Text rendering of the paper's figures.

``performance_table`` renders the Figure 3/5/7/9/11/13 style bars
(normalized execution time, host utilization, normalized host traffic)
and ``breakdown_table`` the Figure 4/6/8/10/12/14 style execution-time
breakdowns, as aligned text tables suitable for the benchmark harness
output and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..sim.units import ps_to_ms
from .results import BenchmarkResult

#: The paper's presentation order (kept local: metrics must not depend
#: on the cluster layer, which itself uses these reports).
CASE_ORDER = ("normal", "normal+pref", "active", "active+pref")


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))


def render_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Align ``rows`` under ``headers``."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [_format_row(headers, widths),
             _format_row(["-" * w for w in widths], widths)]
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def performance_table(result: BenchmarkResult) -> str:
    """The three normalized metrics for each configuration."""
    rows = []
    for label in CASE_ORDER:
        if label not in result.cases:
            continue
        case = result.cases[label]
        rows.append([
            label,
            f"{result.normalized_time(label):.3f}",
            f"{result.utilization(label):.3f}",
            f"{result.normalized_traffic(label):.3f}",
            f"{ps_to_ms(case.exec_ps):.2f}",
        ])
    return (f"{result.name}: performance (Figure style)\n"
            + render_table(
                ["case", "norm. time", "host util", "norm. traffic",
                 "exec (ms)"], rows))


def breakdown_table(result: BenchmarkResult) -> str:
    """Execution-time breakdown rows for each processor."""
    rows = []
    for label in CASE_ORDER:
        if label not in result.cases:
            continue
        for row_label, breakdown in result.cases[label].breakdown_rows():
            rows.append([
                row_label,
                f"{breakdown.busy_frac:.1%}",
                f"{breakdown.stall_frac:.1%}",
                f"{breakdown.idle_frac:.1%}",
            ])
    return (f"{result.name}: execution-time breakdown (Figure style)\n"
            + render_table(["cpu", "busy", "cache stall", "idle"], rows))


def reliability_table(result: BenchmarkResult) -> str:
    """Fault/recovery metrics per configuration (chaos runs).

    Renders every ``CaseResult.extra`` key observed across the cases —
    retransmits, disk/SCSI retries, contained handler crashes, degraded
    time — one column per case.  Empty string on fault-free results.
    """
    labels = [label for label in CASE_ORDER if label in result.cases]
    labels += [label for label in result.cases if label not in labels]
    keys: List[str] = []
    for label in labels:
        for key in result.cases[label].extra:
            if key not in keys:
                keys.append(key)
    if not keys:
        return ""
    rows = []
    for key in keys:
        row = [key]
        for label in labels:
            value = result.cases[label].extra.get(key)
            row.append("-" if value is None else f"{value:g}")
        rows.append(row)
    return (f"{result.name}: reliability (faults injected / recovered)\n"
            + render_table(["metric"] + labels, rows))


def latency_table(result) -> str:
    """Tail-latency report of an open-loop service result.

    Duck-typed on ``result.latency_summary()`` (see
    ``repro.traffic.ServiceResult``): per-series count/mean/p50/p95/p99/
    max plus the rate block (offered, throughput, goodput, drop rate,
    SLO attainment).  Empty string when the result has no latency data —
    closed-loop results simply omit this section.
    """
    summarize = getattr(result, "latency_summary", None)
    if summarize is None:
        return ""
    data = summarize()
    percentiles = sorted(
        float(key[1:]) for key in next(iter(data["series"].values()), {})
        if key.startswith("p"))
    rows = []
    for label, series in data["series"].items():
        if not series.get("count"):
            continue
        rows.append([label, f"{int(series['count'])}",
                     f"{series['mean']:.1f}"]
                    + [f"{series[f'p{p:g}']:.1f}" for p in percentiles]
                    + [f"{series['max']:.1f}"])
    headers = (["series", "count", "mean"]
               + [f"p{p:g}" for p in percentiles] + ["max"])
    sections = [f"{result.name}: tail latency",
                render_table(headers, rows)]
    rate_rows = [[key, f"{value:.4g}"]
                 for key, value in data["rates"].items()]
    if data.get("slo_ms") is not None:
        rate_rows.append(["SLO (ms)", f"{data['slo_ms']:g}"])
    if data.get("worst_stream_p99_us") is not None:
        rate_rows.append(["worst-stream p99 (us)",
                          f"{data['worst_stream_p99_us']:.1f}"])
    sections.append(render_table(["rate", "value"], rate_rows))
    return "\n".join(sections)


class Report:
    """All figure-style renderings of one result object.

    The preferred reporting API: ``result.report().performance()``
    instead of the free functions (which remain as the implementation).
    ``str(report)`` or :meth:`render` concatenates every non-empty
    section.  Works for closed-loop :class:`BenchmarkResult` values
    (performance/breakdown/...) and open-loop
    ``repro.traffic.ServiceResult`` values (:meth:`latency`): sections
    that do not apply to the wrapped result render as empty strings.
    """

    def __init__(self, result):
        self.result = result

    def _has_cases(self) -> bool:
        return bool(getattr(self.result, "cases", None))

    def performance(self) -> str:
        """Normalized time / utilization / traffic per configuration."""
        return performance_table(self.result) if self._has_cases() else ""

    def breakdown(self) -> str:
        """Busy / cache-stall / idle rows per processor."""
        return breakdown_table(self.result) if self._has_cases() else ""

    def reliability(self) -> str:
        """Fault-injection metrics; empty string on fault-free runs."""
        return reliability_table(self.result) if self._has_cases() else ""

    def latency(self) -> str:
        """Tail-latency percentiles, goodput, and drop rate (service
        results — ``repro.serve``); empty for closed-loop results."""
        return latency_table(self.result)

    def bars(self) -> str:
        """The three figure metrics as ASCII bar groups."""
        return performance_bars(self.result) if self._has_cases() else ""

    def summary(self) -> dict:
        """Machine-readable figure metrics (per-case dict)."""
        summarize = getattr(self.result, "summary", None)
        if summarize is None:
            return {}
        return summarize()

    def timeline(self, case: Optional[str] = None, width: int = 64) -> str:
        """Per-component trace timelines (``repro.run(..., trace=True)``).

        Renders an ASCII occupancy strip per component for each traced
        case (or just ``case``).  Empty string when the result carries
        no traces — tracing is opt-in, so untraced reports simply omit
        this section.
        """
        traces = getattr(self.result, "traces", None)
        if not traces:
            return ""
        from ..obs.timeline import render_timeline
        labels = [case] if case is not None else list(traces)
        sections = []
        for label in labels:
            collector = traces[label]
            sections.append(f"{self.result.name} [{label}]: timeline\n"
                            + render_timeline(collector, width=width))
        return "\n\n".join(sections)

    def profile(self, case: Optional[str] = None, top: int = 10,
                sort: str = "cumulative") -> str:
        """Top-N profile entries (``repro.run(..., profile=True)``).

        Renders the ``top`` hottest functions per profiled case (or just
        ``case``), sorted by ``sort`` (any :mod:`pstats` sort key, e.g.
        ``"cumulative"`` or ``"tottime"``).  Empty string when the
        result carries no profiles — profiling is opt-in, so unprofiled
        reports simply omit this section.
        """
        profiles = (getattr(self.result, "stats", None) or {}).get("profiles")
        if not profiles:
            return ""
        import io
        import pstats
        labels = [case] if case is not None else list(profiles)
        sections = []
        for label in labels:
            path = profiles[label]
            buffer = io.StringIO()
            stats = pstats.Stats(path, stream=buffer)
            stats.sort_stats(sort).print_stats(top)
            body = "\n".join(
                line for line in buffer.getvalue().splitlines()
                if line.strip())
            sections.append(f"{self.result.name} [{label}]: "
                            f"profile ({path})\n{body}")
        return "\n\n".join(sections)

    def render(self) -> str:
        """Every non-empty section, blank-line separated."""
        sections = [self.performance(), self.breakdown(),
                    self.reliability(), self.latency()]
        return "\n\n".join(s for s in sections if s)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return f"<Report {self.result.name!r}>"


def comparison_table(name: str,
                     rows: Iterable[Tuple[str, float, Optional[float]]]) -> str:
    """Paper-vs-measured comparison (for EXPERIMENTS.md)."""
    formatted: List[List[str]] = []
    for label, measured, paper in rows:
        formatted.append([
            label,
            f"{measured:.3f}",
            "-" if paper is None else f"{paper:.3f}",
        ])
    return f"{name}: paper vs measured\n" + render_table(
        ["metric", "measured", "paper"], formatted)


def bar_chart(title: str, rows: Sequence[Tuple[str, float]],
              width: int = 40, ceiling: Optional[float] = None) -> str:
    """Horizontal ASCII bars — the shape of the paper's figures.

    ``rows`` are (label, value) pairs; bars scale so the largest value
    (or ``ceiling``) spans ``width`` characters.
    """
    if width < 1:
        raise ValueError("width must be positive")
    values = [value for _, value in rows]
    top = ceiling if ceiling is not None else (max(values) if values else 1.0)
    top = top or 1.0
    label_width = max((len(label) for label, _ in rows), default=0)
    lines = [title]
    for label, value in rows:
        filled = int(round(min(value, top) / top * width))
        bar = "#" * filled + ("" if filled else "|")
        lines.append(f"{label:>{label_width}}  {bar} {value:.3f}")
    return "\n".join(lines)


def performance_bars(result: BenchmarkResult) -> str:
    """The three figure metrics as bar groups (Figure 3/5/7... style)."""
    sections = []
    for metric, getter in (
            ("execution time (normalized)", result.normalized_time),
            ("host utilization", result.utilization),
            ("host I/O traffic (normalized)", result.normalized_traffic)):
        rows = [(label, getter(label)) for label in CASE_ORDER
                if label in result.cases]
        sections.append(bar_chart(f"{result.name}: {metric}", rows,
                                  ceiling=max(1.0, max(v for _, v in rows))))
    return "\n\n".join(sections)

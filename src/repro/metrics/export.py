"""CSV export for results and sweep rows.

The benchmark harness prints human tables; downstream analysis
(plotting the figures, tracking regressions over time) wants flat
files.  ``benchmark_result_to_csv`` flattens a four-configuration
result; ``rows_to_csv`` handles the sweep-style list-of-dicts the
reduction and ablation experiments return.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Mapping, Optional

from .results import BenchmarkResult

#: Column order for four-configuration exports.
_CASE_FIELDS = (
    "benchmark", "case", "exec_ps", "normalized_time", "host_utilization",
    "normalized_traffic", "host_busy_frac", "host_stall_frac",
    "host_idle_frac", "host_bytes_in", "host_bytes_out",
    "switch_busy_frac", "switch_stall_frac",
)


def benchmark_result_rows(result: BenchmarkResult):
    """Flatten a BenchmarkResult into one dict per configuration."""
    for label, case in result.cases.items():
        switch = case.switch_cpus[0] if case.switch_cpus else None
        yield {
            "benchmark": result.name,
            "case": label,
            "exec_ps": case.exec_ps,
            "normalized_time": result.normalized_time(label),
            "host_utilization": result.utilization(label),
            "normalized_traffic": result.normalized_traffic(label),
            "host_busy_frac": case.host.busy_frac,
            "host_stall_frac": case.host.stall_frac,
            "host_idle_frac": case.host.idle_frac,
            "host_bytes_in": case.host_bytes_in,
            "host_bytes_out": case.host_bytes_out,
            "switch_busy_frac": switch.busy_frac if switch else "",
            "switch_stall_frac": switch.stall_frac if switch else "",
        }


def benchmark_result_to_csv(result: BenchmarkResult,
                            path: Optional[str] = None) -> str:
    """Write (or return) the result as CSV."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_CASE_FIELDS)
    writer.writeheader()
    for row in benchmark_result_rows(result):
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", newline="") as handle:
            handle.write(text)
    return text


def rows_to_csv(rows: Iterable[Mapping], path: Optional[str] = None) -> str:
    """Write (or return) sweep-style rows (list of dicts) as CSV."""
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to export")
    fieldnames = list(rows[0])
    for row in rows:
        if list(row) != fieldnames:
            raise ValueError("rows have inconsistent columns")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    writer.writerows(rows)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", newline="") as handle:
            handle.write(text)
    return text

"""Result containers and figure-style reporting."""

from .report import (
    Report,
    bar_chart,
    breakdown_table,
    comparison_table,
    latency_table,
    performance_bars,
    performance_table,
    reliability_table,
    render_table,
)
from .export import benchmark_result_rows, benchmark_result_to_csv, rows_to_csv
from .results import BenchmarkResult, CaseResult
from .sampling import BusyTracker, QuantileEstimator, TimeWeighted

__all__ = [
    "BenchmarkResult",
    "CaseResult",
    "Report",
    "BusyTracker",
    "QuantileEstimator",
    "benchmark_result_rows",
    "benchmark_result_to_csv",
    "rows_to_csv",
    "TimeWeighted",
    "bar_chart",
    "breakdown_table",
    "comparison_table",
    "latency_table",
    "performance_bars",
    "performance_table",
    "reliability_table",
    "render_table",
]

"""Time-weighted statistics and streaming quantiles.

Utilization, queue depth, and level metrics need *time-weighted*
averages (a queue that is empty for 9 ms and holds 10 items for 1 ms
averages 1.0, not 5.0).  :class:`TimeWeighted` integrates a piecewise-
constant signal; :class:`BusyTracker` specialises it for busy/idle
signals and reports utilization.

:class:`QuantileEstimator` records per-request latencies for the
open-loop traffic layer: exact (numpy.percentile-compatible) up to a
sample budget, then collapsing to a DDSketch-style log-bucketed
histogram with a relative-error bound, mergeable across streams.

These are pull-free: components call :meth:`TimeWeighted.set` when the
value changes; nothing polls.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional


class TimeWeighted:
    """Integrates a piecewise-constant value over simulated time."""

    def __init__(self, env, initial: float = 0.0):
        self.env = env
        self._value = initial
        self._start_ps = env.now
        self._last_change_ps = env.now
        self._integral = 0.0  # value x ps
        self._min = initial
        self._max = initial

    @property
    def value(self) -> float:
        """The current value."""
        return self._value

    def set(self, value: float) -> None:
        """Change the value from now on."""
        now = self.env.now
        self._integral += self._value * (now - self._last_change_ps)
        self._last_change_ps = now
        self._value = value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def add(self, delta: float) -> None:
        """Adjust the value by ``delta`` (queue join/leave)."""
        self.set(self._value + delta)

    def credit(self, area: float) -> None:
        """Add ``area`` (value x ps) directly to the running integral.

        The burst fast path computes component busy intervals
        analytically, at times that never coincide with ``env.now``, so
        it cannot toggle the signal with :meth:`set`.  Crediting the
        interval's area keeps :meth:`mean` bit-identical to the
        event-driven toggles as long as the credited intervals are
        disjoint and the signal itself stays at its initial value —
        exactly the burst-mode invariant (a component is either fully
        analytic or fully event-driven for a run, never both).
        """
        self._integral += area

    def mean(self, until_ps: Optional[int] = None) -> float:
        """Time-weighted mean from creation to ``until_ps`` (default now).

        ``until_ps`` must not predate the last :meth:`set`/:meth:`add`:
        only the running integral is retained, so a mean ending inside
        already-integrated history cannot be reconstructed — and naively
        integrating a *negative* open segment would silently corrupt
        utilization figures.  Such a query raises :class:`ValueError`.
        ``until_ps`` beyond ``env.now`` is allowed and extrapolates the
        current value.
        """
        end = self.env.now if until_ps is None else until_ps
        if end < self._last_change_ps:
            raise ValueError(
                f"mean(until_ps={end}) predates the last change at "
                f"{self._last_change_ps} ps; time-weighted history before "
                f"that point is not retained")
        span = end - self._start_ps
        if span <= 0:
            return self._value
        # Integrate the still-open segment.
        integral = self._integral + self._value * (end - self._last_change_ps)
        return integral / span

    @property
    def minimum(self) -> float:
        return self._min

    @property
    def maximum(self) -> float:
        return self._max

    def __repr__(self) -> str:
        return f"<TimeWeighted now={self._value} mean={self.mean():.3f}>"


class BusyTracker:
    """Binary busy/idle signal with utilization reporting."""

    def __init__(self, env):
        self.env = env
        self._signal = TimeWeighted(env, initial=0.0)
        self._depth = 0  # nested busy sections

    def enter(self) -> None:
        """Mark the start of a busy section (nestable)."""
        self._depth += 1
        if self._depth == 1:
            self._signal.set(1.0)

    def exit(self) -> None:
        """Mark the end of a busy section."""
        if self._depth <= 0:
            raise ValueError("exit() without matching enter()")
        self._depth -= 1
        if self._depth == 0:
            self._signal.set(0.0)

    def credit(self, busy_ps: int) -> None:
        """Account a busy interval computed analytically (burst path).

        Equivalent to an :meth:`enter`/:meth:`exit` pair spanning
        ``busy_ps`` of simulated time: the event-driven pair integrates
        ``1.0 * busy_ps`` into the signal, and crediting adds the same
        float in the same order, so :meth:`utilization` stays
        bit-identical between the two paths.
        """
        self._signal.credit(busy_ps)

    @property
    def busy(self) -> bool:
        return self._depth > 0

    def utilization(self, until_ps: Optional[int] = None) -> float:
        """Fraction of time busy since creation."""
        return self._signal.mean(until_ps)

    def __repr__(self) -> str:
        return f"<BusyTracker {'busy' if self.busy else 'idle'}>"


class QuantileEstimator:
    """Streaming, mergeable quantiles with a relative-error bound.

    Two regimes, switched automatically:

    * **exact** — up to ``exact_limit`` samples are kept verbatim and
      :meth:`quantile` linearly interpolates exactly like
      ``numpy.percentile(..., method="linear")``;
    * **sketch** — past the budget the samples collapse into
      log-spaced buckets (``gamma = (1 + eps) / (1 - eps)``, the
      DDSketch indexing scheme), after which every reported quantile
      is within relative error ``eps`` of the true sample quantile.

    Estimators with the same ``eps`` merge losslessly (bucket counts
    add; two small exact estimators stay exact), so per-stream
    latency series combine into aggregate percentiles without keeping
    every sample.  Values must be non-negative — these are latencies,
    sizes, and counts.  Pure Python and deterministic: identical add
    sequences yield identical state.
    """

    def __init__(self, eps: float = 0.01, exact_limit: int = 512):
        if not 0.0 < eps < 1.0:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        if exact_limit < 0:
            raise ValueError(f"exact_limit must be >= 0, got {exact_limit}")
        self.eps = eps
        self.exact_limit = exact_limit
        self._gamma = (1.0 + eps) / (1.0 - eps)
        self._log_gamma = math.log(self._gamma)
        self._samples: Optional[List[float]] = []  # None once sketched
        self._buckets: Dict[int, int] = {}
        self._zeros = 0
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # -- recording ----------------------------------------------------

    def add(self, value: float) -> None:
        """Record one observation (non-negative)."""
        value = float(value)
        if value < 0.0 or value != value:  # negative or NaN
            raise ValueError(f"QuantileEstimator values must be "
                             f"non-negative finite numbers, got {value}")
        self._count += 1
        self._sum += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if self._samples is not None:
            self._samples.append(value)
            if len(self._samples) > self.exact_limit:
                self._collapse()
        elif value == 0.0:
            self._zeros += 1
        else:
            key = self._key(value)
            self._buckets[key] = self._buckets.get(key, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def _key(self, value: float) -> int:
        return int(math.ceil(math.log(value) / self._log_gamma))

    def _bucket_value(self, key: int) -> float:
        # Midpoint (harmonic) of (gamma**(key-1), gamma**key]: within
        # eps relative error of every sample mapped to the bucket.
        return 2.0 * self._gamma ** key / (self._gamma + 1.0)

    def _collapse(self) -> None:
        samples, self._samples = self._samples, None
        for value in samples or ():
            if value == 0.0:
                self._zeros += 1
            else:
                key = self._key(value)
                self._buckets[key] = self._buckets.get(key, 0) + 1

    # -- querying -----------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def is_exact(self) -> bool:
        """True while every sample is retained verbatim."""
        return self._samples is not None

    @property
    def minimum(self) -> Optional[float]:
        return self._min

    @property
    def maximum(self) -> Optional[float]:
        return self._max

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> Optional[float]:
        return self._sum / self._count if self._count else None

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (``0 <= q <= 1``); ``None`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self._count == 0:
            return None
        if self._samples is not None:
            ordered = sorted(self._samples)
            h = (len(ordered) - 1) * q
            lo = int(math.floor(h))
            hi = int(math.ceil(h))
            if lo == hi:
                return ordered[lo]
            return ordered[lo] + (ordered[hi] - ordered[lo]) * (h - lo)
        # Sketch: smallest bucket whose cumulative count covers the rank.
        rank = q * (self._count - 1)
        cumulative = self._zeros
        if cumulative > rank:
            return 0.0
        for key in sorted(self._buckets):
            cumulative += self._buckets[key]
            if cumulative > rank:
                # Clamp into the observed range so p0/p100 stay honest.
                value = self._bucket_value(key)
                return min(max(value, self._min or 0.0),
                           self._max if self._max is not None else value)
        return self._max

    def percentile(self, p: float) -> Optional[float]:
        """The ``p``-th percentile (``0 <= p <= 100``)."""
        return self.quantile(p / 100.0)

    def summary(self, percentiles=(50.0, 95.0, 99.0)) -> Dict[str, float]:
        """``{"count", "mean", "p50", ..., "max"}`` for reporting."""
        out: Dict[str, float] = {"count": float(self._count)}
        if self._count == 0:
            return out
        out["mean"] = self._sum / self._count
        for p in percentiles:
            label = f"p{p:g}"
            out[label] = self.percentile(p)
        out["max"] = self._max
        return out

    # -- merging ------------------------------------------------------

    def merge(self, other: "QuantileEstimator") -> "QuantileEstimator":
        """Fold ``other`` into this estimator (in place; returns self).

        Requires matching ``eps`` — bucket boundaries must line up for
        counts to add without losing the error bound.
        """
        if other.eps != self.eps:
            raise ValueError(
                f"cannot merge QuantileEstimators with different eps "
                f"({self.eps} vs {other.eps})")
        if other._count == 0:
            return self
        self._count += other._count
        self._sum += other._sum
        if other._min is not None:
            self._min = other._min if self._min is None else \
                min(self._min, other._min)
        if other._max is not None:
            self._max = other._max if self._max is None else \
                max(self._max, other._max)
        if self._samples is not None and other._samples is not None and \
                len(self._samples) + len(other._samples) <= self.exact_limit:
            self._samples.extend(other._samples)
            return self
        if self._samples is not None:
            self._collapse()
        if other._samples is not None:
            for value in other._samples:
                if value == 0.0:
                    self._zeros += 1
                else:
                    key = self._key(value)
                    self._buckets[key] = self._buckets.get(key, 0) + 1
        else:
            self._zeros += other._zeros
            for key, n in other._buckets.items():
                self._buckets[key] = self._buckets.get(key, 0) + n
        return self

    @classmethod
    def merged(cls, estimators: Iterable["QuantileEstimator"],
               eps: Optional[float] = None,
               exact_limit: int = 512) -> "QuantileEstimator":
        """A fresh estimator holding the union of ``estimators``."""
        estimators = list(estimators)
        if eps is None:
            eps = estimators[0].eps if estimators else 0.01
        out = cls(eps=eps, exact_limit=exact_limit)
        for est in estimators:
            out.merge(est)
        return out

    def __repr__(self) -> str:
        mode = "exact" if self.is_exact else "sketch"
        return (f"<QuantileEstimator {mode} n={self._count} "
                f"eps={self.eps:g}>")

"""Time-weighted statistics for simulation quantities.

Utilization, queue depth, and level metrics need *time-weighted*
averages (a queue that is empty for 9 ms and holds 10 items for 1 ms
averages 1.0, not 5.0).  :class:`TimeWeighted` integrates a piecewise-
constant signal; :class:`BusyTracker` specialises it for busy/idle
signals and reports utilization.

These are pull-free: components call :meth:`TimeWeighted.set` when the
value changes; nothing polls.
"""

from __future__ import annotations

from typing import Optional


class TimeWeighted:
    """Integrates a piecewise-constant value over simulated time."""

    def __init__(self, env, initial: float = 0.0):
        self.env = env
        self._value = initial
        self._start_ps = env.now
        self._last_change_ps = env.now
        self._integral = 0.0  # value x ps
        self._min = initial
        self._max = initial

    @property
    def value(self) -> float:
        """The current value."""
        return self._value

    def set(self, value: float) -> None:
        """Change the value from now on."""
        now = self.env.now
        self._integral += self._value * (now - self._last_change_ps)
        self._last_change_ps = now
        self._value = value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def add(self, delta: float) -> None:
        """Adjust the value by ``delta`` (queue join/leave)."""
        self.set(self._value + delta)

    def mean(self, until_ps: Optional[int] = None) -> float:
        """Time-weighted mean from creation to ``until_ps`` (default now).

        ``until_ps`` must not predate the last :meth:`set`/:meth:`add`:
        only the running integral is retained, so a mean ending inside
        already-integrated history cannot be reconstructed — and naively
        integrating a *negative* open segment would silently corrupt
        utilization figures.  Such a query raises :class:`ValueError`.
        ``until_ps`` beyond ``env.now`` is allowed and extrapolates the
        current value.
        """
        end = self.env.now if until_ps is None else until_ps
        if end < self._last_change_ps:
            raise ValueError(
                f"mean(until_ps={end}) predates the last change at "
                f"{self._last_change_ps} ps; time-weighted history before "
                f"that point is not retained")
        span = end - self._start_ps
        if span <= 0:
            return self._value
        # Integrate the still-open segment.
        integral = self._integral + self._value * (end - self._last_change_ps)
        return integral / span

    @property
    def minimum(self) -> float:
        return self._min

    @property
    def maximum(self) -> float:
        return self._max

    def __repr__(self) -> str:
        return f"<TimeWeighted now={self._value} mean={self.mean():.3f}>"


class BusyTracker:
    """Binary busy/idle signal with utilization reporting."""

    def __init__(self, env):
        self.env = env
        self._signal = TimeWeighted(env, initial=0.0)
        self._depth = 0  # nested busy sections

    def enter(self) -> None:
        """Mark the start of a busy section (nestable)."""
        self._depth += 1
        if self._depth == 1:
            self._signal.set(1.0)

    def exit(self) -> None:
        """Mark the end of a busy section."""
        if self._depth <= 0:
            raise ValueError("exit() without matching enter()")
        self._depth -= 1
        if self._depth == 0:
            self._signal.set(0.0)

    @property
    def busy(self) -> bool:
        return self._depth > 0

    def utilization(self, until_ps: Optional[int] = None) -> float:
        """Fraction of time busy since creation."""
        return self._signal.mean(until_ps)

    def __repr__(self) -> str:
        return f"<BusyTracker {'busy' if self.busy else 'idle'}>"

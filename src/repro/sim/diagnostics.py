"""Deadlock and watchdog diagnostics for the event kernel.

A simulation that wedges is worse than one that crashes: the paper's
utilization and execution-time figures are only trustworthy if a run
that cannot make progress fails *loudly*, naming the processes involved
and the primitives they block on.  This module supplies the two
failure types and the wait-for-graph formatting used by
:meth:`Environment.run` and :meth:`Environment.watchdog`:

* :class:`DeadlockError` — the event queue drained while non-daemon
  processes were still blocked; carries ``blocked``, a list of
  ``(process, event)`` pairs, and a message rendering the wait-for
  graph (process name -> primitive it waits on -> holders / queue
  depth).
* :class:`WatchdogError` — an opt-in ``env.watchdog()`` limit
  (``max_events`` / ``max_time_ps``) was exceeded, catching livelocks
  and runaway schedules that a drain-based detector cannot see.

Both subclass :class:`SimulationError`, so existing ``except``
clauses keep working, and both append the environment's *failure
context* — static key=value pairs (``env.add_context(app=...)``) plus
live snapshots from registered providers (stream progress, disk queue
depths) — so a wedged benchmark reports *where* it wedged.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from .events import Condition, Event, Process, SimulationError

__all__ = [
    "DeadlockError",
    "WatchdogError",
    "describe_wait",
    "format_wait_graph",
]


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    ``blocked`` holds ``(process, event)`` pairs: each still-alive
    non-daemon process and the event it was suspended on when the
    simulation ran out of work.
    """

    def __init__(self, message: str,
                 blocked: Iterable[Tuple[Process, Optional[Event]]] = ()):
        super().__init__(message)
        self.blocked: List[Tuple[Process, Optional[Event]]] = list(blocked)


class WatchdogError(SimulationError):
    """An :meth:`Environment.watchdog` limit was exceeded.

    ``limit`` is the configured bound and ``observed`` the value that
    tripped it (events processed, or simulation time in picoseconds).
    """

    def __init__(self, message: str, limit=None, observed=None):
        super().__init__(message)
        self.limit = limit
        self.observed = observed


def describe_wait(event: Optional[Event]) -> str:
    """One readable line for what ``event`` represents as a wait target.

    Blocking primitives (requests, store/container waits) provide a
    ``_describe_wait`` hook naming the primitive, its occupancy, its
    queue depth, and — for resources — who holds it.  Everything else
    falls back to a generic description.
    """
    if event is None:
        return "nothing (detached — no pending event will resume it)"
    hook = getattr(event, "_describe_wait", None)
    if hook is not None:
        return hook()
    if isinstance(event, Process):
        state = "alive" if event.is_alive else "finished"
        return f"process {event.name!r} ({state})"
    if isinstance(event, Condition):
        pending = sum(1 for sub in event.events if not sub.processed)
        waits = sorted({describe_wait(sub) for sub in event.events
                        if not sub.processed})
        inner = f": [{'; '.join(waits)}]" if waits else ""
        return (f"{type(event).__name__} "
                f"({pending}/{len(event.events)} sub-events pending{inner})")
    return repr(event)


def format_wait_graph(processes: Iterable[Process]) -> str:
    """Render the wait-for graph, one ``- name: waiting on ...`` line
    per process, sorted by process name for deterministic output."""
    lines = []
    for proc in sorted(processes, key=lambda p: (p.name or "", id(p))):
        lines.append(f"  - {proc.name}: waiting on {describe_wait(proc._target)}")
    return "\n".join(lines)


def format_failure_context(env) -> str:
    """Render ``env.failure_context()`` as a single ``context:`` line
    (empty string when there is no context to report)."""
    context = env.failure_context()
    if not context:
        return ""
    parts = [f"{key}={value}" for key, value in context.items()]
    return "  context: " + ", ".join(parts)

"""Burst-level event batching: mode flags for the block-path fast path.

PR 5 batched the memory hierarchy (one Python call per *range* instead
of per line, ``REPRO_MEM_PERLINE=1`` restoring the scalar reference).
This module carries the same contract one layer up, into the transport
and dispatch layers: the *burst* fast path replaces the per-block
event cascade (arm Resource round-trips, SCSI/TCA timeouts, wire
Resource holds, host-CPU Resource grants) with analytic free-at state
plus a single timeout per burst, computed from exactly the same
component parameters (see DESIGN.md section 2 and docs/scaling.md).

Two guarantees, enforced by ``tests/sim/test_golden_burst.py``:

* **bit-identity** — with the burst path on (the default), every
  simulated timestamp, CPU/cache/disk/traffic counter, and
  :class:`~repro.metrics.CaseResult` is identical to the per-block
  reference path (``REPRO_SIM_PERBLOCK=1``); only ``sim.event_count``
  differs, because fewer kernel events *is* the optimisation;
* **automatic fallback** — fault injection and structured tracing need
  the real event cascade (retries, per-span timing), so
  :meth:`repro.cluster.System.burst_ok` disables the fast path whenever
  an injector or trace collector is attached.

``REPRO_SIM_FLUID=1`` additionally enables the opt-in *fluid* mode for
the closed-loop stream benchmarks: steady-state stream phases reuse
sampled cache-stall values instead of re-driving the cache hierarchy
for every block (transitions — the first/last blocks of a stream — and
a periodic resample stay exact).  Fluid mode is approximate by design;
its accuracy envelope is pinned by ``tests/sim/test_fluid_mode.py`` and
documented in docs/scaling.md.
"""

from __future__ import annotations

import os

__all__ = [
    "FLUID_ENV", "PERBLOCK_ENV",
    "fluid_requested", "perblock_requested", "sim_mode_tag",
]

#: Debug flag restoring the per-block reference path (mirrors
#: ``REPRO_MEM_PERLINE`` for the memory hierarchy).
PERBLOCK_ENV = "REPRO_SIM_PERBLOCK"

#: Opt-in approximate fluid mode for steady-state stream phases.
FLUID_ENV = "REPRO_SIM_FLUID"


def perblock_requested() -> bool:
    """True when the per-block reference path is forced on."""
    return bool(os.environ.get(PERBLOCK_ENV))


def fluid_requested() -> bool:
    """True when the approximate fluid mode is opted into."""
    return bool(os.environ.get(FLUID_ENV))


def sim_mode_tag() -> str:
    """Accuracy-affecting mode flags, for cache-key fingerprints.

    The burst/per-block choice is bit-identical so it never appears
    here; fluid mode changes results, so cached fluid runs must not
    collide with exact ones.
    """
    return "fluid" if fluid_requested() else "exact"

"""Time and data-size units for the simulator.

The simulation clock counts integer **picoseconds**.  Integer time makes
event ordering exact and reproducible: the 2 GHz host clock is 500 ps per
cycle and the 500 MHz switch clock is 2000 ps per cycle, so every latency
in the paper is an exact integer.
"""

from __future__ import annotations

#: Picoseconds per unit.
PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
SEC = 1_000_000_000_000

#: Bytes per unit.
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds."""
    return round(value * NS)


def us(value: float) -> int:
    """Convert microseconds to integer picoseconds."""
    return round(value * US)


def ms(value: float) -> int:
    """Convert milliseconds to integer picoseconds."""
    return round(value * MS)


def seconds(value: float) -> int:
    """Convert seconds to integer picoseconds."""
    return round(value * SEC)


def ps_to_ns(value: int) -> float:
    """Convert picoseconds to nanoseconds."""
    return value / NS


def ps_to_us(value: int) -> float:
    """Convert picoseconds to microseconds."""
    return value / US


def ps_to_ms(value: int) -> float:
    """Convert picoseconds to milliseconds."""
    return value / MS


def ps_to_seconds(value: int) -> float:
    """Convert picoseconds to seconds."""
    return value / SEC


def cycles_to_ps(cycles: float, freq_hz: float) -> int:
    """Convert a cycle count at ``freq_hz`` to integer picoseconds."""
    return round(cycles * SEC / freq_hz)


def transfer_ps(nbytes: float, bytes_per_sec: float) -> int:
    """Time to move ``nbytes`` at a sustained ``bytes_per_sec`` rate."""
    if nbytes <= 0:
        return 0
    return max(1, round(nbytes * SEC / bytes_per_sec))


class Clock:
    """A fixed-frequency clock that converts cycles to picoseconds.

    >>> host = Clock(2_000_000_000)
    >>> host.period_ps
    500
    >>> host.cycles(4)
    2000
    """

    __slots__ = ("freq_hz", "period_ps")

    def __init__(self, freq_hz: float):
        if freq_hz <= 0:
            raise ValueError(f"clock frequency must be positive, got {freq_hz}")
        self.freq_hz = freq_hz
        self.period_ps = round(SEC / freq_hz)

    def cycles(self, count: float) -> int:
        """Picoseconds taken by ``count`` cycles (rounded to integer ps)."""
        return round(count * self.period_ps)

    def ps_to_cycles(self, duration_ps: int) -> float:
        """Cycles elapsed in ``duration_ps`` picoseconds."""
        return duration_ps / self.period_ps

    def __repr__(self) -> str:
        return f"Clock({self.freq_hz / 1e6:g} MHz)"

"""Event tracing for simulation runs (deprecated).

.. deprecated::
    :class:`Tracer` is superseded by :mod:`repro.obs` — attach a
    :class:`~repro.obs.TraceCollector` via ``repro.run(..., trace=True)``
    or ``System.attach_trace`` for structured spans/instants with
    Chrome ``trace_event`` export.  The class is kept as a
    warn-on-construction shim for code that still passes an explicit
    ``tracer=`` to :class:`~repro.switch.ActiveSwitch`; no internal
    component records through it by default anymore.

A :class:`Tracer` collects timestamped records from instrumented
components — handler dispatches, block arrivals, buffer churn — without
perturbing timing.  Components call :meth:`Tracer.record`; analysis
code filters and summarises afterwards.

Example::

    tracer = Tracer()
    tracer.record(env.now, "dispatch", handler_id=3, cpu=0)
    ...
    dispatches = tracer.select("dispatch")
    print(tracer.summary())
"""

from __future__ import annotations

import warnings
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time_ps: int
    kind: str
    details: tuple  # sorted (key, value) pairs — hashable and stable

    def get(self, key: str, default=None):
        for k, v in self.details:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.details)


class Tracer:
    """Collects trace records; can be disabled to become free.

    .. deprecated:: use :class:`repro.obs.TraceCollector` (see module
       docstring).  Constructing one emits a :class:`DeprecationWarning`.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None,
                 *, _warn: bool = True):
        if _warn:
            warnings.warn(
                "repro.sim.Tracer is deprecated; use repro.obs."
                "TraceCollector (repro.run(..., trace=True) or "
                "System.attach_trace) instead",
                DeprecationWarning, stacklevel=2)
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive when given")
        self.enabled = enabled
        self.capacity = capacity
        self.records: List[TraceRecord] = []
        self.dropped = 0

    def record(self, time_ps: int, kind: str, **details) -> None:
        """Add a record.

        No-op when disabled.  When a ``capacity`` is set and the buffer
        is full, the *newest* record — the one being added — is dropped
        and counted in :attr:`dropped`; already-captured history is
        never displaced.  This keeps the trace a faithful prefix of the
        run, and :meth:`summary` reports how much was lost.
        """
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(TraceRecord(
            time_ps=time_ps, kind=kind,
            details=tuple(sorted(details.items()))))

    def select(self, kind: str) -> List[TraceRecord]:
        """All records of one kind, in time order."""
        return [r for r in self.records if r.kind == kind]

    def count(self, kind: Optional[str] = None) -> int:
        """Number of records (of one kind, or total)."""
        if kind is None:
            return len(self.records)
        return sum(1 for r in self.records if r.kind == kind)

    def span_ps(self, kind: Optional[str] = None) -> int:
        """Time between the first and last (matching) record."""
        matching = self.records if kind is None else self.select(kind)
        if len(matching) < 2:
            return 0
        return matching[-1].time_ps - matching[0].time_ps

    def summary(self) -> Dict[str, int]:
        """Record counts by kind, plus ``"dropped"`` — the number of
        records lost to the capacity bound (0 when nothing was lost)."""
        counts = dict(Counter(r.kind for r in self.records))
        counts["dropped"] = self.dropped
        return counts

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Tracer {state}: {len(self.records)} records>"


#: A process-wide tracer components may share when no explicit tracer is
#: wired through; disabled by default so production runs pay nothing.
#: Deprecated along with the class — nothing internal reads it anymore.
GLOBAL_TRACER = Tracer(enabled=False, _warn=False)

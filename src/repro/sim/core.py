"""The discrete-event simulation environment.

:class:`Environment` owns the clock (integer picoseconds) and the event
queue.  Processes are Python generators that yield :class:`Event`
instances; the environment resumes them when those events fire.

Example::

    env = Environment()

    def pinger(env):
        yield env.timeout(100)
        return "pong"

    proc = env.process(pinger(env))
    env.run()
    assert proc.value == "pong"
    assert env.now == 100
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Generator, Iterable, Optional

from .events import AllOf, AnyOf, Event, Process, SimulationError, Timeout

__all__ = ["Environment", "Infinity"]

#: Sentinel meaning "run until the queue drains".
Infinity = float("inf")

#: Scheduling priorities: URGENT events at the same timestamp run before
#: NORMAL ones.  Used by the kernel for resource bookkeeping.
URGENT = 0
NORMAL = 1


class Environment:
    """Execution environment for a single simulation run."""

    def __init__(self, initial_time: int = 0):
        self._now = int(initial_time)
        self._queue: list = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # Clock and queue
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        """Queue ``event`` to be processed ``delay`` ps from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        heappush(self._queue, (self._now + int(delay), priority, next(self._eid), event))

    def peek(self) -> float:
        """Timestamp of the next scheduled event, or ``Infinity``."""
        return self._queue[0][0] if self._queue else Infinity

    def step(self) -> None:
        """Process the next scheduled event."""
        try:
            when, _, _, event = heappop(self._queue)
        except IndexError:
            raise SimulationError("no scheduled events") from None
        self._now = when
        event._process()

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (drain the queue), an integer time, or
        an :class:`Event` (run until it is processed, return its value).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until
            finished = []
            sentinel.add_callback(lambda _e: finished.append(True))
            while self._queue and not finished:
                self.step()
            if not finished:
                raise SimulationError(
                    f"queue drained before {sentinel!r} was processed")
            if not sentinel.ok:
                raise sentinel.value
            return sentinel.value

        horizon = int(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon}: already at {self._now}")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` ps from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return f"<Environment t={self._now} ps, {len(self._queue)} queued>"

"""The discrete-event simulation environment.

:class:`Environment` owns the clock (integer picoseconds) and the event
queue.  Processes are Python generators that yield :class:`Event`
instances; the environment resumes them when those events fire.

Example::

    env = Environment()

    def pinger(env):
        yield env.timeout(100)
        return "pong"

    proc = env.process(pinger(env))
    env.run()
    assert proc.value == "pong"
    assert env.now == 100
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from .diagnostics import (
    DeadlockError,
    WatchdogError,
    format_failure_context,
    format_wait_graph,
)
from .events import AllOf, AnyOf, Event, Process, SimulationError, Timeout

__all__ = ["Environment", "Infinity"]

#: Sentinel meaning "run until the queue drains".
Infinity = float("inf")

#: Scheduling priorities: URGENT events at the same timestamp run before
#: NORMAL ones.  Used by the kernel for resource bookkeeping.
URGENT = 0
NORMAL = 1


class Environment:
    """Execution environment for a single simulation run."""

    def __init__(self, initial_time: int = 0):
        self._now = int(initial_time)
        self._queue: list = []
        self._eid = count()
        #: Recycled heap entries ([time, priority, eid, event] lists):
        #: the hot loop returns each popped slot here and schedule()
        #: refills it in place, so steady-state runs allocate no queue
        #: entries at all.
        self._free_slots: list = []
        self._active_process: Optional[Process] = None
        #: Processes whose generator has not finished (kept for deadlock
        #: diagnostics; Process registers/deregisters itself).
        self._alive_processes: set = set()
        self._event_count = 0
        # Watchdog state — disarmed unless watchdog() is called.
        self._watchdog_armed = False
        self._max_events: Optional[int] = None
        self._max_time_ps: Optional[int] = None
        self._watchdog_base_events = 0
        #: Static failure context (see add_context).
        self.context: Dict[str, Any] = {}
        self._context_providers: List[Callable[[], Dict[str, Any]]] = []
        #: Structured trace sink (a ``repro.obs.TraceCollector``), or None.
        #: When None — the default — run() takes the uninstrumented drain
        #: loops below and tracing costs nothing.  Attach a collector
        #: *before* calling run(); the loop flavour is chosen on entry.
        self.trace: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock and queue
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(self, event: Event, delay: int = 0, priority: int = NORMAL) -> None:
        """Queue ``event`` to be processed ``delay`` ps from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        free = self._free_slots
        if free:
            entry = free.pop()
            entry[0] = self._now + int(delay)
            entry[1] = priority
            entry[2] = next(self._eid)
            entry[3] = event
        else:
            entry = [self._now + int(delay), priority, next(self._eid), event]
        heappush(self._queue, entry)

    def peek(self) -> float:
        """Timestamp of the next scheduled event, or ``Infinity``."""
        return self._queue[0][0] if self._queue else Infinity

    def step(self) -> None:
        """Process the next scheduled event."""
        try:
            entry = heappop(self._queue)
        except IndexError:
            raise SimulationError("no scheduled events") from None
        self._now = entry[0]
        event = entry[3]
        self._recycle(entry)
        self._event_count += 1
        event._process()

    def _recycle(self, entry: list) -> None:
        """Return a popped heap slot for reuse by :meth:`schedule`."""
        entry[3] = None
        if len(self._free_slots) < 4096:
            self._free_slots.append(entry)

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (drain the queue), an integer time, or
        an :class:`Event` (run until it is processed, return its value).

        Deadlock detection: when the queue drains (``until=None``) or
        drains before an event sentinel is reached, and non-daemon
        processes are still alive, :class:`DeadlockError` is raised
        with the wait-for graph (process -> primitive -> holders)
        instead of returning silently with work undone.  Running to an
        integer horizon performs no deadlock check, since callers
        routinely schedule more work afterwards.
        """
        if self.trace is not None:
            return self._run_traced(until)

        # The drain loops below inline step() — pop, advance the clock,
        # recycle the heap slot, dispatch — binding the queue and
        # heappop as locals.  On a full benchmark run this loop executes
        # millions of times; dropping the method call and tuple unpack
        # per event is a measurable share of wall-clock (see
        # benchmarks/test_runner_speedup.py).  Semantics are identical
        # to calling step() in a loop, including the per-event watchdog
        # poll (the watchdog may be armed mid-run by a resumed process).
        queue = self._queue
        free = self._free_slots
        pop = heappop

        if until is None:
            while queue:
                entry = pop(queue)
                self._now = entry[0]
                event = entry[3]
                entry[3] = None
                if len(free) < 4096:
                    free.append(entry)
                self._event_count += 1
                event._process()
                if self._watchdog_armed:
                    self._watchdog_check()
            self._deadlock_check("event queue drained")
            return None

        if isinstance(until, Event):
            sentinel = until
            finished = []
            sentinel.add_callback(lambda _e: finished.append(True))
            while queue and not finished:
                entry = pop(queue)
                self._now = entry[0]
                event = entry[3]
                entry[3] = None
                if len(free) < 4096:
                    free.append(entry)
                self._event_count += 1
                event._process()
                if self._watchdog_armed:
                    self._watchdog_check()
            if not finished:
                self._deadlock_check(
                    f"event queue drained before {sentinel!r} was processed")
                raise SimulationError(
                    f"queue drained before {sentinel!r} was processed")
            if not sentinel.ok:
                raise sentinel.value
            return sentinel.value

        horizon = int(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon}: already at {self._now}")
        while queue and queue[0][0] <= horizon:
            entry = pop(queue)
            self._now = entry[0]
            event = entry[3]
            entry[3] = None
            if len(free) < 4096:
                free.append(entry)
            self._event_count += 1
            event._process()
            if self._watchdog_armed:
                self._watchdog_check()
        self._now = horizon
        return None

    def _run_traced(self, until: Optional[Any]) -> Any:
        """run() with the event-heap occupancy profiling hook.

        Mirrors the three drain loops of :meth:`run` (same semantics,
        including the per-event watchdog poll and the deadlock checks)
        but samples ``len(queue)`` into the attached trace as the
        ``event-heap`` counter on the ``sim`` track: once on entry, once
        every 64 processed events, and once on exit.  Kept out of line so
        the untraced path stays byte-identical to the seed loops.
        """
        trace = self.trace
        queue = self._queue
        free = self._free_slots
        pop = heappop
        trace.counter("sim", "event-heap", self._now, len(queue))

        if until is None:
            while queue:
                entry = pop(queue)
                self._now = entry[0]
                event = entry[3]
                entry[3] = None
                if len(free) < 4096:
                    free.append(entry)
                self._event_count += 1
                event._process()
                if self._watchdog_armed:
                    self._watchdog_check()
                if not self._event_count & 63:
                    trace.counter("sim", "event-heap", self._now, len(queue))
            trace.counter("sim", "event-heap", self._now, 0)
            self._deadlock_check("event queue drained")
            return None

        if isinstance(until, Event):
            sentinel = until
            finished = []
            sentinel.add_callback(lambda _e: finished.append(True))
            while queue and not finished:
                entry = pop(queue)
                self._now = entry[0]
                event = entry[3]
                entry[3] = None
                if len(free) < 4096:
                    free.append(entry)
                self._event_count += 1
                event._process()
                if self._watchdog_armed:
                    self._watchdog_check()
                if not self._event_count & 63:
                    trace.counter("sim", "event-heap", self._now, len(queue))
            trace.counter("sim", "event-heap", self._now, len(queue))
            if not finished:
                self._deadlock_check(
                    f"event queue drained before {sentinel!r} was processed")
                raise SimulationError(
                    f"queue drained before {sentinel!r} was processed")
            if not sentinel.ok:
                raise sentinel.value
            return sentinel.value

        horizon = int(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon}: already at {self._now}")
        while queue and queue[0][0] <= horizon:
            entry = pop(queue)
            self._now = entry[0]
            event = entry[3]
            entry[3] = None
            if len(free) < 4096:
                free.append(entry)
            self._event_count += 1
            event._process()
            if self._watchdog_armed:
                self._watchdog_check()
            if not self._event_count & 63:
                trace.counter("sim", "event-heap", self._now, len(queue))
        self._now = horizon
        trace.counter("sim", "event-heap", self._now, len(queue))
        return None

    # ------------------------------------------------------------------
    # Diagnostics: deadlock detection, watchdog, failure context
    # ------------------------------------------------------------------
    @property
    def event_count(self) -> int:
        """Total events processed since the environment was created."""
        return self._event_count

    @property
    def alive_processes(self) -> Tuple[Process, ...]:
        """Processes whose generator has not finished (daemons included)."""
        return tuple(self._alive_processes)

    def _deadlock_check(self, reason: str) -> None:
        """Raise :class:`DeadlockError` if non-daemon processes remain."""
        blocked = sorted(
            (p for p in self._alive_processes if not p.daemon),
            key=lambda p: (p.name or "", id(p)))
        if not blocked:
            return
        parts = [
            f"deadlock: {reason} at t={self._now} ps with "
            f"{len(blocked)} process(es) still blocked:",
            format_wait_graph(blocked),
        ]
        context = format_failure_context(self)
        if context:
            parts.append(context)
        raise DeadlockError("\n".join(parts),
                            blocked=[(p, p._target) for p in blocked])

    def watchdog(self, max_events: Optional[int] = None,
                 max_time_ps: Optional[int] = None) -> None:
        """Arm (or, with no arguments, disarm) runaway-run guards.

        ``max_events`` bounds how many further events :meth:`run` may
        process; ``max_time_ps`` bounds the clock.  Exceeding either
        raises :class:`WatchdogError` carrying the wait-for graph and
        failure context — the escape hatch for livelocks (e.g. two
        processes ping-ponging zero-delay events) that the drain-based
        deadlock detector can never see.
        """
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        if max_time_ps is not None and max_time_ps <= 0:
            raise ValueError(f"max_time_ps must be positive, got {max_time_ps}")
        self._max_events = max_events
        self._max_time_ps = max_time_ps
        self._watchdog_base_events = self._event_count
        self._watchdog_armed = max_events is not None or max_time_ps is not None

    def _watchdog_check(self) -> None:
        if self._max_events is not None:
            spent = self._event_count - self._watchdog_base_events
            if spent > self._max_events:
                raise WatchdogError(
                    self._watchdog_message(
                        f"processed {spent} events (limit {self._max_events})"),
                    limit=self._max_events, observed=spent)
        if self._max_time_ps is not None and self._now > self._max_time_ps:
            raise WatchdogError(
                self._watchdog_message(
                    f"clock reached {self._now} ps (limit {self._max_time_ps} ps)"),
                limit=self._max_time_ps, observed=self._now)

    def _watchdog_message(self, what: str) -> str:
        parts = [f"watchdog tripped: {what}"]
        alive = [p for p in self._alive_processes if not p.daemon]
        if alive:
            parts.append(f"{len(alive)} non-daemon process(es) alive:")
            parts.append(format_wait_graph(alive))
        context = format_failure_context(self)
        if context:
            parts.append(context)
        return "\n".join(parts)

    def add_context(self, **info: Any) -> None:
        """Attach static failure context (e.g. ``app='grep'``,
        ``config='active+pref'``) included in deadlock/watchdog errors."""
        self.context.update(info)

    def add_context_provider(
            self, provider: Callable[[], Dict[str, Any]]) -> None:
        """Register a callable returning live context (stream progress,
        queue depths); sampled only when a failure is being reported."""
        self._context_providers.append(provider)

    def failure_context(self) -> Dict[str, Any]:
        """Static context merged with every provider's live snapshot.

        A provider that raises is skipped — diagnostics must never mask
        the failure being reported.
        """
        context = dict(self.context)
        for provider in self._context_providers:
            try:
                context.update(provider())
            except Exception:
                pass
        return context

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` ps from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None,
                daemon: bool = False) -> Process:
        """Start a new process from ``generator``.

        Pass ``daemon=True`` for perpetual service loops (link
        receivers, switch forwarding): daemons are expected to still be
        blocked when the workload completes, so the deadlock detector
        ignores them.
        """
        return Process(self, generator, name=name, daemon=daemon)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return f"<Environment t={self._now} ps, {len(self._queue)} queued>"

"""Discrete-event simulation kernel.

A minimal, dependency-free, simpy-style kernel: generator processes,
integer-picosecond clock, stores / resources / containers, and condition
events.  Every other subsystem in :mod:`repro` is built on this package.
"""

from .core import Environment, Infinity
from .events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopProcess,
    Timeout,
)
from .resources import Container, Request, Resource, Store
from .trace import GLOBAL_TRACER, TraceRecord, Tracer
from .units import (
    GB,
    KB,
    MB,
    MS,
    NS,
    PS,
    SEC,
    US,
    Clock,
    cycles_to_ps,
    ms,
    ns,
    ps_to_ms,
    ps_to_ns,
    ps_to_seconds,
    ps_to_us,
    seconds,
    transfer_ps,
    us,
)

__all__ = [
    "Environment",
    "Infinity",
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "StopProcess",
    "Timeout",
    "Container",
    "Request",
    "Resource",
    "Store",
    "GLOBAL_TRACER",
    "TraceRecord",
    "Tracer",
    "Clock",
    "PS",
    "NS",
    "US",
    "MS",
    "SEC",
    "KB",
    "MB",
    "GB",
    "ns",
    "us",
    "ms",
    "seconds",
    "cycles_to_ps",
    "transfer_ps",
    "ps_to_ns",
    "ps_to_us",
    "ps_to_ms",
    "ps_to_seconds",
]

"""Event primitives for the discrete-event kernel.

The design follows the classic generator-process style (as popularised by
simpy): an :class:`Event` is a one-shot occurrence with callbacks, a
:class:`Process` wraps a generator that yields events, and condition
events (:class:`AllOf` / :class:`AnyOf`) compose them.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "StopProcess",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class StopProcess(Exception):
    """Raised inside a process generator to exit early with a value."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue (e.g. a timeout
    watchdog cancelling a slow I/O path).  A plain event or timeout it
    was waiting on remains pending and can be re-yielded; a *queue*
    wait (``Resource.request``, ``Store.get``/``put``,
    ``Container.get``/``put``) is withdrawn so capacity can never be
    granted to the interrupted waiter — re-issue the operation after
    handling the interrupt.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    Life cycle: *pending* -> *triggered* (value set, scheduled on the
    event queue) -> *processed* (callbacks ran).  Events may succeed with
    a value or fail with an exception.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment"):  # noqa: F821 (doc reference)
        self.env = env
        #: Callables invoked with this event when it is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; runs immediately via the queue if late."""
        if self.callbacks is None:
            # Already processed: schedule a zero-delay shim so ordering
            # semantics stay consistent.
            proxy = Event(self.env)
            proxy.callbacks.append(callback)
            proxy._ok = self._ok
            proxy._value = self._value
            self.env.schedule(proxy, 0)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        """Run callbacks. Called by the environment only."""
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires a fixed delay after creation."""

    __slots__ = ("delay",)

    def __init__(self, env, delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay)


class Initialize(Event):
    """Internal event that starts a new process."""

    __slots__ = ()

    def __init__(self, env, process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, 0)


class Process(Event):
    """Wraps a generator; the process event fires when the generator ends.

    The generator yields :class:`Event` instances; the process resumes
    when the yielded event is processed, receiving its value (or having
    its exception thrown in).
    """

    __slots__ = ("_generator", "_target", "name", "daemon")

    def __init__(self, env, generator: Generator, name: Optional[str] = None,
                 daemon: bool = False):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        #: Daemon processes (perpetual service loops: link receivers,
        #: switch forwarding, dispatch workers) are expected to outlive
        #: the workload, so the deadlock detector ignores them.
        self.daemon = daemon
        alive = getattr(env, "_alive_processes", None)
        if alive is not None:
            alive.add(self)
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process resumes immediately (same timestamp, ahead of
        ordinary events) with the exception raised at its current
        ``yield``.  A plain event or timeout it was waiting on stays
        valid and may be yielded again after handling the interrupt; a
        queue wait (resource request, store/container get or put) is
        *withdrawn* — the waiter leaves the queue, and a grant that
        already landed in this timestep is rolled back — so no capacity
        can leak to a waiter that is no longer listening.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from the current wait so the old event cannot also
        # resume us later.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        # Withdraw queue waits (Request / StoreGet / ContainerPut ...):
        # the waiter leaves the primitive's queue, and an unconsumed
        # same-timestep grant is released back, conserving capacity.
        withdraw = getattr(target, "withdraw", None)
        if withdraw is not None:
            withdraw()
        trigger = Event(self.env)
        trigger._ok = False
        trigger._value = Interrupt(cause)
        trigger.callbacks.append(self._resume)
        self.env.schedule(trigger, 0, priority=0)  # urgent

    def _deregister(self) -> None:
        """Drop this process from the environment's alive registry."""
        alive = getattr(self.env, "_alive_processes", None)
        if alive is not None:
            alive.discard(self)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the result of ``event``."""
        env = self.env
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                env._active_process = None
                self._ok = True
                self._value = exc.value
                self._deregister()
                env.schedule(self, 0)
                return
            except StopProcess as exc:
                env._active_process = None
                self._ok = True
                self._value = exc.value
                self._deregister()
                env.schedule(self, 0)
                return
            except BaseException as exc:
                env._active_process = None
                self._ok = False
                self._value = exc
                self._deregister()
                env.schedule(self, 0)
                if not self.callbacks:
                    # Nothing is waiting on this process: surface the error.
                    raise
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                error = SimulationError(
                    f"process {self.name!r} yielded non-event {next_event!r}")
                try:
                    self._generator.throw(error)
                except BaseException:
                    pass
                self._deregister()
                raise error

            if next_event.processed:
                # Already done: loop immediately with its value.
                event = next_event
                continue

            self._target = next_event
            next_event.add_callback(self._resume)
            break
        env._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"


class Condition(Event):
    """Base for events composed of several sub-events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._pending_count = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.add_callback(self._check)

    def _collect(self) -> dict:
        """Values of all processed sub-events, keyed by listed position."""
        return {
            index: event._value
            for index, event in enumerate(self.events)
            if event.triggered and event.processed
        }

    def withdraw(self) -> None:
        """Withdraw every withdrawable (queue-waiting) sub-event.

        Called when an interrupted process was blocked on this
        condition: pending resource requests and store/container waits
        leave their queues; unconsumed same-timestep grants are rolled
        back.  Plain events and timeouts are left untouched.
        """
        for event in self.events:
            withdraw = getattr(event, "withdraw", None)
            if withdraw is not None and not event.processed:
                withdraw()

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Fires when every sub-event has fired; fails fast on failure."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending_count -= 1
        if self._pending_count <= 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires as soon as any sub-event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())

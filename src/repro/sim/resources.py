"""Shared-resource primitives built on the event kernel.

* :class:`Store` — FIFO queue of items with optional capacity (used for
  switch output queues, mailbox-style message delivery).
* :class:`Resource` — counted resource with FIFO waiters (used for switch
  CPUs, the SCSI bus, disk arms).
* :class:`Container` — bulk token pool (used for credit-based link flow
  control and data-buffer accounting).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from .core import Environment, Infinity
from .events import Event, SimulationError

__all__ = ["Store", "Resource", "Container", "Request"]


class Store:
    """FIFO item store. ``put`` blocks when full, ``get`` blocks when empty."""

    def __init__(self, env: Environment, capacity: float = Infinity):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` is stored."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self.items) < self.capacity:
                put_event, item = self._putters.popleft()
                self.items.append(item)
                put_event.succeed()
                progress = True
            while self._getters and self.items:
                self._getters.popleft().succeed(self.items.popleft())
                progress = True

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"<Store {len(self.items)}/{self.capacity} items>"


class Request(Event):
    """A pending or granted claim on a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A counted resource with FIFO granting.

    Usage::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of granted requests currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Claim one unit; the returned event fires when granted."""
        request = Request(self)
        self.queue.append(request)
        self._grant()
        return request

    def release(self, request: Request) -> None:
        """Return a previously granted unit."""
        try:
            self.users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that was never granted") from None
        self._grant()

    def cancel(self, request: Request) -> None:
        """Withdraw an ungranted request from the wait queue."""
        try:
            self.queue.remove(request)
        except ValueError:
            raise SimulationError("cancelling a request not in the queue") from None

    def _grant(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            request = self.queue.popleft()
            self.users.append(request)
            request.succeed(request)

    def __repr__(self) -> str:
        return f"<Resource {self.count}/{self.capacity} used, {len(self.queue)} waiting>"


class Container:
    """A pool of interchangeable tokens (e.g. link credits).

    ``get(n)`` blocks until ``n`` tokens are available; ``put(n)`` blocks
    until there is room.  Waiters are served FIFO, so a large ``get``
    cannot be starved by a stream of small ones.
    """

    def __init__(self, env: Environment, capacity: float = Infinity, init: float = 0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init must be in [0, {capacity}], got {init}")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._putters: Deque[tuple] = deque()  # (event, amount)
        self._getters: Deque[tuple] = deque()  # (event, amount)

    @property
    def level(self) -> float:
        """Tokens currently available."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount`` tokens; fires when they fit under capacity."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._putters.append((event, amount))
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        """Take ``amount`` tokens; fires when available."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        if amount > self.capacity:
            raise ValueError(
                f"requested {amount} exceeds capacity {self.capacity}")
        event = Event(self.env)
        self._getters.append((event, amount))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed()
                    progress = True

    def __repr__(self) -> str:
        return f"<Container {self._level}/{self.capacity}>"

"""Shared-resource primitives built on the event kernel.

* :class:`Store` — FIFO queue of items with optional capacity (used for
  switch output queues, mailbox-style message delivery).
* :class:`Resource` — counted resource with FIFO waiters (used for switch
  CPUs, the SCSI bus, disk arms).
* :class:`Container` — bulk token pool (used for credit-based link flow
  control and data-buffer accounting).

Every blocking operation returns a *withdrawable* event that is also a
context manager, so holders can never leak capacity:

* ``Resource.request()`` — ``with resource.request() as req: yield req``
  releases on exit, whether the block completes, raises, or is
  interrupted mid-wait (a grant that landed in the same timestep is
  released; a queued request is withdrawn).
* ``Store.get()/put()`` and ``Container.get()/put()`` — ``with`` exits
  on an exception withdraw a still-pending wait; an unconsumed
  same-timestep grant is rolled back (the item returns to the store
  head, the tokens to the pool).

:meth:`Process.interrupt` calls the same ``withdraw()`` hook on
whatever the target was blocked on, so interrupting a waiter conserves
items, tokens, and capacity by construction.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Environment, Infinity
from .events import Event, SimulationError

__all__ = [
    "Store",
    "Resource",
    "Container",
    "Request",
    "StoreGet",
    "StorePut",
    "ContainerGet",
    "ContainerPut",
]


def _owner_name(event: Event) -> str:
    owner = getattr(event, "owner", None)
    return getattr(owner, "name", None) or "<no process>"


class _BlockingEvent(Event):
    """Base for queue-waiting events: withdrawable, context-managed.

    Records ``owner`` — the process active when the wait was created —
    for deadlock diagnostics (who holds a resource, who queues on it).
    """

    __slots__ = ("owner", "_withdrawn")

    def __init__(self, env: Environment):
        super().__init__(env)
        self.owner = env.active_process
        self._withdrawn = False

    def withdraw(self) -> None:
        """Leave the wait queue; roll back an unconsumed grant."""
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        # On an exception (including Interrupt thrown at the yield), a
        # wait that never delivered its value is withdrawn.  A value
        # the process already consumed is its own responsibility.
        if exc_type is not None or not self.triggered:
            self.withdraw()
        return False


class Request(_BlockingEvent):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager: ``with resource.request() as req``
    guarantees the claim is cancelled on exit — released if it was
    granted (even in the same timestep), withdrawn from the wait queue
    if it was still pending, and a no-op if already released.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def withdraw(self) -> None:
        self.resource.cancel(self)

    def __exit__(self, exc_type, exc, tb):
        # Unlike get/put waits, a granted request must be *released* on
        # normal exit — that is the whole point of the with-block.
        self.resource.cancel(self)
        return False

    def _describe_wait(self) -> str:
        res = self.resource
        holders = sorted(_owner_name(user) for user in res.users)
        return (f"{res._label()} ({res.count}/{res.capacity} in use, "
                f"{len(res.queue)} queued; held by {holders})")


class StorePut(_BlockingEvent):
    """A pending or completed ``Store.put``."""

    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.store = store
        self.item = item

    def withdraw(self) -> None:
        if self._withdrawn or self.processed:
            return
        self._withdrawn = True
        if not self.triggered:
            try:
                self.store._putters.remove(self)
            except ValueError:
                pass
        # A triggered put already stored the item — nothing leaks.

    def _describe_wait(self) -> str:
        s = self.store
        return (f"{s._label()}.put ({len(s.items)}/{s.capacity} items, "
                f"{len(s._putters)} putter(s), {len(s._getters)} getter(s) "
                f"waiting)")


class StoreGet(_BlockingEvent):
    """A pending or granted ``Store.get``."""

    __slots__ = ("store",)

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        self.store = store

    def withdraw(self) -> None:
        if self._withdrawn or self.processed:
            return
        self._withdrawn = True
        store = self.store
        if self.triggered:
            # Granted this timestep but the waiter will never consume
            # it: restore the item to the head of the queue.  (This may
            # transiently exceed a bounded store's capacity; the item
            # was inside moments ago, and no new put is admitted until
            # the level drops again.)
            store.items.appendleft(self._value)
        else:
            try:
                store._getters.remove(self)
            except ValueError:
                pass
        store._dispatch()

    def _describe_wait(self) -> str:
        s = self.store
        return (f"{s._label()}.get ({len(s.items)} items, "
                f"{len(s._getters)} getter(s), {len(s._putters)} putter(s) "
                f"waiting)")


class Store:
    """FIFO item store. ``put`` blocks when full, ``get`` blocks when empty."""

    def __init__(self, env: Environment, capacity: float = Infinity,
                 name: Optional[str] = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._putters: Deque[StorePut] = deque()
        self._getters: Deque[StoreGet] = deque()

    def _label(self) -> str:
        return f"Store {self.name!r}" if self.name else "Store"

    def put(self, item: Any) -> StorePut:
        """Return an event that fires once ``item`` is stored."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Return an event that fires with the next item."""
        event = StoreGet(self)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self.items) < self.capacity:
                put_event = self._putters.popleft()
                self.items.append(put_event.item)
                put_event.succeed()
                progress = True
            while self._getters and self.items:
                self._getters.popleft().succeed(self.items.popleft())
                progress = True

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"<{self._label()} {len(self.items)}/{self.capacity} items>"


class Resource:
    """A counted resource with FIFO granting.

    Usage::

        with resource.request() as req:
            yield req
            ...  # hold the resource; released on exit, even on error

    The explicit form — ``req = resource.request(); yield req;
    try/finally: resource.release(req)`` — remains supported.
    """

    def __init__(self, env: Environment, capacity: int = 1,
                 name: Optional[str] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: list = []
        self.queue: Deque[Request] = deque()

    def _label(self) -> str:
        return f"Resource {self.name!r}" if self.name else "Resource"

    @property
    def count(self) -> int:
        """Number of granted requests currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Claim one unit; the returned event fires when granted."""
        request = Request(self)
        self.queue.append(request)
        self._grant()
        return request

    def release(self, request: Request) -> None:
        """Return a previously granted unit."""
        try:
            self.users.remove(request)
        except ValueError:
            raise SimulationError("releasing a request that was never granted") from None
        self._grant()

    def cancel(self, request: Request) -> None:
        """Withdraw ``request``, whatever state it is in.

        * still queued — removed from the wait queue;
        * already granted (even in the same timestep, before the waiter
          ever resumed) — released, so the unit goes to the next
          waiter instead of leaking to a dead one;
        * already released or cancelled — a no-op, making cancel safe
          to call from ``finally`` blocks and ``with`` exits.
        """
        try:
            self.queue.remove(request)
            return
        except ValueError:
            pass
        if any(request is user for user in self.users):
            self.users.remove(request)
            self._grant()

    def _grant(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            request = self.queue.popleft()
            self.users.append(request)
            request.succeed(request)

    def __repr__(self) -> str:
        return (f"<{self._label()} {self.count}/{self.capacity} used, "
                f"{len(self.queue)} waiting>")


class ContainerPut(_BlockingEvent):
    """A pending or completed ``Container.put``."""

    __slots__ = ("container", "amount")

    def __init__(self, container: "Container", amount: float):
        super().__init__(container.env)
        self.container = container
        self.amount = amount

    def withdraw(self) -> None:
        if self._withdrawn or self.processed:
            return
        self._withdrawn = True
        if not self.triggered:
            try:
                self.container._putters.remove(self)
            except ValueError:
                pass
            # Removing a blocked head putter may unblock those behind it.
            self.container._dispatch()
        # A triggered put already added its tokens — nothing leaks.

    def _describe_wait(self) -> str:
        c = self.container
        return (f"{c._label()}.put({self.amount}) "
                f"(level {c._level}/{c.capacity}, "
                f"{len(c._putters)} putter(s), {len(c._getters)} getter(s) "
                f"waiting)")


class ContainerGet(_BlockingEvent):
    """A pending or granted ``Container.get``."""

    __slots__ = ("container", "amount")

    def __init__(self, container: "Container", amount: float):
        super().__init__(container.env)
        self.container = container
        self.amount = amount

    def withdraw(self) -> None:
        if self._withdrawn or self.processed:
            return
        self._withdrawn = True
        container = self.container
        if self.triggered:
            # Granted this timestep but never consumed: return the
            # tokens to the pool.
            container._level += self.amount
        else:
            try:
                container._getters.remove(self)
            except ValueError:
                pass
        container._dispatch()

    def _describe_wait(self) -> str:
        c = self.container
        return (f"{c._label()}.get({self.amount}) "
                f"(level {c._level}/{c.capacity}, "
                f"{len(c._getters)} getter(s), {len(c._putters)} putter(s) "
                f"waiting)")


class Container:
    """A pool of interchangeable tokens (e.g. link credits).

    ``get(n)`` blocks until ``n`` tokens are available; ``put(n)`` blocks
    until there is room.  Waiters are served FIFO, so a large ``get``
    cannot be starved by a stream of small ones.
    """

    def __init__(self, env: Environment, capacity: float = Infinity,
                 init: float = 0, name: Optional[str] = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init must be in [0, {capacity}], got {init}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._level = init
        self._putters: Deque[ContainerPut] = deque()
        self._getters: Deque[ContainerGet] = deque()

    def _label(self) -> str:
        return f"Container {self.name!r}" if self.name else "Container"

    @property
    def level(self) -> float:
        """Tokens currently available."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount`` tokens; fires when they fit under capacity."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        if amount > self.capacity:
            raise ValueError(
                f"putting {amount} exceeds capacity {self.capacity}: "
                f"it could never fit and would deadlock")
        event = ContainerPut(self, amount)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self, amount: float) -> ContainerGet:
        """Take ``amount`` tokens; fires when available."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        if amount > self.capacity:
            raise ValueError(
                f"requested {amount} exceeds capacity {self.capacity}")
        event = ContainerGet(self, amount)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                put_event = self._putters[0]
                if self._level + put_event.amount <= self.capacity:
                    self._putters.popleft()
                    self._level += put_event.amount
                    put_event.succeed()
                    progress = True
            if self._getters:
                get_event = self._getters[0]
                if get_event.amount <= self._level:
                    self._getters.popleft()
                    self._level -= get_event.amount
                    get_event.succeed()
                    progress = True

    def __repr__(self) -> str:
        return f"<{self._label()} {self._level}/{self.capacity}>"

"""Execution-time accounting for the paper's breakdown figures.

Every breakdown figure in the paper splits execution time into **CPU
busy**, **cache stall**, and **idle** for each processor ("n-HP",
"a+p-SP", ...).  :class:`CpuAccounting` accumulates busy and stall time;
idle is whatever remains of the wall-clock execution time.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Breakdown:
    """A finalized execution-time breakdown, in picoseconds."""

    label: str
    exec_ps: int
    busy_ps: int
    stall_ps: int

    @property
    def idle_ps(self) -> int:
        return max(0, self.exec_ps - self.busy_ps - self.stall_ps)

    @property
    def busy_frac(self) -> float:
        return self.busy_ps / self.exec_ps if self.exec_ps else 0.0

    @property
    def stall_frac(self) -> float:
        return self.stall_ps / self.exec_ps if self.exec_ps else 0.0

    @property
    def idle_frac(self) -> float:
        return self.idle_ps / self.exec_ps if self.exec_ps else 0.0

    @property
    def utilization(self) -> float:
        """The paper's host utilization metric: (1 - idle/exec)."""
        return 1.0 - self.idle_frac if self.exec_ps else 0.0

    def __str__(self) -> str:
        return (f"{self.label}: busy {self.busy_frac:6.1%}  "
                f"stall {self.stall_frac:6.1%}  idle {self.idle_frac:6.1%}")


class CpuAccounting:
    """Accumulates busy and stall time for one processor."""

    def __init__(self, label: str):
        self.label = label
        self.busy_ps = 0
        self.stall_ps = 0

    def add_busy(self, duration_ps: int) -> None:
        if duration_ps < 0:
            raise ValueError(f"negative busy time {duration_ps}")
        self.busy_ps += duration_ps

    def add_stall(self, duration_ps: int) -> None:
        if duration_ps < 0:
            raise ValueError(f"negative stall time {duration_ps}")
        self.stall_ps += duration_ps

    def finalize(self, exec_ps: int) -> Breakdown:
        """Produce a breakdown against total execution time ``exec_ps``."""
        return Breakdown(self.label, exec_ps, self.busy_ps, self.stall_ps)

    def reset(self) -> None:
        self.busy_ps = 0
        self.stall_ps = 0

    def __repr__(self) -> str:
        return f"<CpuAccounting {self.label}: busy={self.busy_ps} stall={self.stall_ps}>"

"""Host processor model.

A 2 GHz single-issue in-order core (the paper notes the host model is
deliberately simple: "what really matters in this research is the
relative performance of the host processor and the embedded switch
processor").  Applications drive it with *work items*: a busy cycle
count plus a data-reference pattern; the memory hierarchy converts the
references into stall time.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..mem.hierarchy import MemoryHierarchy
from ..sim.core import Environment
from ..sim.units import Clock
from .accounting import CpuAccounting

#: Paper host clock: 2 GHz.
HOST_FREQ_HZ = 2_000_000_000


class HostCPU:
    """The host processor: executes compute work and memory references."""

    def __init__(
        self,
        env: Environment,
        hierarchy: MemoryHierarchy,
        name: str = "host",
        clock: Optional[Clock] = None,
    ):
        self.env = env
        self.clock = clock if clock is not None else Clock(HOST_FREQ_HZ)
        self.hierarchy = hierarchy
        self.name = name
        self.accounting = CpuAccounting(name)

    # ------------------------------------------------------------------
    # Synchronous cost helpers (no simulated time passes)
    # ------------------------------------------------------------------
    def reference_cost(self, loads: Iterable[int] = (),
                       stores: Iterable[int] = ()) -> int:
        """Stall ps for a set of data references, updating cache state."""
        stall = 0
        for addr in loads:
            stall += self.hierarchy.load(addr)
        for addr in stores:
            stall += self.hierarchy.store(addr)
        return stall

    def scan_cost(self, addr: int, nbytes: int, write: bool = False) -> int:
        """Stall ps for a sequential scan over a byte range."""
        if write:
            return self.hierarchy.store_range(addr, nbytes)
        return self.hierarchy.load_range(addr, nbytes)

    # ------------------------------------------------------------------
    # Timed execution (generators to be yielded from app processes)
    # ------------------------------------------------------------------
    def work(self, busy_cycles: float = 0, stall_ps: int = 0):
        """Execute ``busy_cycles`` of computation plus ``stall_ps`` of
        memory stalls; returns a process-able generator."""
        busy_ps = self.clock.cycles(busy_cycles)
        self.accounting.add_busy(busy_ps)
        self.accounting.add_stall(stall_ps)
        total = busy_ps + stall_ps
        if total > 0:
            trace = self.env.trace
            if trace is not None:
                trace.span(self.name, "cpu.work", self.env.now, total,
                           busy_ps=busy_ps, stall_ps=stall_ps)
            yield self.env.timeout(total)

    def busy(self, duration_ps: int):
        """Occupy the CPU with non-cache busy time (e.g. OS overhead)."""
        self.accounting.add_busy(duration_ps)
        if duration_ps > 0:
            trace = self.env.trace
            if trace is not None:
                trace.span(self.name, "cpu.work", self.env.now, duration_ps,
                           busy_ps=duration_ps, stall_ps=0)
            yield self.env.timeout(duration_ps)

    def stall(self, duration_ps: int):
        """Explicit stall time (charged to the cache-stall bucket)."""
        self.accounting.add_stall(duration_ps)
        if duration_ps > 0:
            trace = self.env.trace
            if trace is not None:
                trace.span(self.name, "cpu.work", self.env.now, duration_ps,
                           busy_ps=0, stall_ps=duration_ps)
            yield self.env.timeout(duration_ps)

    def __repr__(self) -> str:
        return f"<HostCPU {self.name} @ {self.clock.freq_hz / 1e9:g} GHz>"

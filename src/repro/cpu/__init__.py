"""Processor models: the 2 GHz host CPU and the 500 MHz switch CPU."""

from .accounting import Breakdown, CpuAccounting
from .host import HOST_FREQ_HZ, HostCPU
from .switch_cpu import SWITCH_FREQ_HZ, SwitchCPU

__all__ = [
    "Breakdown",
    "CpuAccounting",
    "HostCPU",
    "SwitchCPU",
    "HOST_FREQ_HZ",
    "SWITCH_FREQ_HZ",
]

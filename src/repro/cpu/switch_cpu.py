"""Embedded switch processor model.

A 500 MHz single-issue MIPS-like core — one quarter the host clock —
with a 4 KB I-cache and a 1 KB D-cache (one outstanding request each).
ISA extensions let handlers check hardware status, send data buffers,
and request/release buffers; those show up here as fixed cycle charges.

An active switch holds 1-4 of these; the Dispatch unit schedules
handlers onto whichever core is free (see
:mod:`repro.switch.dispatch`).
"""

from __future__ import annotations

from typing import Optional

from ..mem.hierarchy import MemoryHierarchy, build_switch_hierarchy
from ..sim.core import Environment
from ..sim.units import Clock
from .accounting import CpuAccounting

#: Paper switch clock: 500 MHz (host runs at 4x this speed).
SWITCH_FREQ_HZ = 500_000_000

#: Cycle costs of the switch-specific ISA extensions.
SEND_BUFFER_CYCLES = 4
ALLOC_BUFFER_CYCLES = 2
RELEASE_BUFFER_CYCLES = 2
STATUS_CHECK_CYCLES = 1


class SwitchCPU:
    """One embedded processor inside an active switch."""

    def __init__(
        self,
        env: Environment,
        cpu_id: int = 0,
        name: str = "switch-cpu",
        hierarchy: Optional[MemoryHierarchy] = None,
        clock: Optional[Clock] = None,
    ):
        self.env = env
        self.cpu_id = cpu_id
        self.clock = clock if clock is not None else Clock(SWITCH_FREQ_HZ)
        self.hierarchy = (hierarchy if hierarchy is not None
                          else build_switch_hierarchy(self.clock))
        self.name = f"{name}{cpu_id}"
        self.accounting = CpuAccounting(self.name)
        #: True while a handler occupies this core.
        self.active = False

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------
    def cache_cost(self, addr: int, write: bool = False) -> int:
        """Stall ps for one local-memory reference (not data buffers —
        data-buffer reads never miss; see repro.switch.data_buffer)."""
        if write:
            return self.hierarchy.store(addr)
        return self.hierarchy.load(addr)

    def scan_cost(self, addr: int, nbytes: int, write: bool = False) -> int:
        """Stall ps for a sequential scan over local memory."""
        if write:
            return self.hierarchy.store_range(addr, nbytes)
        return self.hierarchy.load_range(addr, nbytes)

    # ------------------------------------------------------------------
    # Timed execution
    # ------------------------------------------------------------------
    def work(self, busy_cycles: float = 0, stall_ps: int = 0):
        """Run handler computation on this core."""
        busy_ps = self.clock.cycles(busy_cycles)
        self.accounting.add_busy(busy_ps)
        self.accounting.add_stall(stall_ps)
        total = busy_ps + stall_ps
        if total > 0:
            trace = self.env.trace
            if trace is not None:
                trace.span(self.name, "cpu.work", self.env.now, total,
                           busy_ps=busy_ps, stall_ps=stall_ps)
            yield self.env.timeout(total)

    def send_buffer(self):
        """Cycle cost of the send-data-buffer instruction."""
        return self.work(busy_cycles=SEND_BUFFER_CYCLES)

    def release_buffer(self):
        """Cycle cost of a Deallocate_Buffer call."""
        return self.work(busy_cycles=RELEASE_BUFFER_CYCLES)

    def __repr__(self) -> str:
        return f"<SwitchCPU {self.name} @ {self.clock.freq_hz / 1e6:g} MHz>"

"""Declarative multi-stage SAN fabrics.

The paper evaluates one active switch; its Section 6 sketches how the
design scales out — "we can organize the switches logically in a tree"
— and real system-area networks of the era (and since) are built as
multi-stage fabrics: trees for aggregation, folded-Clos/fat-tree
leaf-spine cores for bandwidth.  This module turns a declarative
:class:`TopologySpec` into a fully wired fabric of active switches,
links, and HCAs with consistent routing tables:

* ``kind="tree"`` — a multi-level aggregation tree (the paper's
  Section 6 shape) with configurable internal ``radix``;
* ``kind="fat_tree"`` — a two-stage leaf-spine Clos: every leaf
  connects to every spine, and cross-leaf traffic spreads across the
  spines with deterministic ECMP (flow-hashed, so a message's packets
  stay in order and runs reproduce bit for bit).

Both expose the same :class:`Fabric` interface — ``hosts``, ``levels``,
``aggregation_root``, ``leaf_of``, ``path`` tracing, and ``validate()``
— which is what the handler-placement engine
(:mod:`repro.cluster.placement`) programs against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..net.hca import HCA, HcaConfig
from ..net.link import Link
from ..net.routing import RoutingError
from ..sim.core import Environment
from ..switch.active import ActiveSwitch
from ..switch.base import SwitchConfig
from .config import ClusterConfig
from .node import ComputeNode
from .topology import SwitchTree, TopologyError, TreeSwitch
from .validation import validate_fabric

#: Recognized topology kinds.
TOPOLOGY_KINDS = ("single", "tree", "fat_tree")


class FabricPartitioned(TopologyError):
    """A fail-stop left some live host pair with no surviving path.

    Raised by :meth:`Fabric.path` / :meth:`Fabric.check_partition`
    instead of letting a collective hang forever on an unroutable
    fabric; callers (the placed-reduction retry loop) surface it as
    "unrecoverable" rather than retrying."""


@dataclass
class FtStats:
    """Fabric-level fail-stop accounting (kills, detection, repair)."""

    switch_kills: int = 0
    link_kills: int = 0
    revivals: int = 0
    #: Heartbeat/ACK-escalation port-down detections fabric-wide.
    detections: int = 0
    #: Aggregation-tree repairs (collective re-roots) performed.
    repairs: int = 0
    detection_latency_ps_total: int = 0
    detection_latency_ps_max: int = 0
    #: Per-detection latencies (ground-truth death -> neighbor marking).
    latencies_ps: List[int] = field(default_factory=list)

    def record_detection(self, latency_ps: int) -> None:
        self.detections += 1
        self.detection_latency_ps_total += latency_ps
        self.detection_latency_ps_max = max(
            self.detection_latency_ps_max, latency_ps)
        self.latencies_ps.append(latency_ps)

    @property
    def detection_latency_ps_mean(self) -> float:
        if not self.detections:
            return 0.0
        return self.detection_latency_ps_total / self.detections


@dataclass(frozen=True)
class TopologySpec:
    """Declarative description of a fabric shape.

    Frozen and hashable, so it can ride inside an
    :class:`~repro.runner.AppSpec` and fingerprint a run.
    ``oversubscription`` is the leaf-spine ratio ``hosts_per_leaf /
    spines`` (1.0 = full bisection); ``spines`` wins when both given.
    """

    kind: str = "tree"
    num_hosts: int = 64
    hosts_per_leaf: int = 8
    switch_ports: int = 16
    #: Internal fan-in of tree levels (None -> hosts_per_leaf).
    radix: Optional[int] = None
    #: Fat-tree core width (None -> derived from oversubscription).
    spines: Optional[int] = None
    oversubscription: float = 2.0

    def __post_init__(self):
        if self.kind not in TOPOLOGY_KINDS:
            raise TopologyError(
                f"unknown topology kind {self.kind!r}; "
                f"expected one of {TOPOLOGY_KINDS}")
        if self.num_hosts < 1:
            raise TopologyError("need at least one host")
        if self.oversubscription <= 0:
            raise TopologyError("oversubscription must be positive")

    @property
    def num_leaves(self) -> int:
        return -(-self.num_hosts // self.hosts_per_leaf)

    @property
    def num_spines(self) -> int:
        """Resolved fat-tree core width."""
        if self.spines is not None:
            return self.spines
        return max(1, int(math.ceil(
            self.hosts_per_leaf / self.oversubscription)))


class Fabric:
    """A wired multi-switch fabric with hosts on the leaves.

    ``levels[0]`` are the leaf switches; ``levels[-1]`` is the top of
    the fabric.  Concrete shapes (:class:`TreeFabric`,
    :class:`FatTreeFabric`) fill in the wiring; the shared interface is
    everything the placement engine and the experiments need.
    """

    def __init__(self, env: Environment, spec: TopologySpec,
                 cluster_config: Optional[ClusterConfig] = None,
                 hca_config: Optional[HcaConfig] = None,
                 injector=None):
        self.env = env
        self.spec = spec
        self.cluster_config = cluster_config or ClusterConfig()
        self.hca_config = hca_config or self.cluster_config.hca
        self.injector = injector
        self.hosts: List[ComputeNode] = []
        self.levels: List[List[TreeSwitch]] = []
        self.ft = FtStats()
        self._link_index: Optional[Dict[str, Link]] = None
        self._failstop_armed = False

    # -- interface -----------------------------------------------------
    @property
    def switches(self) -> List[TreeSwitch]:
        return [node for level in self.levels for node in level]

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def aggregation_root(self) -> TreeSwitch:
        """The switch where hierarchical aggregation finalizes."""
        return self.levels[-1][0]

    def leaf_of(self, host: ComputeNode) -> TreeSwitch:
        for leaf in self.levels[0]:
            if host in leaf.hosts:
                return leaf
        raise ValueError(f"{host.name} not in this fabric")

    def path(self, src: str, dst: str) -> List[str]:
        """Switch names a ``src -> dst`` packet traverses, in order.

        Walks the real routing tables with the same flow key the
        switches use, so the trace matches simulation exactly (ECMP
        included).  Raises :class:`TopologyError` on a routing loop.
        """
        by_name = {node.name: node for node in self.switches}
        entry = None
        for leaf in self.levels[0]:
            for host in leaf.hosts:
                if host.name == src:
                    entry = leaf
        if entry is None:
            entry = by_name.get(src)
        if entry is None:
            raise ValueError(f"unknown source {src!r}")
        hops: List[str] = []
        current = entry
        limit = len(self.switches) + 1
        while True:
            hops.append(current.name)
            if current.name == dst:
                return hops
            if len(hops) > limit:
                raise TopologyError(
                    f"routing loop tracing {src} -> {dst}: {hops}")
            try:
                port = current.switch.routing.lookup(dst,
                                                     flow_key=(src, dst))
            except RoutingError as exc:
                raise FabricPartitioned(
                    f"no surviving route {src} -> {dst} at "
                    f"{current.name}: {exc}") from exc
            link = current.switch._tx_links[port]
            if link is None:
                raise TopologyError(
                    f"{current.name} routes {dst} to unconnected port {port}")
            _, _, neighbor = link.name.partition("->")
            if neighbor == dst:
                return hops
            nxt = by_name.get(neighbor)
            if nxt is None:
                raise TopologyError(
                    f"{current.name} routes {dst} off-fabric via {neighbor}")
            current = nxt

    def client_hops(self, server_index: int = 0) -> List[int]:
        """Per-host switch-hop counts to the serving host.

        One entry per host, in host order: the number of switches a
        request from that host traverses to reach
        ``hosts[server_index]``, walking the real routing tables (ECMP
        included) via :meth:`path`.  The serving host itself counts its
        own leaf (one hop), matching the single-switch base case.  Pure
        data — the service layer caches it per topology shape
        (:func:`repro.cluster.template.client_hops`).
        """
        server = self.hosts[server_index].name
        hops: List[int] = []
        for index, host in enumerate(self.hosts):
            if index == server_index:
                hops.append(1)
            else:
                hops.append(len(self.path(host.name, server)))
        return hops

    # -- fail-stop management plane ------------------------------------
    @property
    def links(self) -> Dict[str, Link]:
        """Every link direction in the fabric, by ``"src->dst"`` name.

        Indexed lazily after construction: switch tx links cover every
        switch-originated direction, host HCA tx links the host->leaf
        directions."""
        if self._link_index is None:
            index: Dict[str, Link] = {}
            for node in self.switches:
                for link in node.switch._tx_links:
                    if link is not None:
                        index[link.name] = link
            for host in self.hosts:
                tx = host.hca._tx_link
                if tx is not None:
                    index[tx.name] = tx
            self._link_index = index
        return self._link_index

    def _by_name(self) -> Dict[str, TreeSwitch]:
        return {node.name: node for node in self.switches}

    def _links_touching(self, name: str) -> List[Link]:
        return [link for link_name, link in self.links.items()
                if name in link_name.split("->")]

    def fail_link(self, src: str, dst: str, detect: bool = False) -> bool:
        """Fail-stop the ``src->dst`` wire.  Unknown links are ignored
        (returns False) so one fault plan can ride a topology sweep.
        ``detect=True`` additionally declares the link down immediately
        (zero-latency detection, for static tests); the honest path
        leaves discovery to ACK escalation / heartbeats."""
        link = self.links.get(f"{src}->{dst}")
        if link is None:
            return False
        link.fail()
        self.ft.link_kills += 1
        if self.env.trace is not None:
            self.env.trace.instant("fabric", "link.down", self.env.now,
                                   link=link.name)
        if detect:
            self._declare(link)
        return True

    def fail_switch(self, name: str, detect: bool = False) -> bool:
        """Fail-stop a whole switch: every wire touching it dies with
        it.  Returns False when ``name`` is not in this fabric."""
        node = self._by_name().get(name)
        if node is None:
            return False
        node.failed_at = self.env.now
        for link in self._links_touching(name):
            link.fail()
        self.ft.switch_kills += 1
        if self.env.trace is not None:
            self.env.trace.instant("fabric", "switch.down", self.env.now,
                                   switch=name, level=node.level)
        if detect:
            for link in self._links_touching(name):
                _, _, dst = link.name.partition("->")
                if dst == name:
                    self._declare(link)
        return True

    def _declare(self, link: Link) -> None:
        """Immediate-detection helper: declare a dead wire at its
        sender, firing the owning switch's failover listener."""
        if link.is_down and link.declared_down_at is None:
            if not self._failstop_armed:
                self.ft.record_detection(self.env.now - link._down_since)
                self._note_detected(link)
            link._declare_down()

    def _note_detected(self, link: Link) -> None:
        _, _, dst = link.name.partition("->")
        node = self._by_name().get(dst)
        if node is not None and node.failed_at is not None \
                and node.detected_down_at is None:
            node.detected_down_at = self.env.now

    def revive_link(self, src: str, dst: str) -> bool:
        """Bring one wire back and readmit it at its sender's routing."""
        link = self.links.get(f"{src}->{dst}")
        if link is None:
            return False
        link.revive()
        link.declared_down_at = None
        self._restore_routing(link)
        self.ft.revivals += 1
        if self.env.trace is not None:
            self.env.trace.instant("fabric", "link.up", self.env.now,
                                   link=link.name)
        return True

    def revive_switch(self, name: str) -> bool:
        """Revive a fail-stopped switch: wires come back and neighbors
        readmit their ports.  Handler state died with the switch — the
        epoch-numbered collective recovery re-installs what it needs."""
        node = self._by_name().get(name)
        if node is None:
            return False
        node.failed_at = None
        node.detected_down_at = None
        for link in self._links_touching(name):
            link.revive()
            link.declared_down_at = None
            self._restore_routing(link)
        self.ft.revivals += 1
        if self.env.trace is not None:
            self.env.trace.instant("fabric", "switch.up", self.env.now,
                                   switch=name)
        return True

    def _restore_routing(self, link: Link) -> None:
        src, _, _ = link.name.partition("->")
        owner = self._by_name().get(src)
        if owner is None:
            return
        for port, tx in enumerate(owner.switch._tx_links):
            if tx is link:
                owner.switch.port_restore(port)
                return

    def detected_down(self) -> Dict[str, int]:
        """Switches some surviving sender has declared unreachable:
        ``{switch_name: earliest declaration time}``.  This is the
        *detected* view (what repair may act on), not ground truth."""
        suspected: Dict[str, int] = {}
        by_name = self._by_name()
        for link_name, link in self.links.items():
            if link.declared_down_at is None:
                continue
            _, _, dst = link_name.partition("->")
            if dst in by_name:
                at = link.declared_down_at
                suspected[dst] = min(suspected.get(dst, at), at)
        return suspected

    @property
    def failovers(self) -> int:
        """Ports failed over (marked down) across the whole fabric."""
        return sum(node.switch.stats.ports_failed for node in self.switches)

    @property
    def failstop_armed(self) -> bool:
        """Is the fail-stop driver (events + heartbeats) running?"""
        return self._failstop_armed

    def _has_down(self) -> bool:
        """Any fail-stopped component (ground truth or declared)?"""
        if any(node.failed_at is not None for node in self.switches):
            return True
        return any(link.is_down or link.declared_down_at is not None
                   for link in self.links.values())

    def check_partition(self) -> None:
        """Raise :class:`FabricPartitioned` when some pair of live
        hosts has no route over the surviving components (walking the
        real, failover-aware routing tables)."""
        survivors = [node.switch for node in self.switches
                     if node.failed_at is None]
        live_hcas = []
        for host in self.hosts:
            tx = host.hca._tx_link
            if tx is not None and tx.is_down:
                continue
            live_hcas.append(host.hca)
        issues = validate_fabric(survivors, live_hcas)
        unreachable = [issue for issue in issues
                       if issue.kind in ("unreachable", "loop")]
        if unreachable:
            raise FabricPartitioned(
                f"{len(unreachable)} unroutable pairs among survivors:\n  "
                + "\n  ".join(str(issue) for issue in unreachable[:8]))

    def register_metrics(self, metrics) -> None:
        """Expose failover/repair counters on a MetricsRegistry."""
        metrics.register("fabric.failovers", lambda: float(self.failovers))
        metrics.register("fabric.repairs", lambda: float(self.ft.repairs))
        metrics.register("fabric.detections",
                         lambda: float(self.ft.detections))
        metrics.register("fabric.detection_latency_ps.max",
                         lambda: float(self.ft.detection_latency_ps_max))
        metrics.register("fabric.detection_latency_ps.mean",
                         lambda: float(self.ft.detection_latency_ps_mean))

    def _arm_failstop(self) -> None:
        """Start the fail-stop event driver and per-switch heartbeats.

        A no-op unless the injector's plan schedules fail-stop events —
        failure-free runs spawn no extra processes and stay bit-identical
        to the pre-failstop simulator."""
        if self.injector is None:
            return
        cfg = self.injector.plan.failstop
        if cfg is None or not cfg.enabled:
            return
        self._failstop_armed = True
        # Detection accounting rides the declaration itself, so both
        # discovery paths (ACK escalation and heartbeat) land in FtStats.
        for link in self.links.values():
            link.add_down_listener(
                lambda link=link: self._on_link_declared(link))
        candidates = [node.name for node in self.levels[-1]]
        events = self.injector.failstop_schedule(candidates)
        if events:
            self.env.process(self._failstop_driver(events),
                             name="fabric-failstop", daemon=True)
        for node in self.switches:
            self.env.process(self._heartbeat(node, cfg.heartbeat_interval_ps),
                             name=f"{node.name}-heartbeat", daemon=True)

    def _on_link_declared(self, link: Link) -> None:
        if link._down_since is not None:
            self.ft.record_detection(self.env.now - link._down_since)
        self._note_detected(link)

    def _failstop_driver(self, events):
        injector = self.injector
        for event in events:
            delay = event.at_ps - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            if event.kind == "switch_down":
                applied = self.fail_switch(event.target)
            else:
                src, _, dst = event.target.partition("->")
                applied = self.fail_link(src, dst)
            if not applied:
                continue
            injector.failstop_fired(event)
            if event.revive_at_ps is not None:
                self.env.process(self._reviver(event),
                                 name=f"fabric-revive-{event.target}",
                                 daemon=True)

    def _reviver(self, event):
        yield self.env.timeout(event.revive_at_ps - self.env.now)
        if event.kind == "switch_down":
            self.revive_switch(event.target)
        else:
            src, _, dst = event.target.partition("->")
            self.revive_link(src, dst)

    def _heartbeat(self, node: TreeSwitch, interval_ps: int):
        """Per-switch liveness monitor: a dead neighbor is noticed
        within one interval even if no data traffic exposes it, so
        detection latency is bounded by ``heartbeat_interval_ps``."""
        switch = node.switch
        while True:
            yield self.env.timeout(interval_ps)
            if node.failed_at is not None:
                continue  # dead switches don't monitor (until revived)
            for link in switch._tx_links:
                if link is None or not link.is_down:
                    continue
                if link.declared_down_at is None:
                    link._declare_down()

    def describe(self) -> dict:
        """Shape summary for reports and metric labels."""
        return {
            "kind": self.spec.kind,
            "hosts": len(self.hosts),
            "levels": [len(level) for level in self.levels],
            "switches": len(self.switches),
            "depth": self.depth,
        }

    def validate(self) -> None:
        raise NotImplementedError

    # -- shared wiring helpers -----------------------------------------
    def _make_hosts(self) -> None:
        for i in range(self.spec.num_hosts):
            node = ComputeNode(self.env, f"host{i}", self.cluster_config)
            node.hca = HCA(self.env, node.name, node.cpu,
                           config=self.hca_config)
            self.hosts.append(node)

    def _link(self, src: str, dst: str) -> Link:
        link = Link(self.env, f"{src}->{dst}", self.cluster_config.link)
        if self.injector is not None:
            link.attach_faults(self.injector)
        return link

    def _new_switch(self, name: str, level: int) -> TreeSwitch:
        config = SwitchConfig(
            num_ports=self.spec.switch_ports,
            routing_latency_ps=self.cluster_config.switch.routing_latency_ps)
        switch = ActiveSwitch(self.env, name, config,
                              self.cluster_config.active_switch)
        if self.injector is not None:
            switch.attach_faults(self.injector)
        return TreeSwitch(switch=switch, level=level)

    def _wire_host(self, leaf: TreeSwitch, port: int,
                   host: ComputeNode) -> None:
        to_switch = self._link(host.name, leaf.name)
        from_switch = self._link(leaf.name, host.name)
        host.hca.attach(tx_link=to_switch, rx_link=from_switch)
        leaf.switch.connect(port, tx_link=from_switch, rx_link=to_switch)
        leaf.switch.routing.add(host.name, port)
        leaf.hosts.append(host)
        leaf.subtree_hosts.append(host.name)


class TreeFabric(Fabric):
    """Multi-level aggregation tree (wraps :class:`SwitchTree`)."""

    def __init__(self, env, spec, cluster_config=None, hca_config=None,
                 injector=None):
        super().__init__(env, spec, cluster_config, hca_config, injector)
        self.tree = SwitchTree(
            env, num_hosts=spec.num_hosts,
            hosts_per_leaf=spec.hosts_per_leaf,
            switch_ports=spec.switch_ports,
            cluster_config=self.cluster_config,
            hca_config=self.hca_config,
            radix=spec.radix,
            injector=injector)
        self.hosts = self.tree.hosts
        self.levels = self.tree.levels
        self._arm_failstop()

    def validate(self) -> None:
        try:
            self.tree.validate()
        except TopologyError as exc:
            if self._has_down() and "unreachable" in str(exc):
                raise FabricPartitioned(str(exc)) from exc
            raise


class SingleFabric(TreeFabric):
    """One switch, all hosts attached — the paper's base configuration.

    A degenerate tree (``hosts_per_leaf`` wide enough for every host),
    used as the baseline the scale-out shapes are compared against.
    """

    def __init__(self, env, spec, cluster_config=None, hca_config=None,
                 injector=None):
        ports = max(spec.switch_ports, spec.num_hosts + 1)
        flat = TopologySpec(kind="tree", num_hosts=spec.num_hosts,
                            hosts_per_leaf=max(spec.num_hosts, 1),
                            switch_ports=ports)
        super().__init__(env, flat, cluster_config, hca_config, injector)
        self.spec = spec


class FatTreeFabric(Fabric):
    """Two-stage folded Clos: leaves below, spines above, full mesh.

    Leaf ``l`` wires hosts on ports ``0..h-1`` and spines on ports
    ``h..h+S-1``; spine ``s`` wires leaf ``l`` on port ``l``.  Leaves
    route local hosts down and everything else across an ECMP group of
    all spine uplinks; spines route every leaf's hosts (and the leaf
    names) down the matching port.  Nothing has a default port, so an
    unroutable destination fails loudly instead of ping-ponging.
    """

    def __init__(self, env, spec, cluster_config=None, hca_config=None,
                 injector=None):
        super().__init__(env, spec, cluster_config, hca_config, injector)
        h, S, L = spec.hosts_per_leaf, spec.num_spines, spec.num_leaves
        if h + S > spec.switch_ports:
            raise TopologyError(
                f"leaf needs {h} host ports + {S} spine uplinks "
                f"> {spec.switch_ports} switch ports; lower hosts_per_leaf, "
                f"raise oversubscription, or use bigger switches")
        if L > spec.switch_ports:
            raise TopologyError(
                f"{L} leaves exceed a spine's {spec.switch_ports} ports; "
                f"raise hosts_per_leaf or use bigger switches")
        self._make_hosts()

        leaves = [self._new_switch(f"leaf{l}", 0) for l in range(L)]
        spines = [self._new_switch(f"spine{s}", 1) for s in range(S)]
        self.levels = [leaves, spines]

        for l, leaf in enumerate(leaves):
            for offset, host in enumerate(
                    self.hosts[l * h:(l + 1) * h]):
                self._wire_host(leaf, offset, host)
        for s, spine in enumerate(spines):
            spine.subtree_hosts = [host.name for host in self.hosts]
            spine.children = list(leaves)
            for l, leaf in enumerate(leaves):
                up = self._link(leaf.name, spine.name)
                down = self._link(spine.name, leaf.name)
                leaf.switch.connect(h + s, tx_link=up, rx_link=down)
                spine.switch.connect(l, tx_link=down, rx_link=up)
                leaf.switch.routing.add(spine.name, h + s)
                spine.switch.routing.add(leaf.name, l)
                spine.switch.routing.add_many(leaf.subtree_hosts, l)

        uplinks = tuple(range(h, h + S))
        for leaf in leaves:
            attached = set(leaf.subtree_hosts)
            remote = [host.name for host in self.hosts
                      if host.name not in attached]
            leaf.switch.routing.add_group_many(remote, uplinks)
            leaf.switch.routing.add_group_many(
                [other.name for other in leaves if other is not leaf],
                uplinks)
        self._arm_failstop()

    def validate(self) -> None:
        spec = self.spec
        problems: List[str] = []
        wired = sum(len(leaf.hosts) for leaf in self.levels[0])
        if wired != spec.num_hosts:
            problems.append(f"{wired} hosts wired, "
                            f"expected {spec.num_hosts}")
        for leaf in self.levels[0]:
            expected = len(leaf.hosts) + spec.num_spines
            connected = len(leaf.switch.connected_ports())
            if connected != expected:
                problems.append(
                    f"{leaf.name}: {connected} connected ports, expected "
                    f"{len(leaf.hosts)} hosts + {spec.num_spines} uplinks")
        for spine in self.levels[1]:
            connected = len(spine.switch.connected_ports())
            if connected != spec.num_leaves:
                problems.append(
                    f"{spine.name}: {connected} connected ports, "
                    f"expected {spec.num_leaves} leaf downlinks")
            if spine.fan_in != spec.num_leaves:
                problems.append(
                    f"{spine.name}: fan_in {spine.fan_in} != "
                    f"{spec.num_leaves} leaves")
        for issue in validate_fabric(
                [node.switch for node in self.switches],
                [host.hca for host in self.hosts]):
            problems.append(str(issue))
        if problems:
            header = (f"inconsistent fat-tree ({spec.num_hosts} hosts, "
                      f"{spec.num_leaves} leaves x {spec.num_spines} "
                      f"spines):\n  " + "\n  ".join(problems))
            if self._has_down() and \
                    any("unreachable" in p for p in problems):
                raise FabricPartitioned(header)
            raise TopologyError(header)


_FABRICS = {
    "single": SingleFabric,
    "tree": TreeFabric,
    "fat_tree": FatTreeFabric,
}


def build_fabric(env: Environment, spec: TopologySpec,
                 cluster_config: Optional[ClusterConfig] = None,
                 hca_config: Optional[HcaConfig] = None,
                 injector=None) -> Fabric:
    """Construct the fabric a :class:`TopologySpec` describes."""
    return _FABRICS[spec.kind](env, spec, cluster_config=cluster_config,
                               hca_config=hca_config, injector=injector)


def ecmp_spread(fabric: Fabric, dst: str) -> Tuple[str, ...]:
    """Distinct first-hop core switches host flows to ``dst`` use.

    Diagnostic helper: traces a flow from every host and collects the
    set of second-hop switch names — on a healthy fat-tree this spreads
    across several spines; on a tree it is always the single parent.
    """
    cores = set()
    for host in fabric.hosts:
        if host.name == dst:
            continue
        hops = fabric.path(host.name, dst)
        if len(hops) > 1:
            cores.add(hops[1])
    return tuple(sorted(cores))

"""Declarative multi-stage SAN fabrics.

The paper evaluates one active switch; its Section 6 sketches how the
design scales out — "we can organize the switches logically in a tree"
— and real system-area networks of the era (and since) are built as
multi-stage fabrics: trees for aggregation, folded-Clos/fat-tree
leaf-spine cores for bandwidth.  This module turns a declarative
:class:`TopologySpec` into a fully wired fabric of active switches,
links, and HCAs with consistent routing tables:

* ``kind="tree"`` — a multi-level aggregation tree (the paper's
  Section 6 shape) with configurable internal ``radix``;
* ``kind="fat_tree"`` — a two-stage leaf-spine Clos: every leaf
  connects to every spine, and cross-leaf traffic spreads across the
  spines with deterministic ECMP (flow-hashed, so a message's packets
  stay in order and runs reproduce bit for bit).

Both expose the same :class:`Fabric` interface — ``hosts``, ``levels``,
``aggregation_root``, ``leaf_of``, ``path`` tracing, and ``validate()``
— which is what the handler-placement engine
(:mod:`repro.cluster.placement`) programs against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..net.hca import HCA, HcaConfig
from ..net.link import Link
from ..sim.core import Environment
from ..switch.active import ActiveSwitch
from ..switch.base import SwitchConfig
from .config import ClusterConfig
from .node import ComputeNode
from .topology import SwitchTree, TopologyError, TreeSwitch
from .validation import validate_fabric

#: Recognized topology kinds.
TOPOLOGY_KINDS = ("single", "tree", "fat_tree")


@dataclass(frozen=True)
class TopologySpec:
    """Declarative description of a fabric shape.

    Frozen and hashable, so it can ride inside an
    :class:`~repro.runner.AppSpec` and fingerprint a run.
    ``oversubscription`` is the leaf-spine ratio ``hosts_per_leaf /
    spines`` (1.0 = full bisection); ``spines`` wins when both given.
    """

    kind: str = "tree"
    num_hosts: int = 64
    hosts_per_leaf: int = 8
    switch_ports: int = 16
    #: Internal fan-in of tree levels (None -> hosts_per_leaf).
    radix: Optional[int] = None
    #: Fat-tree core width (None -> derived from oversubscription).
    spines: Optional[int] = None
    oversubscription: float = 2.0

    def __post_init__(self):
        if self.kind not in TOPOLOGY_KINDS:
            raise TopologyError(
                f"unknown topology kind {self.kind!r}; "
                f"expected one of {TOPOLOGY_KINDS}")
        if self.num_hosts < 1:
            raise TopologyError("need at least one host")
        if self.oversubscription <= 0:
            raise TopologyError("oversubscription must be positive")

    @property
    def num_leaves(self) -> int:
        return -(-self.num_hosts // self.hosts_per_leaf)

    @property
    def num_spines(self) -> int:
        """Resolved fat-tree core width."""
        if self.spines is not None:
            return self.spines
        return max(1, int(math.ceil(
            self.hosts_per_leaf / self.oversubscription)))


class Fabric:
    """A wired multi-switch fabric with hosts on the leaves.

    ``levels[0]`` are the leaf switches; ``levels[-1]`` is the top of
    the fabric.  Concrete shapes (:class:`TreeFabric`,
    :class:`FatTreeFabric`) fill in the wiring; the shared interface is
    everything the placement engine and the experiments need.
    """

    def __init__(self, env: Environment, spec: TopologySpec,
                 cluster_config: Optional[ClusterConfig] = None,
                 hca_config: Optional[HcaConfig] = None,
                 injector=None):
        self.env = env
        self.spec = spec
        self.cluster_config = cluster_config or ClusterConfig()
        self.hca_config = hca_config or self.cluster_config.hca
        self.injector = injector
        self.hosts: List[ComputeNode] = []
        self.levels: List[List[TreeSwitch]] = []

    # -- interface -----------------------------------------------------
    @property
    def switches(self) -> List[TreeSwitch]:
        return [node for level in self.levels for node in level]

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def aggregation_root(self) -> TreeSwitch:
        """The switch where hierarchical aggregation finalizes."""
        return self.levels[-1][0]

    def leaf_of(self, host: ComputeNode) -> TreeSwitch:
        for leaf in self.levels[0]:
            if host in leaf.hosts:
                return leaf
        raise ValueError(f"{host.name} not in this fabric")

    def path(self, src: str, dst: str) -> List[str]:
        """Switch names a ``src -> dst`` packet traverses, in order.

        Walks the real routing tables with the same flow key the
        switches use, so the trace matches simulation exactly (ECMP
        included).  Raises :class:`TopologyError` on a routing loop.
        """
        by_name = {node.name: node for node in self.switches}
        entry = None
        for leaf in self.levels[0]:
            for host in leaf.hosts:
                if host.name == src:
                    entry = leaf
        if entry is None:
            entry = by_name.get(src)
        if entry is None:
            raise ValueError(f"unknown source {src!r}")
        hops: List[str] = []
        current = entry
        limit = len(self.switches) + 1
        while True:
            hops.append(current.name)
            if current.name == dst:
                return hops
            if len(hops) > limit:
                raise TopologyError(
                    f"routing loop tracing {src} -> {dst}: {hops}")
            port = current.switch.routing.lookup(dst, flow_key=(src, dst))
            link = current.switch._tx_links[port]
            if link is None:
                raise TopologyError(
                    f"{current.name} routes {dst} to unconnected port {port}")
            _, _, neighbor = link.name.partition("->")
            if neighbor == dst:
                return hops
            nxt = by_name.get(neighbor)
            if nxt is None:
                raise TopologyError(
                    f"{current.name} routes {dst} off-fabric via {neighbor}")
            current = nxt

    def describe(self) -> dict:
        """Shape summary for reports and metric labels."""
        return {
            "kind": self.spec.kind,
            "hosts": len(self.hosts),
            "levels": [len(level) for level in self.levels],
            "switches": len(self.switches),
            "depth": self.depth,
        }

    def validate(self) -> None:
        raise NotImplementedError

    # -- shared wiring helpers -----------------------------------------
    def _make_hosts(self) -> None:
        for i in range(self.spec.num_hosts):
            node = ComputeNode(self.env, f"host{i}", self.cluster_config)
            node.hca = HCA(self.env, node.name, node.cpu,
                           config=self.hca_config)
            self.hosts.append(node)

    def _link(self, src: str, dst: str) -> Link:
        link = Link(self.env, f"{src}->{dst}", self.cluster_config.link)
        if self.injector is not None:
            link.attach_faults(self.injector)
        return link

    def _new_switch(self, name: str, level: int) -> TreeSwitch:
        config = SwitchConfig(
            num_ports=self.spec.switch_ports,
            routing_latency_ps=self.cluster_config.switch.routing_latency_ps)
        switch = ActiveSwitch(self.env, name, config,
                              self.cluster_config.active_switch)
        if self.injector is not None:
            switch.attach_faults(self.injector)
        return TreeSwitch(switch=switch, level=level)

    def _wire_host(self, leaf: TreeSwitch, port: int,
                   host: ComputeNode) -> None:
        to_switch = self._link(host.name, leaf.name)
        from_switch = self._link(leaf.name, host.name)
        host.hca.attach(tx_link=to_switch, rx_link=from_switch)
        leaf.switch.connect(port, tx_link=from_switch, rx_link=to_switch)
        leaf.switch.routing.add(host.name, port)
        leaf.hosts.append(host)
        leaf.subtree_hosts.append(host.name)


class TreeFabric(Fabric):
    """Multi-level aggregation tree (wraps :class:`SwitchTree`)."""

    def __init__(self, env, spec, cluster_config=None, hca_config=None,
                 injector=None):
        super().__init__(env, spec, cluster_config, hca_config, injector)
        self.tree = SwitchTree(
            env, num_hosts=spec.num_hosts,
            hosts_per_leaf=spec.hosts_per_leaf,
            switch_ports=spec.switch_ports,
            cluster_config=self.cluster_config,
            hca_config=self.hca_config,
            radix=spec.radix,
            injector=injector)
        self.hosts = self.tree.hosts
        self.levels = self.tree.levels

    def validate(self) -> None:
        self.tree.validate()


class SingleFabric(TreeFabric):
    """One switch, all hosts attached — the paper's base configuration.

    A degenerate tree (``hosts_per_leaf`` wide enough for every host),
    used as the baseline the scale-out shapes are compared against.
    """

    def __init__(self, env, spec, cluster_config=None, hca_config=None,
                 injector=None):
        ports = max(spec.switch_ports, spec.num_hosts + 1)
        flat = TopologySpec(kind="tree", num_hosts=spec.num_hosts,
                            hosts_per_leaf=max(spec.num_hosts, 1),
                            switch_ports=ports)
        super().__init__(env, flat, cluster_config, hca_config, injector)
        self.spec = spec


class FatTreeFabric(Fabric):
    """Two-stage folded Clos: leaves below, spines above, full mesh.

    Leaf ``l`` wires hosts on ports ``0..h-1`` and spines on ports
    ``h..h+S-1``; spine ``s`` wires leaf ``l`` on port ``l``.  Leaves
    route local hosts down and everything else across an ECMP group of
    all spine uplinks; spines route every leaf's hosts (and the leaf
    names) down the matching port.  Nothing has a default port, so an
    unroutable destination fails loudly instead of ping-ponging.
    """

    def __init__(self, env, spec, cluster_config=None, hca_config=None,
                 injector=None):
        super().__init__(env, spec, cluster_config, hca_config, injector)
        h, S, L = spec.hosts_per_leaf, spec.num_spines, spec.num_leaves
        if h + S > spec.switch_ports:
            raise TopologyError(
                f"leaf needs {h} host ports + {S} spine uplinks "
                f"> {spec.switch_ports} switch ports; lower hosts_per_leaf, "
                f"raise oversubscription, or use bigger switches")
        if L > spec.switch_ports:
            raise TopologyError(
                f"{L} leaves exceed a spine's {spec.switch_ports} ports; "
                f"raise hosts_per_leaf or use bigger switches")
        self._make_hosts()

        leaves = [self._new_switch(f"leaf{l}", 0) for l in range(L)]
        spines = [self._new_switch(f"spine{s}", 1) for s in range(S)]
        self.levels = [leaves, spines]

        for l, leaf in enumerate(leaves):
            for offset, host in enumerate(
                    self.hosts[l * h:(l + 1) * h]):
                self._wire_host(leaf, offset, host)
        for s, spine in enumerate(spines):
            spine.subtree_hosts = [host.name for host in self.hosts]
            spine.children = list(leaves)
            for l, leaf in enumerate(leaves):
                up = self._link(leaf.name, spine.name)
                down = self._link(spine.name, leaf.name)
                leaf.switch.connect(h + s, tx_link=up, rx_link=down)
                spine.switch.connect(l, tx_link=down, rx_link=up)
                leaf.switch.routing.add(spine.name, h + s)
                spine.switch.routing.add(leaf.name, l)
                spine.switch.routing.add_many(leaf.subtree_hosts, l)

        uplinks = tuple(range(h, h + S))
        for leaf in leaves:
            attached = set(leaf.subtree_hosts)
            remote = [host.name for host in self.hosts
                      if host.name not in attached]
            leaf.switch.routing.add_group_many(remote, uplinks)
            leaf.switch.routing.add_group_many(
                [other.name for other in leaves if other is not leaf],
                uplinks)

    def validate(self) -> None:
        spec = self.spec
        problems: List[str] = []
        wired = sum(len(leaf.hosts) for leaf in self.levels[0])
        if wired != spec.num_hosts:
            problems.append(f"{wired} hosts wired, "
                            f"expected {spec.num_hosts}")
        for leaf in self.levels[0]:
            expected = len(leaf.hosts) + spec.num_spines
            connected = len(leaf.switch.connected_ports())
            if connected != expected:
                problems.append(
                    f"{leaf.name}: {connected} connected ports, expected "
                    f"{len(leaf.hosts)} hosts + {spec.num_spines} uplinks")
        for spine in self.levels[1]:
            connected = len(spine.switch.connected_ports())
            if connected != spec.num_leaves:
                problems.append(
                    f"{spine.name}: {connected} connected ports, "
                    f"expected {spec.num_leaves} leaf downlinks")
            if spine.fan_in != spec.num_leaves:
                problems.append(
                    f"{spine.name}: fan_in {spine.fan_in} != "
                    f"{spec.num_leaves} leaves")
        for issue in validate_fabric(
                [node.switch for node in self.switches],
                [host.hca for host in self.hosts]):
            problems.append(str(issue))
        if problems:
            raise TopologyError(
                f"inconsistent fat-tree ({spec.num_hosts} hosts, "
                f"{spec.num_leaves} leaves x {spec.num_spines} spines):\n  "
                + "\n  ".join(problems))


_FABRICS = {
    "single": SingleFabric,
    "tree": TreeFabric,
    "fat_tree": FatTreeFabric,
}


def build_fabric(env: Environment, spec: TopologySpec,
                 cluster_config: Optional[ClusterConfig] = None,
                 hca_config: Optional[HcaConfig] = None,
                 injector=None) -> Fabric:
    """Construct the fabric a :class:`TopologySpec` describes."""
    return _FABRICS[spec.kind](env, spec, cluster_config=cluster_config,
                               hca_config=hca_config, injector=injector)


def ecmp_spread(fabric: Fabric, dst: str) -> Tuple[str, ...]:
    """Distinct first-hop core switches host flows to ``dst`` use.

    Diagnostic helper: traces a flow from every host and collects the
    set of second-hop switch names — on a healthy fat-tree this spreads
    across several spines; on a tree it is always the single parent.
    """
    cores = set()
    for host in fabric.hosts:
        if host.name == dst:
            continue
        hops = fabric.path(host.name, dst)
        if len(hops) > 1:
            cores.add(hops[1])
    return tuple(sorted(cores))

"""Process-wide caches for the config-pure parts of run construction.

Profiling the sweep layer showed that most of a small service point's
wall-clock goes to work that is a *pure function of the configuration*,
re-done for every point and every case:

* building the application (workload generation: ``grep``'s corpus,
  ``select``'s table, ``md5``'s input) — identical for all four cases
  of a cell and every rate point of a sweep;
* walking a freshly wired fabric's routing tables for the client hop
  counts (~0.9 s cold for a 1024-host tree) — identical for every rate
  point and both service cases;
* planning handler placement — pure data derived from the topology
  spec;
* resolving the :class:`~repro.cluster.System` switch configuration
  (the port bump) and node layout.

This module holds one per-process cache for each.  Workers in the warm
pool (:mod:`repro.runner.pool`) keep these caches alive across tasks,
so the second point a worker simulates skips all of the above.

Correctness: every cache is keyed by frozen, value-equal inputs
(:class:`~repro.runner.AppSpec`, :class:`ClusterConfig`,
:class:`~repro.cluster.fabric.TopologySpec`), every cached value is
either immutable, copied on the way out (placement plans), or already
shared by the established reuse precedent (app instances — the bench
harness has always reused one app across all four cases and proven
bit-identity against cold builds).  ``tests/cluster/test_template.py``
proves template-reused runs equal cold-built runs for every registered
app on both simulation paths.  Unhashable inputs (e.g. a config
carrying a mutable fault plan) bypass the caches and build cold.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

#: Built applications kept per process (workload memory is the limit;
#: a paper-scale corpus is a few MB, so a handful is plenty).
_APP_CACHE_MAX = 8

_APP_CACHE: "OrderedDict" = OrderedDict()
_HOPS_CACHE: Dict[Tuple[str, int], Tuple[int, ...]] = {}
_PLAN_CACHE: Dict[tuple, object] = {}
_SYSTEM_TEMPLATES: Dict[object, "SystemTemplate"] = {}

_STATS = {"app_hits": 0, "app_misses": 0,
          "hops_hits": 0, "hops_misses": 0,
          "plan_hits": 0, "plan_misses": 0,
          "system_hits": 0, "system_misses": 0,
          "bypasses": 0}


# ----------------------------------------------------------------------
# Built applications
# ----------------------------------------------------------------------
def cached_app(spec):
    """The built application for an :class:`~repro.runner.AppSpec`.

    One build per process per spec content: the four cases of a grid
    cell, every rate point of a sweep, and every repeat of a bench cell
    share the instance.  Apps are read-only at simulation time (each
    ``run_case``/service run builds its own System and workload state),
    so sharing is bit-identical to cold builds — proven by
    ``tests/cluster/test_template.py``.
    """
    try:
        app = _APP_CACHE.get(spec)
    except TypeError:
        _STATS["bypasses"] += 1
        return spec.build()
    if app is not None:
        _STATS["app_hits"] += 1
        _APP_CACHE.move_to_end(spec)
        return app
    _STATS["app_misses"] += 1
    app = spec.build()
    _APP_CACHE[spec] = app
    while len(_APP_CACHE) > _APP_CACHE_MAX:
        _APP_CACHE.popitem(last=False)
    return app


def cached_service_app(spec):
    """The ``(app_spec, app)`` pair a :class:`ServiceSpec` runs against.

    Service specs at different offered rates (or different seeds,
    durations, SLOs...) share one built app: only the app name, preset,
    overrides, and scale reach workload generation.
    """
    from ..runner.spec import make_spec

    app_spec = make_spec(spec.app, preset=spec.preset,
                         overrides=dict(spec.overrides), scale=spec.scale)
    return app_spec, cached_app(app_spec)


# ----------------------------------------------------------------------
# Fabric-derived client hop counts
# ----------------------------------------------------------------------
def client_hops(kind: str, hosts: int) -> List[int]:
    """Switch hops from each host to ``host0`` (the serving host).

    Computed once per (kind, hosts) by wiring the real fabric — routing
    tables, ECMP groups included — and walking its paths; every rate
    point and both service cases then share the pure-data hop list.
    """
    if kind == "single" or hosts <= 1:
        return [1] * max(hosts, 1)
    key = (kind, hosts)
    hops = _HOPS_CACHE.get(key)
    if hops is None:
        _STATS["hops_misses"] += 1
        from ..sim.core import Environment
        from .fabric import TopologySpec, build_fabric
        env = Environment()
        fabric = build_fabric(env, TopologySpec(kind=kind, num_hosts=hosts))
        hops = tuple(fabric.client_hops())
        _HOPS_CACHE[key] = hops
    else:
        _STATS["hops_hits"] += 1
    return list(hops)


# ----------------------------------------------------------------------
# Placement plans
# ----------------------------------------------------------------------
def placement_plan(fabric, policy: str, root: Optional[str] = None):
    """A :class:`PlacementPlan` for ``fabric``, cached by topology spec.

    ``plan_placement`` is a pure function of the fabric's wiring, which
    is itself a pure function of its :class:`TopologySpec` — so plans
    are keyed by ``(spec, policy, root)`` and shared across fabric
    instances.  The returned plan is an independent copy (plans carry
    mutable dicts); repair paths that re-plan around failures call
    ``plan_placement`` directly and never see this cache.
    """
    from .placement import plan_placement

    key = (fabric.spec, policy, root)
    try:
        plan = _PLAN_CACHE.get(key)
    except TypeError:
        _STATS["bypasses"] += 1
        return plan_placement(fabric, policy, root=root)
    if plan is None:
        _STATS["plan_misses"] += 1
        plan = plan_placement(fabric, policy, root=root)
        _PLAN_CACHE[key] = plan
    else:
        _STATS["plan_hits"] += 1
    return plan.copy()


# ----------------------------------------------------------------------
# System templates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SystemTemplate:
    """The config-pure, immutable prefix of ``System`` construction.

    Holds the resolved (port-bumped) switch configuration and the node
    name layout; ports are implicit — hosts first, storage after, in
    declaration order, exactly as ``System`` has always wired them.
    """

    switch_config: object
    host_names: Tuple[str, ...]
    storage_names: Tuple[str, ...]


def build_system_template(config) -> "SystemTemplate":
    """Derive a :class:`SystemTemplate` from a config (uncached)."""
    needed_ports = config.num_hosts + config.num_storage
    switch_config = config.switch
    if needed_ports > switch_config.num_ports:
        switch_config = replace(switch_config, num_ports=needed_ports)
    return SystemTemplate(
        switch_config=switch_config,
        host_names=tuple(f"host{i}" for i in range(config.num_hosts)),
        storage_names=tuple(f"storage{i}" for i in range(config.num_storage)))


def system_template(config) -> "SystemTemplate":
    """The cached :class:`SystemTemplate` for a ``ClusterConfig``.

    ``ClusterConfig`` is frozen with value equality, so the dict lookup
    is the whole cost of a hit; configs that fail to hash (mutable
    fault plans) are derived cold, which is always correct.
    """
    try:
        template = _SYSTEM_TEMPLATES.get(config)
    except TypeError:
        _STATS["bypasses"] += 1
        return build_system_template(config)
    if template is None:
        _STATS["system_misses"] += 1
        template = build_system_template(config)
        _SYSTEM_TEMPLATES[config] = template
    else:
        _STATS["system_hits"] += 1
    return template


# ----------------------------------------------------------------------
# Lifecycle (tests, memory pressure)
# ----------------------------------------------------------------------
def clear_templates() -> None:
    """Drop every per-process template cache (cold-build from here)."""
    _APP_CACHE.clear()
    _HOPS_CACHE.clear()
    _PLAN_CACHE.clear()
    _SYSTEM_TEMPLATES.clear()


def template_stats() -> Dict[str, int]:
    """Hit/miss counters plus current cache sizes (diagnostics)."""
    stats = dict(_STATS)
    stats.update(apps=len(_APP_CACHE), hops=len(_HOPS_CACHE),
                 plans=len(_PLAN_CACHE), systems=len(_SYSTEM_TEMPLATES))
    return stats

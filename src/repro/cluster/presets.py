"""Named cluster-configuration presets.

``paper_2003`` is the baseline every experiment uses; the others scale
individual technologies to support sensitivity studies:

* ``fast_fabric`` — 10x links and crossbar (10 GB/s-class SAN);
* ``fast_storage`` — 8x disks (early-NVMe-class 800 MB/s streams);
* ``fast_switch_cpu`` — embedded core at host parity (2 GHz);
* ``balanced_2006`` — a plausible three-years-later system: 2x disks,
  2x links, 1 GHz switch core;
* ``chaos_2003`` — the paper testbed on an imperfect fabric: lossy
  links, transient disk errors, occasionally crashing handlers.  Pass a
  ``seed`` to pick (and exactly reproduce) one fault schedule.

Presets return fresh :class:`ClusterConfig` values; override fields
with :func:`dataclasses.replace` as usual.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict

from ..faults.plan import (DiskFaults, FailStopFaults, FaultPlan,
                           HandlerFaults, LinkFaults, ScsiFaults)
from ..io.disk import DiskConfig
from ..net.link import LinkConfig
from ..sim.units import us
from ..switch.active import ActiveSwitchConfig
from .config import ClusterConfig


def paper_2003(**overrides) -> ClusterConfig:
    """The paper's Section 4 testbed (the library default)."""
    return replace(ClusterConfig(), **overrides) if overrides else ClusterConfig()


def fast_fabric(**overrides) -> ClusterConfig:
    """10 GB/s links and crossbar; everything else per the paper."""
    base = ClusterConfig(
        link=LinkConfig(bandwidth_bytes_per_s=10e9),
        active_switch=ActiveSwitchConfig(
            crossbar_bandwidth_bytes_per_s=10e9),
    )
    return replace(base, **overrides) if overrides else base


def fast_storage(**overrides) -> ClusterConfig:
    """8x disk bandwidth (2 x 400 MB/s spindles)."""
    base = ClusterConfig(
        disk=DiskConfig(bandwidth_bytes_per_s=400e6))
    return replace(base, **overrides) if overrides else base


def fast_switch_cpu(**overrides) -> ClusterConfig:
    """Embedded switch core at host clock parity (2 GHz)."""
    base = ClusterConfig(
        active_switch=ActiveSwitchConfig(cpu_freq_hz=2e9))
    return replace(base, **overrides) if overrides else base


def balanced_2006(**overrides) -> ClusterConfig:
    """A plausible 2006 refresh: 2x disks and links, 1 GHz switch core."""
    base = ClusterConfig(
        disk=DiskConfig(bandwidth_bytes_per_s=100e6),
        link=LinkConfig(bandwidth_bytes_per_s=2e9),
        active_switch=ActiveSwitchConfig(
            cpu_freq_hz=1e9, crossbar_bandwidth_bytes_per_s=2e9),
    )
    return replace(base, **overrides) if overrides else base


def service_2003(**overrides) -> ClusterConfig:
    """The paper testbed provisioned for open-loop serving.

    A 16-spindle stripe (800 MB/s aggregate) moves the storage ceiling
    well past the host's request-processing rate, so offered-load
    sweeps (``repro.serve`` / ``ext_service_slo``) expose the *CPU*
    saturation knee — the axis where handler offload pays — instead of
    knee-ing on the paper's two-disk array first.
    """
    base = ClusterConfig(num_disks=16)
    return replace(base, **overrides) if overrides else base


def chaos_2003(seed: int = 0, **overrides) -> ClusterConfig:
    """The paper testbed under a deterministic storm of faults.

    Per-packet link loss and bit errors, transient disk read errors,
    SCSI parity errors, and a low handler crash rate — every schedule a
    pure function of ``seed``.  The recovery machinery (retransmission,
    retries, quarantine + cut-through fallback) keeps results correct;
    the run report shows what it cost.
    """
    base = ClusterConfig(
        seed=seed,
        faults=FaultPlan(
            link=LinkFaults(drop_rate=0.01, bit_error_rate=0.005),
            disk=DiskFaults(read_error_rate=0.02, write_error_rate=0.01),
            scsi=ScsiFaults(error_rate=0.005),
            handler=HandlerFaults(crash_rate=0.002),
        ),
    )
    return replace(base, **overrides) if overrides else base


def failstop_2003(seed: int = 0, kills: int = 1, **overrides) -> ClusterConfig:
    """The paper testbed with fail-stop component deaths.

    ``kills`` random top-level (spine/root) switches die at seeded
    times mid-run; links use a light transient loss rate on top, so
    both recovery tiers (retransmission and failover/repair) engage.
    Collectives detect the deaths via ACK escalation and heartbeats,
    re-root around them, and still produce bit-exact results — the run
    report shows detection latency and repair counts.
    """
    base = ClusterConfig(
        seed=seed,
        faults=FaultPlan(
            link=LinkFaults(drop_rate=0.001),
            # Kills land inside the window a 64-host collective is
            # actually in flight, so the failover/repair path really runs.
            failstop=FailStopFaults(random_switch_kills=kills,
                                    kill_window_ps=(us(2), us(20))),
        ),
    )
    return replace(base, **overrides) if overrides else base


PRESETS: Dict[str, Callable[..., ClusterConfig]] = {
    "paper_2003": paper_2003,
    "fast_fabric": fast_fabric,
    "fast_storage": fast_storage,
    "fast_switch_cpu": fast_switch_cpu,
    "balanced_2006": balanced_2006,
    "service_2003": service_2003,
    "chaos_2003": chaos_2003,
    "failstop_2003": failstop_2003,
}


def get_preset(name: str, **overrides) -> ClusterConfig:
    """Look up a preset by name."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; known: {sorted(PRESETS)}") from None
    return factory(**overrides)

"""Sequential read streams with bounded outstanding requests.

The paper's four configurations differ in how disk requests overlap with
processing:

* *normal* / *active*: synchronous — the next request is issued only
  after the previous block has been fully consumed;
* *normal+pref* / *active+pref*: "two outstanding I/O requests" — one
  block can be in flight while the previous one is processed.

:class:`ReadStream` implements both with a token protocol: the producer
needs a token to issue a request, and the consumer returns the token
when it finishes a block.  ``depth=1`` gives the synchronous case,
``depth=2`` the prefetching case.

Each delivered :class:`BlockArrival` fires in two stages, matching
cut-through streaming: ``next_block()`` returns when the block's *first*
data reaches the destination (so an active-switch handler can start
immediately — "the Grep handler can start searching as soon as the
first data enters the switch"), and ``end_event`` fires when the last
byte lands (a normal host "has to wait for the entire 32 KB chunk").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..sim.events import Event
from ..sim.resources import Container, Store
from .node import ComputeNode
from .system import System


@dataclass
class BlockArrival:
    """One block of a sequential read stream arriving at its destination."""

    index: int
    offset: int
    nbytes: int
    #: Simulation time the first bytes reached the destination.
    start_ps: int = 0
    #: Fires when the last byte has arrived.
    end_event: Optional[Event] = None
    #: Simulation time the last byte arrives — known up front on the
    #: burst fast path (``None`` on the per-block reference path, where
    #: only ``end_event`` carries the completion).
    end_ps: Optional[int] = None
    #: Functional payload attached by the workload (records, text...).
    payload: Any = None


class ReadStream:
    """A host-initiated sequential read stream of fixed-size requests."""

    def __init__(
        self,
        system: System,
        host: ComputeNode,
        total_bytes: int,
        request_bytes: int,
        depth: int = 1,
        to_switch: bool = False,
        payloads: Optional[list] = None,
        request_cost: str = "os",
        storage_index: int = 0,
        base_offset: int = 0,
        warm_start: bool = False,
    ):
        if total_bytes <= 0 or request_bytes <= 0:
            raise ValueError("stream and request sizes must be positive")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if request_cost not in ("os", "active", "none"):
            raise ValueError(f"unknown request cost model {request_cost!r}")
        self.system = system
        self.env = system.env
        self.host = host
        self.total_bytes = total_bytes
        self.request_bytes = request_bytes
        self.to_switch = to_switch
        self.payloads = payloads
        self.request_cost = request_cost
        self.storage = system.storage_nodes[storage_index]
        self.base_offset = base_offset
        if warm_start:
            # The OS's sequential read-ahead (or a file contiguous with
            # prior activity) has already positioned the heads.
            self.storage.disks.position_heads(base_offset)
        self.num_blocks = -(-total_bytes // request_bytes)
        # Pure functions of the static configuration, identical for
        # every block — hoisted out of the produce loop.
        self._request_path_ps = system.request_path_ps()
        self._first_tail_ps = system.first_data_tail_ps(to_switch)
        self._last_tail_ps = system.last_data_tail_ps(to_switch)
        label = f"read-stream:{host.name}->" \
                f"{'switch' if to_switch else host.name}"
        self._tokens = Container(self.env, capacity=depth, init=depth,
                                 name=f"{label}.tokens")
        self._arrivals: Store = Store(self.env, name=f"{label}.arrivals")
        self._issued = 0
        self._delivered = 0
        self._label = label
        self.env.add_context_provider(self._failure_context)
        self._producer = self.env.process(self._produce(), name=label)

    def _failure_context(self) -> dict:
        """Live progress snapshot for deadlock/watchdog reports: shows
        *where* a wedged benchmark run stopped making progress."""
        return {self._label: (
            f"{self._issued}/{self.num_blocks} blocks issued, "
            f"{self._delivered} delivered, "
            f"{self._tokens.level}/{self._tokens.capacity} tokens free")}

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def _block_size(self, index: int) -> int:
        if index == self.num_blocks - 1:
            return self.total_bytes - index * self.request_bytes
        return self.request_bytes

    def _charge_request(self, nbytes: int):
        if self.request_cost == "os":
            yield from self.host.os_request(nbytes)
        elif self.request_cost == "active":
            yield from self.host.active_request()

    def _produce(self):
        # Decided at first execution (inside ``env.run``, after traces
        # and fault plans are attached), not at construction.
        if self.system.burst_ok():
            yield from self._produce_burst()
            return
        for index in range(self.num_blocks):
            yield self._tokens.get(1)
            self._issued += 1
            nbytes = self._block_size(index)
            trace = self.env.trace
            if trace is not None:
                trace.instant(self._label, "stream.issue", self.env.now,
                              index=index, bytes=nbytes)
            yield from self._charge_request(nbytes)
            yield self.env.timeout(self._request_path_ps)
            offset = self.base_offset + index * self.request_bytes

            started = self.env.event()
            done = self.env.process(
                self.storage.serve_read(offset, nbytes, started=started),
                name=f"serve-read-{index}")

            yield started
            end_event = self.env.event()
            self.env.process(
                self._finish(done, self._last_tail_ps, end_event, nbytes),
                name=f"block-finish-{index}")
            yield self.env.timeout(self._first_tail_ps)
            arrival = BlockArrival(
                index=index,
                offset=offset,
                nbytes=nbytes,
                start_ps=self.env.now,
                end_event=end_event,
                payload=(self.payloads[index]
                         if self.payloads is not None else None),
            )
            if trace is not None:
                trace.instant(self._label, "stream.arrival", self.env.now,
                              index=index, bytes=nbytes)
            yield self._arrivals.put(arrival)
            self._delivered += 1

    def _produce_burst(self):
        """One-event-per-stage producer (see repro.sim.burst).

        The per-block path costs ~28 kernel events per block (request
        charge, TCA/SCSI timeouts, per-spindle arm grants and transfer
        timeouts, serve/finish processes, tail timeouts); this path
        computes the same pipeline analytically via the storage node's
        ``serve_read_burst`` and schedules just the arrival and
        completion timeouts.  Timestamps, counters, and utilization are
        bit-identical — proven by tests/sim/test_golden_burst.py.

        Completions go through a single per-stream finisher process
        (:meth:`_finish_burst`) instead of a producer-created timeout:
        symmetric streams finish same-sized blocks at the *same*
        picosecond, and the per-block path wakes those consumers in the
        storage pipeline's event order, which a timeout scheduled at
        issue time would not reproduce (issue order differs from
        completion order once the token return is gated by contended
        downstream links).  The finisher's timeouts are scheduled at
        the previous completion — the same instants the per-block
        path's finish processes schedule theirs — so tied-picosecond
        wake order is preserved.
        """
        self._finish_backlog = []
        self._finish_wake = None
        self.env.process(self._finish_burst(), name=f"{self._label}.finish")
        for index in range(self.num_blocks):
            yield self._tokens.get(1)
            self._issued += 1
            nbytes = self._block_size(index)
            yield from self._charge_request(nbytes)
            offset = self.base_offset + index * self.request_bytes
            started_ps, done_ps = self.storage.serve_read_burst(
                self.env.now + self._request_path_ps, offset, nbytes)
            if not self.to_switch:
                self.host.hca.account_bulk_in(nbytes)
            end_ps = done_ps + self._last_tail_ps
            end_event = self.env.event()
            self._finish_backlog.append((done_ps, end_ps, end_event))
            if self._finish_wake is not None:
                wake, self._finish_wake = self._finish_wake, None
                wake.succeed()
            yield self.env.timeout(
                started_ps + self._first_tail_ps - self.env.now)
            arrival = BlockArrival(
                index=index,
                offset=offset,
                nbytes=nbytes,
                start_ps=self.env.now,
                end_event=end_event,
                end_ps=end_ps,
                payload=(self.payloads[index]
                         if self.payloads is not None else None),
            )
            yield self._arrivals.put(arrival)
            self._delivered += 1

    def _finish_burst(self):
        """Succeeds each block's ``end_event`` at its completion time.

        Mirrors the per-block path's finish-process timing: sleep to
        the block's disk-done instant, then the data tail, then fire —
        keeping every completion timeout scheduled at the same
        picosecond (and hence the same event-queue position relative to
        other streams) as the reference path.
        """
        for _ in range(self.num_blocks):
            if not self._finish_backlog:
                self._finish_wake = self.env.event()
                yield self._finish_wake
            done_ps, end_ps, end_event = self._finish_backlog.pop(0)
            if done_ps > self.env.now:
                yield self.env.timeout(done_ps - self.env.now)
            if end_ps > self.env.now:
                yield self.env.timeout(end_ps - self.env.now)
            end_event.succeed()

    def _finish(self, done, last_tail_ps: int, end_event, nbytes: int):
        yield done
        yield self.env.timeout(last_tail_ps)
        if not self.to_switch:
            self.host.hca.account_bulk_in(nbytes)
        trace = self.env.trace
        if trace is not None:
            trace.instant(self._label, "stream.complete", self.env.now,
                          bytes=nbytes)
        end_event.succeed()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def next_block(self):
        """Wait for the next block's first data; returns BlockArrival."""
        arrival = yield self._arrivals.get()
        return arrival

    def done_with(self, arrival: BlockArrival):
        """Return the request token, letting the producer issue another."""
        yield self._tokens.put(1)

    def consume_fully(self, arrival: BlockArrival):
        """Wait until the whole block has arrived (normal-host pattern)."""
        if not arrival.end_event.processed:
            yield arrival.end_event


class WriteStream:
    """A host-initiated sequential write stream with bounded outstanding
    requests — the mirror image of :class:`ReadStream`.

    The consumer pushes blocks with :meth:`write_block` (which blocks
    while ``depth`` writes are already in flight) and finishes with
    :meth:`drain`.  Data flows host -> switch -> TCA -> SCSI -> disks;
    the disks are the bottleneck, so a write's latency is dominated by
    :meth:`StorageNode.serve_write`.
    """

    def __init__(
        self,
        system: System,
        host: ComputeNode,
        request_bytes: int,
        depth: int = 1,
        request_cost: str = "os",
        storage_index: int = 0,
        base_offset: int = 0,
        from_switch: bool = False,
    ):
        if request_bytes <= 0:
            raise ValueError("request size must be positive")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if request_cost not in ("os", "active", "none"):
            raise ValueError(f"unknown request cost model {request_cost!r}")
        self.system = system
        self.env = system.env
        self.host = host
        self.request_bytes = request_bytes
        self.request_cost = request_cost
        self.storage = system.storage_nodes[storage_index]
        self.from_switch = from_switch
        self._offset = base_offset
        # Static per-request control latency, hoisted like ReadStream's.
        self._request_path_ps = system.request_path_ps()
        label = f"write-stream:{host.name}"
        self._tokens = Container(self.env, capacity=depth, init=depth,
                                 name=f"{label}.tokens")
        self._inflight = []
        self.bytes_written = 0
        self._label = label
        self.env.add_context_provider(self._failure_context)

    def _failure_context(self) -> dict:
        return {self._label: (
            f"{self.bytes_written} B committed, "
            f"{len(self._inflight)} writes submitted, "
            f"{self._tokens.level}/{self._tokens.capacity} tokens free")}

    def _charge_request(self, nbytes: int):
        if self.request_cost == "os":
            yield from self.host.os_request(nbytes)
        elif self.request_cost == "active":
            yield from self.host.active_request()

    def write_block(self, nbytes: Optional[int] = None):
        """Submit one block; returns once it is admitted to the window."""
        nbytes = self.request_bytes if nbytes is None else nbytes
        if nbytes <= 0:
            raise ValueError(f"block size must be positive, got {nbytes}")
        yield self._tokens.get(1)
        yield from self._charge_request(nbytes)
        offset = self._offset
        self._offset += nbytes
        self._inflight.append(self.env.process(
            self._commit(offset, nbytes), name=f"write-{offset}"))

    def _commit(self, offset: int, nbytes: int):
        if self.system.burst_ok():
            done_ps = self.storage.serve_write_burst(
                self.env.now + self._request_path_ps, offset, nbytes)
            if not self.from_switch:
                self.host.hca.account_bulk_out(nbytes)
            yield self.env.timeout(done_ps - self.env.now)
            self.bytes_written += nbytes
            yield self._tokens.put(1)
            return
        yield self.env.timeout(self._request_path_ps)
        yield from self.storage.serve_write(offset, nbytes)
        if not self.from_switch:
            self.host.hca.account_bulk_out(nbytes)
        self.bytes_written += nbytes
        yield self._tokens.put(1)

    def drain(self):
        """Wait for every submitted write to be committed."""
        if self._inflight:
            yield self.env.all_of(self._inflight)

"""Fabric validation: catch mis-wired topologies before simulating.

Hand-built fabrics (examples, tests, future topologies) can silently
route packets to unconnected ports or loop between switches; both
surface as confusing mid-simulation errors.  :func:`validate_fabric`
checks a set of switches and adapters statically:

* every routing-table port has a link attached;
* every adapter is reachable from every switch (walking routing tables
  hop by hop, default ports included);
* no routing loop: a destination's path from any switch terminates
  within the switch count.

Returns a list of :class:`FabricIssue`; empty means sound.  The
reduction tree builder is validated in its tests with this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..net.routing import RoutingError


@dataclass(frozen=True)
class FabricIssue:
    """One problem found in a fabric."""

    kind: str       # "unconnected-port" | "unreachable" | "loop"
    switch: str
    destination: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.switch} -> {self.destination}: {self.detail}"


def _port_neighbors(switches, adapters) -> Dict[str, Dict[int, str]]:
    """For each switch, which node sits behind each connected port.

    Derived from link names of the form "name->name" used throughout
    the library's wiring helpers.
    """
    neighbors: Dict[str, Dict[int, str]] = {}
    for switch in switches:
        ports = {}
        for port, link in enumerate(switch._tx_links):
            if link is None:
                continue
            # Link names are "<src>-><dst>".
            _, _, dst = link.name.partition("->")
            ports[port] = dst
        neighbors[switch.name] = ports
    return neighbors


def validate_fabric(switches, adapters) -> List[FabricIssue]:
    """Statically check routing soundness of a wired fabric."""
    issues: List[FabricIssue] = []
    by_name = {switch.name: switch for switch in switches}
    neighbors = _port_neighbors(switches, adapters)
    destinations = [adapter.node_id for adapter in adapters]
    max_hops = len(switches) + 1

    for destination in destinations:
        # Per-switch next hops for this destination, walking *every*
        # ECMP alternative; route problems surface where they live.
        next_hops: Dict[str, List[str]] = {}
        for switch in switches:
            ports = switch.routing.ports_for(destination)
            if not ports:
                issues.append(FabricIssue(
                    "unreachable", switch.name, destination,
                    f"no route at {switch.name}"))
                continue
            onward: List[str] = []
            for port in ports:
                next_name = neighbors[switch.name].get(port)
                if next_name is None:
                    issues.append(FabricIssue(
                        "unconnected-port", switch.name, destination,
                        f"{switch.name} port {port} has no link"))
                elif next_name == destination:
                    pass  # delivered
                elif next_name in by_name:
                    onward.append(next_name)
                else:
                    issues.append(FabricIssue(
                        "unreachable", switch.name, destination,
                        f"{switch.name} port {port} leads to unknown "
                        f"node {next_name}"))
            next_hops[switch.name] = onward
        # Cycle detection over the destination's next-hop graph
        # (iterative DFS, white/gray/black colouring): any back edge
        # means some path can revisit a switch and exceed max_hops.
        color: Dict[str, int] = {}
        for start in next_hops:
            if color.get(start):
                continue
            color[start] = 1
            stack = [(start, iter(next_hops[start]))]
            while stack:
                node, onward_iter = stack[-1]
                nbr = next(onward_iter, None)
                if nbr is None:
                    color[node] = 2
                    stack.pop()
                    continue
                state = color.get(nbr, 0)
                if state == 1:
                    issues.append(FabricIssue(
                        "loop", node, destination,
                        f"path exceeds {max_hops} hops (cycle via {nbr})"))
                elif state == 0:
                    color[nbr] = 1
                    stack.append((nbr, iter(next_hops.get(nbr, []))))
    return issues


def assert_fabric_sound(switches, adapters) -> None:
    """Raise ``ValueError`` listing every issue, if any."""
    issues = validate_fabric(switches, adapters)
    if issues:
        raise ValueError(
            "fabric validation failed:\n"
            + "\n".join(str(issue) for issue in issues))

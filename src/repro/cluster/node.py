"""Compute and storage node assemblies."""

from __future__ import annotations

from ..cpu.host import HOST_FREQ_HZ, HostCPU
from ..io.disk import DiskArray
from ..io.os_model import OsCostModel
from ..io.scsi import ScsiBus
from ..io.tca import TCA
from ..mem.hierarchy import build_host_hierarchy
from ..net.hca import HCA
from ..sim.core import Environment
from ..sim.units import Clock
from .config import ClusterConfig


class ComputeNode:
    """A host: CPU + cache hierarchy + RDRAM + HCA + OS cost model."""

    def __init__(self, env: Environment, name: str, config: ClusterConfig):
        self.env = env
        self.name = name
        self.config = config
        clock = Clock(HOST_FREQ_HZ)
        self.hierarchy = build_host_hierarchy(
            clock, scaled_for_database=config.database_scaled_caches,
            extra_scale_divisor=config.cache_scale_divisor)
        self.cpu = HostCPU(env, self.hierarchy, name=name, clock=clock)
        self.hca = HCA(env, name, self.cpu, config=config.hca)
        self.os = OsCostModel(config.os)

    # ------------------------------------------------------------------
    # I/O request posting costs
    # ------------------------------------------------------------------
    def os_request(self, nbytes: int):
        """Charge the full OS cost of a host-destined disk request."""
        yield from self.cpu.busy(self.os.request_cost_ps(nbytes))

    def active_request(self):
        """Charge the (small) cost of posting a switch-destined request.

        The data never enters host memory, so there is no completion
        interrupt, no copy, and no kernel buffer management — "most of
        the busy time in the normal cases is disk I/O-related overhead
        like interrupt processing, all of which is eliminated in the
        active switch version" (Tar analysis).
        """
        yield from self.cpu.busy(self.config.active_request_cost_ps)

    def __repr__(self) -> str:
        return f"<ComputeNode {self.name}>"


class StorageNode:
    """A storage target: TCA + SCSI bus + disk array."""

    def __init__(self, env: Environment, name: str, config: ClusterConfig):
        self.env = env
        self.name = name
        self.config = config
        self.tca = TCA(env, name, config=config.tca)
        self.scsi = ScsiBus(env, f"{name}-scsi", config=config.scsi)
        self.disks = DiskArray(env, f"{name}-disks",
                               num_disks=config.num_disks, config=config.disk)

    def attach_faults(self, injector) -> None:
        """Subject this node's bus and spindles to ``injector``'s plan."""
        self.scsi.attach_faults(injector)
        self.disks.attach_faults(injector)

    def serve_read(self, offset: int, nbytes: int, started=None):
        """Read ``nbytes`` sequentially and push them onto the SAN.

        Completes when the last byte has left the storage node.  The
        SCSI data phase (320 MB/s) overlaps the disk transfer
        (100 MB/s aggregate), so the disks are the bottleneck; the bus
        contributes its per-transaction arbitration + selection
        overhead up front.  ``started`` fires when data begins flowing.
        """
        yield from self.tca.process_request()
        yield self.env.timeout(self.scsi.config.transaction_overhead_ps)
        self.scsi.stats.transactions += 1
        self.scsi.stats.bytes += nbytes
        yield from self.disks.read(offset, nbytes, started=started)
        self.tca.traffic.bytes_out += nbytes

    def serve_write(self, offset: int, nbytes: int):
        """Accept ``nbytes`` from the SAN and commit them to disk."""
        yield from self.tca.process_request()
        yield self.env.timeout(self.scsi.config.transaction_overhead_ps)
        self.scsi.stats.transactions += 1
        self.scsi.stats.bytes += nbytes
        yield from self.disks.write(offset, nbytes)
        self.tca.traffic.bytes_in += nbytes

    # ------------------------------------------------------------------
    # Burst fast path (see repro.sim.burst)
    # ------------------------------------------------------------------
    def serve_read_burst(self, at_ps: int, offset: int, nbytes: int):
        """Analytic mirror of :meth:`serve_read`: zero kernel events.

        ``at_ps`` is when the request arrives at the TCA; requests must
        come in nondecreasing ``at_ps`` order (callers issue at real
        simulated time, so this holds by construction).  Returns
        ``(started_ps, done_ps)`` — when the first data flows and when
        the last byte leaves the node — with every TCA/SCSI/disk
        counter updated exactly as the event-driven path would.
        """
        t = at_ps + self.tca.tca_config.request_processing_ps
        self.tca.requests_processed += 1
        t += self.scsi.config.transaction_overhead_ps
        self.scsi.stats.transactions += 1
        self.scsi.stats.bytes += nbytes
        started, done = self.disks.read_burst(t, offset, nbytes)
        self.tca.traffic.bytes_out += nbytes
        return started, done

    def serve_write_burst(self, at_ps: int, offset: int, nbytes: int):
        """Analytic mirror of :meth:`serve_write`; returns ``done_ps``."""
        t = at_ps + self.tca.tca_config.request_processing_ps
        self.tca.requests_processed += 1
        t += self.scsi.config.transaction_overhead_ps
        self.scsi.stats.transactions += 1
        self.scsi.stats.bytes += nbytes
        _, done = self.disks.write_burst(t, offset, nbytes)
        self.tca.traffic.bytes_in += nbytes
        return done

    def __repr__(self) -> str:
        return f"<StorageNode {self.name}>"

"""Multi-switch topologies: the reduction experiments' switch tree.

"We can organize the switches logically in a tree and have each leaf
switch combine the vectors from compute nodes connected to it and send
the result vector to its parent switch."  Each switch has 16 ports; 8
of a leaf's ports connect compute nodes (the paper's assumption), one
port uplinks to its parent.

The same fabric serves the *normal* MST reduction: routing tables send
host-addressed packets down the correct child port or up the default
uplink, so host-to-host messages transit the tree through the least
common ancestor.

Higher-level declarative topologies (multi-level trees with a chosen
radix, fat-tree/Clos fabrics with ECMP cores) are built on top of this
module by :mod:`repro.cluster.fabric`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..net.hca import HCA, HcaConfig
from ..net.link import Link, LinkConfig
from ..sim.core import Environment
from ..switch.active import ActiveSwitch, ActiveSwitchConfig
from ..switch.base import SwitchConfig
from .config import ClusterConfig
from .node import ComputeNode


class TopologyError(ValueError):
    """A topology specification cannot be wired consistently."""


@dataclass
class TreeSwitch:
    """One switch plus its tree bookkeeping."""

    switch: ActiveSwitch
    level: int
    parent: Optional["TreeSwitch"] = None
    children: List["TreeSwitch"] = field(default_factory=list)
    hosts: List[ComputeNode] = field(default_factory=list)
    #: Hosts in this switch's subtree (for routing).
    subtree_hosts: List[str] = field(default_factory=list)
    #: Fail-stop ground truth: when this switch died (None = alive).
    failed_at: Optional[int] = None
    #: When a surviving neighbor first *detected* the death; the gap to
    #: ``failed_at`` is the fabric's detection latency.
    detected_down_at: Optional[int] = None

    @property
    def is_down(self) -> bool:
        return self.failed_at is not None

    @property
    def name(self) -> str:
        return self.switch.name

    @property
    def fan_in(self) -> int:
        """Streams this switch combines: hosts (leaf) or children."""
        return len(self.hosts) if self.hosts else len(self.children)


class SwitchTree:
    """A tree of active switches with hosts on the leaves.

    ``radix`` is the number of children per internal switch; it
    defaults to ``hosts_per_leaf`` (the paper's "half the ports face
    down" shape).  Both must leave the uplink port (``switch_ports -
    1``) free, or the constructor raises :class:`TopologyError` instead
    of silently double-wiring a port.
    """

    def __init__(
        self,
        env: Environment,
        num_hosts: int,
        hosts_per_leaf: int = 8,
        switch_ports: int = 16,
        cluster_config: Optional[ClusterConfig] = None,
        hca_config: Optional[HcaConfig] = None,
        link_config: Optional[LinkConfig] = None,
        active_config: Optional[ActiveSwitchConfig] = None,
        radix: Optional[int] = None,
        injector=None,
    ):
        if num_hosts < 1:
            raise TopologyError("need at least one host")
        if hosts_per_leaf < 1 or hosts_per_leaf > switch_ports - 1:
            raise TopologyError(
                f"hosts_per_leaf={hosts_per_leaf} must be in "
                f"[1, {switch_ports - 1}] to leave an uplink port on a "
                f"{switch_ports}-port switch")
        radix = hosts_per_leaf if radix is None else radix
        if radix < 2 or radix > switch_ports - 1:
            raise TopologyError(
                f"radix={radix} must be in [2, {switch_ports - 1}] to "
                f"leave an uplink port on a {switch_ports}-port switch")
        self.env = env
        self.num_hosts = num_hosts
        self.hosts_per_leaf = hosts_per_leaf
        self.radix = radix
        # Mutable-default hygiene: configs are constructed (or taken
        # from the cluster config) per tree, never shared module-level
        # instances — one tree's configuration can never leak into the
        # next (regression: shared dataclass default arguments).
        cluster_config = cluster_config or ClusterConfig()
        self.link_config = (link_config if link_config is not None
                            else cluster_config.link)
        active_config = (active_config if active_config is not None
                         else cluster_config.active_switch)
        #: Optional FaultInjector; every link and switch in the tree is
        #: subjected to its plan.  None builds a perfect fabric.
        self.injector = injector
        self._switch_count = 0
        hca_config = hca_config or cluster_config.hca
        switch_config = SwitchConfig(
            num_ports=switch_ports,
            routing_latency_ps=cluster_config.switch.routing_latency_ps)

        # Hosts.
        self.hosts: List[ComputeNode] = []
        for i in range(num_hosts):
            node = ComputeNode(env, f"host{i}", cluster_config)
            node.hca = HCA(env, node.name, node.cpu, config=hca_config)
            self.hosts.append(node)

        # Leaves.
        def new_switch(level: int) -> TreeSwitch:
            name = f"sw-l{level}-{self._switch_count}"
            self._switch_count += 1
            switch = ActiveSwitch(env, name, switch_config, active_config)
            if self.injector is not None:
                switch.attach_faults(self.injector)
            return TreeSwitch(switch=switch, level=level)

        self.levels: List[List[TreeSwitch]] = []
        leaves: List[TreeSwitch] = []
        for start in range(0, num_hosts, hosts_per_leaf):
            leaf = new_switch(0)
            for port_offset, host in enumerate(
                    self.hosts[start:start + hosts_per_leaf]):
                self._wire_host(leaf, port_offset, host)
            leaves.append(leaf)
        self.levels.append(leaves)

        # Internal levels: ``radix`` children per parent — the default
        # (radix == hosts_per_leaf) matches the paper's assumption that
        # half the ports face down and its log_{N/2}(p) scaling factor.
        level = 0
        current = leaves
        while len(current) > 1:
            level += 1
            parents: List[TreeSwitch] = []
            for start in range(0, len(current), radix):
                parent = new_switch(level)
                for port_offset, child in enumerate(
                        current[start:start + radix]):
                    self._wire_switches(parent, port_offset, child)
                parents.append(parent)
            self.levels.append(parents)
            current = parents
        self.root = current[0]
        self._finalize_routing()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _wire_host(self, leaf: TreeSwitch, port: int, host: ComputeNode):
        to_switch = Link(self.env, f"{host.name}->{leaf.name}",
                         self.link_config)
        from_switch = Link(self.env, f"{leaf.name}->{host.name}",
                           self.link_config)
        if self.injector is not None:
            to_switch.attach_faults(self.injector)
            from_switch.attach_faults(self.injector)
        host.hca.attach(tx_link=to_switch, rx_link=from_switch)
        leaf.switch.connect(port, tx_link=from_switch, rx_link=to_switch)
        leaf.switch.routing.add(host.name, port)
        leaf.hosts.append(host)
        leaf.subtree_hosts.append(host.name)

    def _wire_switches(self, parent: TreeSwitch, port: int,
                       child: TreeSwitch):
        child_uplink_port = child.switch.config.num_ports - 1
        up = Link(self.env, f"{child.name}->{parent.name}", self.link_config)
        down = Link(self.env, f"{parent.name}->{child.name}", self.link_config)
        if self.injector is not None:
            up.attach_faults(self.injector)
            down.attach_faults(self.injector)
        parent.switch.connect(port, tx_link=down, rx_link=up)
        child.switch.connect(child_uplink_port, tx_link=up, rx_link=down)
        parent.switch.routing.add(child.name, port)
        child.switch.routing.add(parent.name, child_uplink_port)
        child.switch.routing.set_default(child_uplink_port)
        child.parent = parent
        parent.children.append(child)
        parent.subtree_hosts.extend(child.subtree_hosts)

    def _finalize_routing(self) -> None:
        # Downward routes at internal switches: every subtree host, and
        # every descendant *switch* (placement engines address partial
        # results and broadcasts to switch names, not just hosts).
        # Every switch also reaches every other node via its up/down
        # defaults.
        for level in self.levels[1:]:
            for node in level:
                for port, child in enumerate(node.children):
                    node.switch.routing.add_many(child.subtree_hosts, port)
                    node.switch.routing.add_many(
                        self._descendant_switches(child), port)
        # The root has no uplink: anything unknown is an error, which is
        # what we want (all hosts/switches are below it).

    def _descendant_switches(self, node: TreeSwitch) -> List[str]:
        names = [node.name]
        for child in node.children:
            names.extend(self._descendant_switches(child))
        return names

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def switches(self) -> List[TreeSwitch]:
        return [node for level in self.levels for node in level]

    @property
    def depth(self) -> int:
        """Number of switch levels."""
        return len(self.levels)

    def leaf_of(self, host: ComputeNode) -> TreeSwitch:
        """The leaf switch a host hangs off."""
        for leaf in self.levels[0]:
            if host in leaf.hosts:
                return leaf
        raise ValueError(f"{host.name} not in this tree")

    # ------------------------------------------------------------------
    # Consistency audit
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Audit port accounting, routing tables, and fan-in.

        Partially filled last leaves (``num_hosts`` not a multiple of
        ``hosts_per_leaf``) are legal; what this guards against is any
        shape where the wiring and the routing tables disagree — every
        such inconsistency raises :class:`TopologyError` up front
        instead of mis-routing packets mid-simulation.
        """
        problems: List[str] = []
        # Host partitioning: every host on exactly one leaf, routed there.
        seen = {}
        for leaf in self.levels[0]:
            if leaf.children:
                problems.append(f"{leaf.name}: leaf has switch children")
            for host in leaf.hosts:
                if host.name in seen:
                    problems.append(
                        f"{host.name} attached to both {seen[host.name]} "
                        f"and {leaf.name}")
                seen[host.name] = leaf.name
                if not leaf.switch.routing.has_route(host.name):
                    problems.append(
                        f"{leaf.name}: no explicit route to its own host "
                        f"{host.name}")
        if len(seen) != self.num_hosts:
            problems.append(
                f"{len(seen)} hosts wired, expected {self.num_hosts}")
        # Fan-in and port accounting per switch.
        for level_index, level in enumerate(self.levels):
            for node in level:
                expected_fan = (len(node.hosts) if level_index == 0
                                else len(node.children))
                if node.fan_in != expected_fan:
                    problems.append(
                        f"{node.name}: fan_in {node.fan_in} != "
                        f"{expected_fan} attached streams")
                downlinks = len(node.hosts) + len(node.children)
                uplinks = 1 if node.parent is not None else 0
                connected = len(node.switch.connected_ports())
                if connected != downlinks + uplinks:
                    problems.append(
                        f"{node.name}: {connected} connected ports, "
                        f"expected {downlinks} down + {uplinks} up")
                if node.parent is None and \
                        node.switch.routing.default_port is not None:
                    problems.append(
                        f"{node.name}: root must not have a default "
                        f"(uplink) port")
        # Subtree bookkeeping matches the actual host set.
        if sorted(self.root.subtree_hosts) != sorted(seen):
            problems.append("root subtree_hosts disagrees with wired hosts")
        # Routing soundness (walks every table hop by hop).
        from .validation import validate_fabric
        for issue in validate_fabric([n.switch for n in self.switches],
                                     [h.hca for h in self.hosts]):
            problems.append(str(issue))
        if problems:
            raise TopologyError(
                f"inconsistent switch tree ({self.num_hosts} hosts, "
                f"{self.hosts_per_leaf}/leaf, radix {self.radix}):\n  "
                + "\n  ".join(problems))

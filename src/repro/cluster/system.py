"""System assembly: hosts, switch(es), storage, and the bulk datapath.

:class:`System` builds one SAN cluster from a :class:`ClusterConfig`:
every host and storage node hangs off one central switch (the paper's
Figure 1), wired with real duplex links, with routing tables populated.

Two datapaths coexist:

* the **packet path** — real per-packet simulation through HCAs, links,
  and the (active) switch; used for small messages (reductions, request
  headers) and fully exercised by the integration tests;
* the **block path** — bulk sequential I/O moves in request-sized blocks
  whose intra-block pipelining (cut-through, valid-bit streaming) is
  priced from the same component parameters; used by the streaming
  benchmarks where per-packet simulation of ~250 000 MTUs per run would
  add nothing but wall-clock time (see DESIGN.md section 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import heapq
from collections import deque

from ..net.link import Link
from ..net.packet import HEADER_BYTES, MTU
from ..obs.registry import MetricsRegistry
from ..sim.burst import perblock_requested
from ..sim.core import Environment
from ..sim.resources import Store
from ..sim.units import transfer_ps
from ..switch.active import ActiveSwitch
from ..switch.base import BaseSwitch
from .config import ClusterConfig
from .node import ComputeNode, StorageNode
from .template import SystemTemplate, build_system_template


class System:
    """One switch-centred SAN cluster."""

    def __init__(self, config: ClusterConfig,
                 env: Optional[Environment] = None,
                 template: Optional["SystemTemplate"] = None):
        self.config = config
        self.env = env if env is not None else Environment()
        # The config-pure construction prefix (resolved switch config,
        # node layout) either arrives pre-derived from the per-process
        # template cache (repro.cluster.template) or is derived inline;
        # both paths produce value-equal data, so the wired system is
        # bit-identical either way (tests/cluster/test_template.py).
        if template is None:
            template = build_system_template(config)
        switch_config = template.switch_config
        if config.active:
            self.switch = ActiveSwitch(self.env, "sw0", switch_config,
                                       config.active_switch)
        else:
            self.switch = BaseSwitch(self.env, "sw0", switch_config)

        #: Deterministic fault scheduler; None on a perfect fabric, in
        #: which case no component ever consults the fault machinery.
        self.injector = None
        if config.faults is not None and config.faults.enabled:
            from ..faults import FaultInjector
            self.injector = FaultInjector(config.faults, seed=config.seed)
            self.env.add_context_provider(self.injector.failure_context)
            if config.active:
                self.switch.attach_faults(self.injector)

        self.hosts: List[ComputeNode] = []
        self.storage_nodes: List[StorageNode] = []
        self._links: Dict[str, tuple] = {}

        port = 0
        for name in template.host_names:
            node = ComputeNode(self.env, name, config)
            self._attach(node.hca, node.name, port)
            self.hosts.append(node)
            port += 1
        for name in template.storage_names:
            node = StorageNode(self.env, name, config)
            self._attach(node.tca, node.name, port)
            if self.injector is not None:
                node.attach_faults(self.injector)
            self.storage_nodes.append(node)
            port += 1

        #: Block-level pool of embedded CPUs (active systems only).
        self.switch_cpu_pool: Optional[Store] = None
        #: Burst-path stand-in for the pool: ``(free_at_ps, seq, cpu)``
        #: min-heap, popped/pushed by :meth:`process_on_switch`.  The
        #: heap only goes empty while an event-waiting caller holds a
        #: CPU across a real yield; ``_cpu_waiters`` queues arrivals in
        #: FIFO order for that window, mirroring the Store's get queue.
        self._cpu_ready = None
        self._cpu_seq = 0
        self._cpu_waiters = deque()
        if config.active:
            self.switch_cpu_pool = Store(self.env)
            for cpu in self.switch.cpus:
                self.switch_cpu_pool.items.append(cpu)
            self._cpu_ready = [(0, i, cpu)
                               for i, cpu in enumerate(self.switch.cpus)]
            self._cpu_seq = len(self.switch.cpus)

        #: Burst fast path eligibility (see repro.sim.burst).  Fault
        #: injection needs the event-driven retry loops, so any attached
        #: injector pins the run to the per-block reference path.
        self._burst = self.injector is None and not perblock_requested()

        #: Unified metric namespace over every component's counters;
        #: pull-based, so registration costs nothing at simulation time.
        self.metrics = MetricsRegistry()
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Expose every component's counters as named registry probes."""
        m = self.metrics
        m.register("sim.event_count", lambda: self.env.event_count)
        m.register("sim.now_ps", lambda: self.env.now)
        for to_switch, from_switch in self._links.values():
            for link in (to_switch, from_switch):
                m.register_stats(
                    f"link.{link.name}", link.stats,
                    ["packets_sent", "packets_delivered", "packets_dropped",
                     "packets_corrupted", "retransmits", "bytes_sent",
                     "bytes_delivered"])
                m.register(f"link.{link.name}.utilization", link.utilization)
        for node in self.hosts:
            acct = node.cpu.accounting
            m.register(f"cpu.{node.cpu.name}.busy_ps",
                       lambda a=acct: a.busy_ps)
            m.register(f"cpu.{node.cpu.name}.stall_ps",
                       lambda a=acct: a.stall_ps)
            m.register(f"hca.{node.name}.bytes_in",
                       lambda h=node.hca: h.traffic.bytes_in)
            m.register(f"hca.{node.name}.bytes_out",
                       lambda h=node.hca: h.traffic.bytes_out)
            self._register_hierarchy(f"mem.{node.name}", node.hierarchy)
        for node in self.storage_nodes:
            for disk in node.disks.disks:
                m.register_stats(
                    f"disk.{disk.name}", disk.stats,
                    ["requests", "sequential_requests", "bytes_read",
                     "bytes_written", "positioning_ps", "transfer_ps_total",
                     "transient_errors", "retries"])
                m.register(f"disk.{disk.name}.utilization",
                           disk.busy.utilization)
        if isinstance(self.switch, ActiveSwitch):
            switch = self.switch
            for cpu in switch.cpus:
                m.register(f"cpu.{cpu.name}.busy_ps",
                           lambda a=cpu.accounting: a.busy_ps)
                m.register(f"cpu.{cpu.name}.stall_ps",
                           lambda a=cpu.accounting: a.stall_ps)
            m.register("switch.dispatched",
                       lambda: switch.scheduler.stats.dispatched)
            m.register("switch.queued_waits",
                       lambda: switch.scheduler.stats.queued_waits)
            m.register("switch.send.messages",
                       lambda: switch.send_unit.stats.messages)
            m.register("switch.send.bytes",
                       lambda: switch.send_unit.stats.bytes)
            m.register("switch.buffers.in_use",
                       lambda: switch.buffers.in_use)
            for cpu in switch.cpus:
                self._register_hierarchy(f"mem.{cpu.name}", cpu.hierarchy)

    #: CacheStats fields exposed per cache level (shared vocabulary with
    #: ``repro.bench``, which derives the accesses/sec rates from these).
    _CACHE_FIELDS = ["accesses", "hits", "misses", "evictions", "writebacks"]

    def _register_hierarchy(self, prefix: str, hierarchy) -> None:
        """Cache-simulation counters for one CPU's memory hierarchy.

        Every cache level, TLB, and the RDRAM behind one
        :class:`~repro.mem.MemoryHierarchy` lands under ``mem.<cpu>.*``,
        so traces, the golden-equivalence tests, and ``python -m
        repro.bench`` all read the same names.
        """
        m = self.metrics
        for level in ("l1d", "l1i", "l2"):
            cache = getattr(hierarchy, level)
            if cache is not None:
                m.register_stats(f"{prefix}.{level}", cache.stats,
                                 self._CACHE_FIELDS)
        for level in ("dtlb", "itlb"):
            tlb = getattr(hierarchy, level)
            if tlb is not None:
                m.register_stats(f"{prefix}.{level}", tlb.stats,
                                 ["accesses", "misses"])
        m.register_stats(f"{prefix}.rdram", hierarchy.memory.stats,
                         ["accesses", "page_hits", "page_misses",
                          "bytes_transferred"])
        for bucket in ("load_stall_ps", "store_stall_ps",
                       "ifetch_stall_ps", "tlb_stall_ps"):
            m.register(f"{prefix}.{bucket}",
                       lambda h=hierarchy, b=bucket: getattr(h, b))

    def burst_ok(self) -> bool:
        """True when the burst fast path may replace the per-block one.

        Checked at use time (not construction) because structured
        tracing — which needs the real per-event spans — is attached
        after the system is built.  Bit-identity between the two paths
        is enforced by tests/sim/test_golden_burst.py.
        """
        return self._burst and self.env.trace is None

    def attach_trace(self, collector) -> None:
        """Attach a ``repro.obs.TraceCollector``: every instrumented
        component starts emitting structured events into it.  Call before
        ``env.run`` — the drain loop picks its instrumented flavour on
        entry."""
        self.env.trace = collector

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _attach(self, adapter, name: str, port: int) -> None:
        to_switch = Link(self.env, f"{name}->sw0", self.config.link)
        from_switch = Link(self.env, f"sw0->{name}", self.config.link)
        if self.injector is not None:
            to_switch.attach_faults(self.injector)
            from_switch.attach_faults(self.injector)
        adapter.attach(tx_link=to_switch, rx_link=from_switch)
        self.switch.connect(port, tx_link=from_switch, rx_link=to_switch)
        self.switch.routing.add(name, port)
        self._links[name] = (to_switch, from_switch)

    @property
    def host(self) -> ComputeNode:
        """The (first) host — convenience for single-host experiments."""
        return self.hosts[0]

    @property
    def storage(self) -> StorageNode:
        """The (first) storage node."""
        return self.storage_nodes[0]

    def links_for(self, name: str):
        """(to_switch, from_switch) link pair of node ``name``."""
        return self._links[name]

    # ------------------------------------------------------------------
    # Reliability reporting
    # ------------------------------------------------------------------
    def reliability_report(self) -> Dict[str, float]:
        """Fault/recovery metrics for the run report.

        Empty on a perfect fabric (the default), so fault-free results
        carry exactly the pre-reliability metrics; under a fault plan it
        aggregates what was injected and what the recovery machinery
        did: retransmits, retries, drops/corruptions, crash containment,
        and time spent in degraded (quarantined-handler) mode.

        Caveat: observability loss is reliability information too.  If a
        capacity-bounded trace sink dropped events — the structured
        ``env.trace`` collector or the legacy per-switch ``Tracer`` —
        ``trace_events_dropped`` reports how many, whether or not faults
        were injected.  A 0 count is omitted, so fault-free untraced runs
        still return ``{}`` and stay bit-identical to the seed.
        """
        report: Dict[str, float] = {}
        trace = self.env.trace
        trace_dropped = trace.dropped if trace is not None else 0
        legacy = getattr(self.switch, "tracer", None)
        if legacy is not None:
            trace_dropped += legacy.dropped
        if trace_dropped:
            report["trace_events_dropped"] = float(trace_dropped)
        if self.injector is None:
            return report
        retransmits = dropped = corrupted = 0
        capped = abandoned = 0
        for to_switch, from_switch in self._links.values():
            for link in (to_switch, from_switch):
                retransmits += link.stats.retransmits
                dropped += link.stats.packets_dropped
                corrupted += link.stats.packets_corrupted
                capped += link.stats.capped_backoffs
                abandoned += link.stats.packets_abandoned
        report["link_retransmits"] = float(retransmits)
        report["link_packets_dropped"] = float(dropped)
        report["link_packets_corrupted"] = float(corrupted)
        # Fail-stop counters only appear when the machinery fired, so
        # transient-only chaos reports keep their pre-1.5 key set.
        if capped:
            report["link_capped_backoffs"] = float(capped)
        if abandoned:
            report["link_packets_abandoned"] = float(abandoned)
        ports_failed = self.switch.stats.ports_failed
        tx_abandoned = self.switch.stats.tx_abandoned
        if ports_failed:
            report["switch_ports_failed"] = float(ports_failed)
        if tx_abandoned:
            report["switch_tx_abandoned"] = float(tx_abandoned)
        report["disk_transient_errors"] = float(
            sum(node.disks.transient_errors for node in self.storage_nodes))
        report["disk_retries"] = float(
            sum(node.disks.retries for node in self.storage_nodes))
        report["scsi_parity_errors"] = float(
            sum(node.scsi.stats.parity_errors for node in self.storage_nodes))
        report["scsi_retries"] = float(
            sum(node.scsi.stats.retries for node in self.storage_nodes))
        if isinstance(self.switch, ActiveSwitch):
            degradation = self.switch.degradation
            report["handler_contained_crashes"] = float(
                degradation.contained_crashes)
            report["handler_quarantined"] = float(
                degradation.quarantined_handlers)
            report["atb_corruptions"] = float(degradation.atb_corruptions)
            report["fallback_messages"] = float(degradation.fallback_messages)
            report["degraded_time_ps"] = float(self.switch.degraded_time_ps())
        report.update(self.injector.snapshot())
        return report

    # ------------------------------------------------------------------
    # Fixed path latencies (block path)
    # ------------------------------------------------------------------
    def request_path_ps(self) -> int:
        """Control-message latency host -> storage (CPU charge excluded)."""
        link = self.config.link
        control_wire = transfer_ps(2 * HEADER_BYTES, link.bandwidth_bytes_per_s)
        return (self.config.hca.per_packet_ps
                + control_wire + link.propagation_ps
                + self.config.switch.routing_latency_ps
                + control_wire + link.propagation_ps)

    def _hop_ps(self, payload: int = MTU) -> int:
        """One MTU through one link + the switch."""
        link = self.config.link
        return (transfer_ps(payload + HEADER_BYTES, link.bandwidth_bytes_per_s)
                + link.propagation_ps
                + self.config.switch.routing_latency_ps)

    def first_data_tail_ps(self, to_switch: bool) -> int:
        """Storage-to-destination latency of the stream's first MTU."""
        disk_mtu = transfer_ps(MTU, self.storage.disks.aggregate_bandwidth)
        scsi_mtu = self.storage.scsi.occupancy_ps(MTU)
        tail = disk_mtu + scsi_mtu + self.config.tca.per_packet_ps + self._hop_ps()
        if not to_switch:
            link = self.config.link
            tail += (transfer_ps(MTU + HEADER_BYTES, link.bandwidth_bytes_per_s)
                     + link.propagation_ps + self.config.hca.per_packet_ps)
        return tail

    def last_data_tail_ps(self, to_switch: bool) -> int:
        """Latency from last byte off the platter to last byte at dest."""
        scsi_mtu = self.storage.scsi.occupancy_ps(MTU)
        tail = scsi_mtu + self.config.tca.per_packet_ps + self._hop_ps()
        if not to_switch:
            link = self.config.link
            tail += (transfer_ps(MTU + HEADER_BYTES, link.bandwidth_bytes_per_s)
                     + link.propagation_ps + self.config.hca.per_packet_ps)
        return tail

    # ------------------------------------------------------------------
    # Bulk movement helpers
    # ------------------------------------------------------------------
    def switch_to_host_bulk(self, host: ComputeNode, nbytes: int):
        """Handler output streaming from the switch into host memory.

        Holds the host's downlink for the wire occupancy and accounts
        the bytes as host I/O traffic.
        """
        if nbytes <= 0:
            return
            yield  # pragma: no cover
        _, from_switch = self._links[host.name]
        if self.burst_ok():
            start, end = self._reserve_wires((from_switch,),
                                             from_switch.occupancy_ps(nbytes))
            if start > self.env.now:
                yield self.env.timeout(start - self.env.now)
            yield self.env.timeout(end - self.env.now)
            host.hca.account_bulk_in(nbytes)
            return
        with from_switch.acquire().request() as grant:
            yield grant
            yield self.env.timeout(from_switch.occupancy_ps(nbytes))
        host.hca.account_bulk_in(nbytes)

    def host_to_host_bulk(self, src: ComputeNode, dst: ComputeNode,
                          nbytes: int):
        """Bulk memory-to-memory transfer between two hosts.

        Cut-through: the uplink of ``src`` and downlink of ``dst`` are
        held simultaneously for the wire occupancy.
        """
        if nbytes <= 0:
            return
            yield  # pragma: no cover
        to_switch, _ = self._links[src.name]
        _, from_switch = self._links[dst.name]
        hold_ps = (to_switch.occupancy_ps(nbytes)
                   + self.config.switch.routing_latency_ps)
        if self.burst_ok():
            start, end = self._reserve_wires((to_switch, from_switch),
                                             hold_ps)
            if start > self.env.now:
                yield self.env.timeout(start - self.env.now)
            yield self.env.timeout(end - self.env.now)
            src.hca.account_bulk_out(nbytes)
            dst.hca.account_bulk_in(nbytes)
            return
        with to_switch.acquire().request() as up, \
                from_switch.acquire().request() as down:
            yield self.env.all_of([up, down])
            yield self.env.timeout(hold_ps)
        src.hca.account_bulk_out(nbytes)
        dst.hca.account_bulk_in(nbytes)

    def switch_to_remote_bulk(self, dst_name: str, nbytes: int):
        """Handler output streamed to an arbitrary node (Tar's archive).

        Only the destination's downlink is held; the source is the
        switch's own data buffers.
        """
        if nbytes <= 0:
            return
            yield  # pragma: no cover
        _, from_switch = self._links[dst_name]
        if self.burst_ok():
            start, end = self._reserve_wires((from_switch,),
                                             from_switch.occupancy_ps(nbytes))
            if start > self.env.now:
                yield self.env.timeout(start - self.env.now)
            yield self.env.timeout(end - self.env.now)
            return
        with from_switch.acquire().request() as grant:
            yield grant
            yield self.env.timeout(from_switch.occupancy_ps(nbytes))

    def _reserve_wires(self, links, hold_ps: int):
        """Burst-path wire arbitration: reserve ``links`` jointly for
        ``hold_ps`` starting at their common free time, returning the
        ``(grant, release)`` times.

        Callers arrive in nondecreasing ``env.now`` order, so the
        scalar free-at state grants in exactly the FIFO order the
        per-block path's wire Resources would.  Callers must sleep to
        ``grant`` *first* and only then schedule the hold as its own
        timeout: the per-block path schedules its occupancy timeout at
        the grant instant, and two transfers releasing at the same
        picosecond are processed in grant order — a single call-time
        timeout would invert that order and shift downstream FIFO
        queues.  Bulk reservations never touch ``link.busy`` —
        matching the event-driven bulk helpers, whose utilization
        figure is documented as packet-path-only.
        """
        start = self.env.now
        for link in links:
            if link.bulk_free_ps > start:
                start = link.bulk_free_ps
        end = start + hold_ps
        for link in links:
            link.bulk_free_ps = end
        return start, end

    # ------------------------------------------------------------------
    # Block-level handler execution
    # ------------------------------------------------------------------
    def switch_cpu_peek(self):
        """The CPU the next :meth:`process_on_switch` call would grant.

        Apps pre-evaluate a block's handler cache stalls on the CPU
        that will run it; this mirrors the pool's FIFO head on both the
        per-block path (Store head) and the burst path (earliest-free
        heap entry), falling back to cpu 0 when every CPU is in flight
        — exactly the ``pool.items[0] if pool.items else cpus[0]``
        idiom the apps used against the Store directly.
        """
        if self.switch_cpu_pool is None:
            raise RuntimeError("switch_cpu_peek requires an active system")
        if self.burst_ok():
            if not self._cpu_ready:
                return self.switch.cpus[0]
            ready_ps, _, cpu = self._cpu_ready[0]
            return cpu if ready_ps <= self.env.now else self.switch.cpus[0]
        return (self.switch_cpu_pool.items[0]
                if self.switch_cpu_pool.items else self.switch.cpus[0])

    def _cpu_pop(self):
        """Claim the earliest-free pool entry, queueing FIFO while an
        event-waiting caller has the heap drained."""
        while not self._cpu_ready:
            waiter = self.env.event()
            self._cpu_waiters.append(waiter)
            yield waiter
        return heapq.heappop(self._cpu_ready)

    def _cpu_push(self, free_at_ps: int, cpu) -> None:
        self._cpu_seq += 1
        heapq.heappush(self._cpu_ready, (free_at_ps, self._cpu_seq, cpu))
        if self._cpu_waiters:
            self._cpu_waiters.popleft().succeed()

    def _process_on_switch_burst(self, cycles: float, stall_ps: int,
                                 arrival_end_event, arrival_end_ps):
        """Burst-pool handler execution: pop the earliest-free CPU,
        replay the grant/pre-wait/work/post-wait arithmetic, push it
        back with its new free time.

        Popping at call time is the Store's FIFO: waiters are assigned
        CPUs in arrival order, earliest-freed first.  When the arrival
        completion time is known (``arrival_end_ps``) the whole body is
        analytic — one timeout.  A caller that only has the completion
        *event* still shares the same pool state; it walks to the grant
        time and waits the event for real.
        """
        ready_ps, _, cpu = yield from self._cpu_pop()
        now = self.env.now
        acct = cpu.accounting
        if arrival_end_ps is None and arrival_end_event is not None:
            if ready_ps > now:
                yield self.env.timeout(ready_ps - now)
            if not self.config.cut_through \
                    and not arrival_end_event.processed:
                wait_start = self.env.now
                yield arrival_end_event
                acct.add_stall(self.env.now - wait_start)
            yield from cpu.work(busy_cycles=cycles, stall_ps=stall_ps)
            if not arrival_end_event.processed:
                wait_start = self.env.now
                yield arrival_end_event
                acct.add_stall(self.env.now - wait_start)
            self._cpu_push(self.env.now, cpu)
            return cpu
        t = now if now > ready_ps else ready_ps
        if not self.config.cut_through and arrival_end_ps is not None \
                and arrival_end_ps > t:
            acct.add_stall(arrival_end_ps - t)
            t = arrival_end_ps
        work_ps = cpu.clock.cycles(cycles)
        acct.add_busy(work_ps)
        acct.add_stall(stall_ps)
        t += work_ps + stall_ps
        if arrival_end_ps is not None and arrival_end_ps > t:
            acct.add_stall(arrival_end_ps - t)
            t = arrival_end_ps
        self._cpu_push(t, cpu)
        if t > now:
            yield self.env.timeout(t - now)
        return cpu

    def switch_cpu_peek_at(self, now_ps: int):
        """Burst-pool :meth:`switch_cpu_peek` at an explicit instant.

        The open-loop service worker evaluates a request's handler
        stalls before it has advanced the clock to the dispatch time;
        passing that time keeps the peek identical to what the staged
        path would see when it got there.
        """
        if not self._cpu_ready:
            return self.switch.cpus[0]
        ready_ps, _, cpu = self._cpu_ready[0]
        return cpu if ready_ps <= now_ps else self.switch.cpus[0]

    def process_on_switch_at(self, ready_ps: int, cycles: float,
                             stall_ps: int) -> int:
        """Analytic handler dispatch at an explicit ready time.

        The zero-yield twin of the burst branch of
        :meth:`process_on_switch` for callers (the service worker) that
        know when the block is ready before the clock gets there.
        Callers must issue in nondecreasing ``ready_ps`` order — the
        service pipeline's post/storage stages are FIFO, so dispatch
        order is completion order and the pool grants exactly as the
        staged path would.  Returns the completion time.
        """
        free_ps, _, cpu = heapq.heappop(self._cpu_ready)
        t = ready_ps if ready_ps > free_ps else free_ps
        acct = cpu.accounting
        work_ps = cpu.clock.cycles(cycles)
        acct.add_busy(work_ps)
        acct.add_stall(stall_ps)
        t += work_ps + stall_ps
        self._cpu_push(t, cpu)
        return t

    def switch_to_host_bulk_at(self, host: ComputeNode, nbytes: int,
                               ready_ps: int) -> int:
        """Analytic twin of :meth:`switch_to_host_bulk` at an explicit
        ready time; returns the downlink release time.

        Single-wire reservations grant in call order, so a caller that
        sleeps straight to the returned release sees the same FIFO the
        staged grant-then-hold pair produces.
        """
        if nbytes <= 0:
            return ready_ps
        _, from_switch = self._links[host.name]
        start = ready_ps
        if from_switch.bulk_free_ps > start:
            start = from_switch.bulk_free_ps
        end = start + from_switch.occupancy_ps(nbytes)
        from_switch.bulk_free_ps = end
        host.hca.account_bulk_in(nbytes)
        return end

    def process_on_switch(self, cycles: float, stall_ps: int,
                          arrival_end_event=None, arrival_end_ps=None):
        """Run one block's worth of handler work on a free switch CPU.

        The handler computes while the block streams in (valid-bit
        overlap): completion is ``max(compute done, arrival done)``.
        Waiting for data beyond the compute time is charged as switch
        CPU stall (stalled on invalid buffer lines).

        ``arrival_end_ps`` is the burst-path twin of
        ``arrival_end_event`` — the arrival completion time, known
        analytically up front.  Pass both when available; callers that
        only have the event still work on either path.
        """
        if self.switch_cpu_pool is None:
            raise RuntimeError("process_on_switch requires an active system")
        if self.burst_ok():
            cpu = yield from self._process_on_switch_burst(
                cycles, stall_ps, arrival_end_event, arrival_end_ps)
            return cpu
        cpu = yield self.switch_cpu_pool.get()
        try:
            if not self.config.cut_through and arrival_end_event is not None \
                    and not arrival_end_event.processed:
                # Store-and-forward ablation: no valid-bit overlap — the
                # handler may not start until the whole block is in.
                wait_start = self.env.now
                yield arrival_end_event
                cpu.accounting.add_stall(self.env.now - wait_start)
            yield from cpu.work(busy_cycles=cycles, stall_ps=stall_ps)
            if arrival_end_event is not None and not arrival_end_event.processed:
                wait_start = self.env.now
                yield arrival_end_event
                cpu.accounting.add_stall(self.env.now - wait_start)
        finally:
            yield self.switch_cpu_pool.put(cpu)
        return cpu

    def __repr__(self) -> str:
        return (f"<System {self.config.case_label}: {len(self.hosts)} hosts, "
                f"{len(self.storage_nodes)} storage, "
                f"switch={'active' if self.config.active else 'base'}>")

"""Hierarchical handler placement on multi-stage fabrics.

Given a fabric and an aggregation workload (one vector per host,
combined with an associative operation), the placement engine decides
*which switch at which level runs which handler instance*:

``root_only``
    One finalize instance at the fabric's aggregation root; every host
    fires its vector straight at it.  This is the paper's single-switch
    design stretched across a fabric — it works, but the root's ATB and
    CPUs serialize all ``p`` inputs.
``leaf_combine``
    Combine instances on the leaf switches (each folds its attached
    hosts' vectors into one partial), finalize at the root.  Traffic
    above the leaves drops from ``p`` vectors to one per leaf.
``per_level``
    Combine at *every* tree level — leaves fold hosts, each internal
    switch folds its children's partials, the root finalizes.  This is
    the paper's Section 6 "organize the switches logically in a tree"
    scheme; upper-level traffic is one vector per child.

A plan is pure data (:class:`PlacementPlan`); :func:`install_plan`
programs the real switches — dispatch, data buffers, ATB staging slots,
send unit — and :func:`run_placed_reduction` drives a full packet-level
reduction through it.  Per-level combine/forward counters land in a
:class:`~repro.obs.MetricsRegistry` and, when the environment carries a
trace collector, each combine/finalize emits a trace instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.packet import ActiveHeader
from .fabric import Fabric
from .topology import TopologyError

#: Handler IDs installed by the placement engine.
H_COMBINE = 1

#: Switch-side vector add: 2 cycles/word (buffer operand streams in at
#: single-cycle access; the add overlaps the copy — see apps/reduction).
SWITCH_ADD_CYCLES_PER_WORD = 2

PLACEMENT_POLICIES = ("root_only", "leaf_combine", "per_level")


@dataclass(frozen=True)
class Placement:
    """One handler instance: where it runs and what it expects."""

    switch: str
    level: int
    role: str                   # "combine" | "finalize"
    expected: int               # inputs to fold before forwarding
    parent: Optional[str]       # partials go here (None = finalize)
    slot: int                   # ATB staging slot at the parent


@dataclass
class PlacementPlan:
    """Pure-data output of :func:`plan_placement`."""

    policy: str
    root: str
    placements: Dict[str, Placement] = field(default_factory=dict)
    #: host name -> (entry switch, staging slot).
    entry: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    @property
    def instances(self) -> int:
        return len(self.placements)

    def levels_used(self) -> List[int]:
        return sorted({p.level for p in self.placements.values()})

    def describe(self) -> dict:
        per_level: Dict[int, int] = {}
        for placement in self.placements.values():
            per_level[placement.level] = per_level.get(placement.level, 0) + 1
        return {"policy": self.policy, "root": self.root,
                "instances": self.instances,
                "per_level": dict(sorted(per_level.items()))}


def plan_placement(fabric: Fabric, policy: str) -> PlacementPlan:
    """Decide handler placement for an aggregation over ``fabric``.

    On a single-switch (depth-1) fabric every policy degenerates to
    ``root_only``.  On a two-level fat-tree ``per_level`` equals
    ``leaf_combine`` (there is exactly one level above the leaves).
    """
    if policy not in PLACEMENT_POLICIES:
        raise TopologyError(
            f"unknown placement policy {policy!r}; "
            f"expected one of {PLACEMENT_POLICIES}")
    root = fabric.aggregation_root
    plan = PlacementPlan(policy=policy, root=root.name)

    if policy == "root_only" or fabric.depth == 1:
        plan.placements[root.name] = Placement(
            switch=root.name, level=root.level, role="finalize",
            expected=len(fabric.hosts), parent=None, slot=0)
        for i, host in enumerate(fabric.hosts):
            plan.entry[host.name] = (root.name, i)
        return plan

    leaves = fabric.levels[0]
    for index, leaf in enumerate(leaves):
        for offset, host in enumerate(leaf.hosts):
            plan.entry[host.name] = (leaf.name, offset)

    if policy == "leaf_combine":
        # Leaves fold their hosts; partials skip intermediate levels
        # and ride the fabric's host/switch routes straight to the root.
        for index, leaf in enumerate(leaves):
            plan.placements[leaf.name] = Placement(
                switch=leaf.name, level=0, role="combine",
                expected=len(leaf.hosts), parent=root.name, slot=index)
        plan.placements[root.name] = Placement(
            switch=root.name, level=root.level, role="finalize",
            expected=len(leaves), parent=None, slot=0)
        return plan

    # per_level: a combine instance on every switch below the root that
    # aggregates anything, wired along parent pointers (tree) or to the
    # aggregation root (fat-tree leaves, whose physical parents are the
    # whole spine row).
    for level_index, level in enumerate(fabric.levels[:-1]):
        for index, node in enumerate(level):
            if node.name == root.name:
                continue
            if node.parent is not None:
                parent_name = node.parent.name
                slot = node.parent.children.index(node)
            else:
                parent_name, slot = root.name, index
            plan.placements[node.name] = Placement(
                switch=node.name, level=level_index, role="combine",
                expected=node.fan_in, parent=parent_name, slot=slot)
    plan.placements[root.name] = Placement(
        switch=root.name, level=root.level, role="finalize",
        expected=root.fan_in, parent=None, slot=0)
    return plan


# ----------------------------------------------------------------------
# Programming the switches
# ----------------------------------------------------------------------
def region_stride(vector_bytes: int) -> int:
    """ATB staging stride: vector size rounded up to the 512 B region."""
    return -(-vector_bytes // 512) * 512


def install_plan(fabric: Fabric, plan: PlacementPlan, vector_bytes: int,
                 done: Dict, metrics=None) -> None:
    """Register the plan's combine/finalize handlers on the fabric.

    ``done["result"]`` receives the finalized vector.  ``metrics`` is an
    optional :class:`~repro.obs.MetricsRegistry`; each placement level
    gets ``fabric.level<L>.combines`` / ``.partials_sent`` counters.
    The finalize instance delivers the result to ``hosts[0]`` (the
    paper's reduce-to-one).
    """
    env = fabric.env
    words = vector_bytes // 4
    stride = region_stride(vector_bytes)
    by_name = {node.name: node for node in fabric.switches}

    counters = {}
    if metrics is not None:
        for level in sorted({p.level for p in plan.placements.values()}):
            counters[level] = (
                metrics.counter(f"fabric.level{level}.combines"),
                metrics.counter(f"fabric.level{level}.partials_sent"))

    for placement in plan.placements.values():
        node = by_name[placement.switch]
        switch = node.switch
        switch.kernel_state["fabric_acc"] = [0] * words
        switch.kernel_state["fabric_count"] = 0
        switch.kernel_state["fabric_expected"] = placement.expected

        def combine_handler(ctx, switch=switch, placement=placement):
            yield from ctx.read(ctx.address, vector_bytes)
            accumulator = switch.kernel_state["fabric_acc"]
            incoming = ctx.arg
            for w in range(words):
                accumulator[w] = (accumulator[w] + incoming[w]) & 0xFFFFFFFF
            yield from ctx.compute(words * SWITCH_ADD_CYCLES_PER_WORD)
            # Range-exact: a delayed sibling may stage a lower slot
            # after this one — plain deallocate() would free it too.
            yield from ctx.deallocate_range(ctx.address,
                                            ctx.address + stride)
            switch.kernel_state["fabric_count"] += 1
            pair = counters.get(placement.level)
            if pair is not None:
                pair[0].add(1)
            if env.trace is not None:
                env.trace.instant("fabric", "combine", env.now,
                                  switch=placement.switch,
                                  level=placement.level,
                                  count=switch.kernel_state["fabric_count"])
            if switch.kernel_state["fabric_count"] < \
                    switch.kernel_state["fabric_expected"]:
                return
            result = list(switch.kernel_state["fabric_acc"])
            if placement.parent is not None:
                if pair is not None:
                    pair[1].add(1)
                yield from ctx.send(
                    placement.parent, vector_bytes,
                    active=ActiveHeader(handler_id=H_COMBINE,
                                        address=placement.slot * stride),
                    payload=result)
                return
            # Finalize: deliver to host 0 (reduce-to-one).
            if env.trace is not None:
                env.trace.instant("fabric", "finalize", env.now,
                                  switch=placement.switch,
                                  level=placement.level)
            done["result"] = result
            yield from ctx.send(fabric.hosts[0].name, vector_bytes,
                                payload=result)

        switch.register_handler(H_COMBINE, combine_handler)


def run_placed_reduction(fabric: Fabric, plan: PlacementPlan,
                         vectors: List[List[int]], metrics=None) -> Dict:
    """Full packet-level reduction through the placed handlers.

    Every host fires its vector at its entry switch as an active
    message; the plan's handlers fold and forward partials; host 0
    polls the final vector.  Returns ``{"result": [...],
    "latency_ps": ...}``.
    """
    env = fabric.env
    hosts = fabric.hosts
    if len(vectors) != len(hosts):
        raise ValueError(f"{len(vectors)} vectors for {len(hosts)} hosts")
    vector_bytes = len(vectors[0]) * 4
    stride = region_stride(vector_bytes)
    done: Dict = {}
    install_plan(fabric, plan, vector_bytes, done, metrics=metrics)

    def sender(i: int):
        host = hosts[i]
        entry_switch, slot = plan.entry[host.name]
        yield from host.hca.send(
            entry_switch, vector_bytes,
            active=ActiveHeader(handler_id=H_COMBINE,
                                address=slot * stride),
            payload=list(vectors[i]))

    def receiver():
        message = yield from hosts[0].hca.poll_receive()
        return message.payload

    procs = [env.process(sender(i), name=f"fab-send-{i}")
             for i in range(len(hosts))]
    recv = env.process(receiver(), name="fab-recv-0")
    env.run(until=env.all_of(procs + [recv]))
    done["latency_ps"] = env.now
    done["result"] = list(recv.value)
    return done

"""Hierarchical handler placement on multi-stage fabrics.

Given a fabric and an aggregation workload (one vector per host,
combined with an associative operation), the placement engine decides
*which switch at which level runs which handler instance*:

``root_only``
    One finalize instance at the fabric's aggregation root; every host
    fires its vector straight at it.  This is the paper's single-switch
    design stretched across a fabric — it works, but the root's ATB and
    CPUs serialize all ``p`` inputs.
``leaf_combine``
    Combine instances on the leaf switches (each folds its attached
    hosts' vectors into one partial), finalize at the root.  Traffic
    above the leaves drops from ``p`` vectors to one per leaf.
``per_level``
    Combine at *every* tree level — leaves fold hosts, each internal
    switch folds its children's partials, the root finalizes.  This is
    the paper's Section 6 "organize the switches logically in a tree"
    scheme; upper-level traffic is one vector per child.

A plan is pure data (:class:`PlacementPlan`); :func:`install_plan`
programs the real switches — dispatch, data buffers, ATB staging slots,
send unit — and :func:`run_placed_reduction` drives a full packet-level
reduction through it.  Per-level combine/forward counters land in a
:class:`~repro.obs.MetricsRegistry` and, when the environment carries a
trace collector, each combine/finalize emits a trace instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..net.hca import AdapterSendError
from ..net.packet import ActiveHeader
from .fabric import Fabric, FabricPartitioned
from .topology import TopologyError

#: Handler IDs installed by the placement engine.
H_COMBINE = 1


class CollectiveTimeout(Exception):
    """A placed collective exhausted its repair/retry attempts."""

#: Switch-side vector add: 2 cycles/word (buffer operand streams in at
#: single-cycle access; the add overlaps the copy — see apps/reduction).
SWITCH_ADD_CYCLES_PER_WORD = 2

PLACEMENT_POLICIES = ("root_only", "leaf_combine", "per_level")


@dataclass(frozen=True)
class Placement:
    """One handler instance: where it runs and what it expects."""

    switch: str
    level: int
    role: str                   # "combine" | "finalize"
    expected: int               # inputs to fold before forwarding
    parent: Optional[str]       # partials go here (None = finalize)
    slot: int                   # ATB staging slot at the parent


@dataclass
class PlacementPlan:
    """Pure-data output of :func:`plan_placement`."""

    policy: str
    root: str
    placements: Dict[str, Placement] = field(default_factory=dict)
    #: host name -> (entry switch, staging slot).
    entry: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    @property
    def instances(self) -> int:
        return len(self.placements)

    def copy(self) -> "PlacementPlan":
        """An independent plan: fresh dicts around the (frozen, safely
        shared) :class:`Placement` entries, so a cached plan handed to
        multiple callers can never alias their mutations."""
        return PlacementPlan(policy=self.policy, root=self.root,
                             placements=dict(self.placements),
                             entry=dict(self.entry))

    def levels_used(self) -> List[int]:
        return sorted({p.level for p in self.placements.values()})

    def describe(self) -> dict:
        per_level: Dict[int, int] = {}
        for placement in self.placements.values():
            per_level[placement.level] = per_level.get(placement.level, 0) + 1
        return {"policy": self.policy, "root": self.root,
                "instances": self.instances,
                "per_level": dict(sorted(per_level.items()))}


def plan_placement(fabric: Fabric, policy: str,
                   root: Optional[str] = None) -> PlacementPlan:
    """Decide handler placement for an aggregation over ``fabric``.

    On a single-switch (depth-1) fabric every policy degenerates to
    ``root_only``.  On a two-level fat-tree ``per_level`` equals
    ``leaf_combine`` (there is exactly one level above the leaves).

    ``root`` overrides the aggregation root with another *top-level*
    switch — on a fat-tree any spine can finalize, which is what
    :func:`repair_plan` exploits when the default root fail-stops.
    """
    if policy not in PLACEMENT_POLICIES:
        raise TopologyError(
            f"unknown placement policy {policy!r}; "
            f"expected one of {PLACEMENT_POLICIES}")
    if root is None:
        root = fabric.aggregation_root
    else:
        candidates = {node.name: node for node in fabric.levels[-1]}
        if root not in candidates:
            raise TopologyError(
                f"aggregation root {root!r} is not a top-level switch of "
                f"this fabric (candidates: {sorted(candidates)})")
        root = candidates[root]
    plan = PlacementPlan(policy=policy, root=root.name)

    if policy == "root_only" or fabric.depth == 1:
        plan.placements[root.name] = Placement(
            switch=root.name, level=root.level, role="finalize",
            expected=len(fabric.hosts), parent=None, slot=0)
        for i, host in enumerate(fabric.hosts):
            plan.entry[host.name] = (root.name, i)
        return plan

    leaves = fabric.levels[0]
    for index, leaf in enumerate(leaves):
        for offset, host in enumerate(leaf.hosts):
            plan.entry[host.name] = (leaf.name, offset)

    if policy == "leaf_combine":
        # Leaves fold their hosts; partials skip intermediate levels
        # and ride the fabric's host/switch routes straight to the root.
        for index, leaf in enumerate(leaves):
            plan.placements[leaf.name] = Placement(
                switch=leaf.name, level=0, role="combine",
                expected=len(leaf.hosts), parent=root.name, slot=index)
        plan.placements[root.name] = Placement(
            switch=root.name, level=root.level, role="finalize",
            expected=len(leaves), parent=None, slot=0)
        return plan

    # per_level: a combine instance on every switch below the root that
    # aggregates anything, wired along parent pointers (tree) or to the
    # aggregation root (fat-tree leaves, whose physical parents are the
    # whole spine row).
    for level_index, level in enumerate(fabric.levels[:-1]):
        for index, node in enumerate(level):
            if node.name == root.name:
                continue
            if node.parent is not None:
                parent_name = node.parent.name
                slot = node.parent.children.index(node)
            else:
                parent_name, slot = root.name, index
            plan.placements[node.name] = Placement(
                switch=node.name, level=level_index, role="combine",
                expected=node.fan_in, parent=parent_name, slot=slot)
    plan.placements[root.name] = Placement(
        switch=root.name, level=root.level, role="finalize",
        expected=root.fan_in, parent=None, slot=0)
    return plan


# ----------------------------------------------------------------------
# Programming the switches
# ----------------------------------------------------------------------
def region_stride(vector_bytes: int) -> int:
    """ATB staging stride: vector size rounded up to the 512 B region."""
    return -(-vector_bytes // 512) * 512


def install_plan(fabric: Fabric, plan: PlacementPlan, vector_bytes: int,
                 done: Dict, metrics=None, epoch: int = 0) -> None:
    """Register the plan's combine/finalize handlers on the fabric.

    ``done["result"]`` receives the finalized vector.  ``metrics`` is an
    optional :class:`~repro.obs.MetricsRegistry`; each placement level
    gets ``fabric.level<L>.combines`` / ``.partials_sent`` counters.
    The finalize instance delivers the result to ``hosts[0]`` (the
    paper's reduce-to-one).

    ``epoch`` makes contributions idempotent across fail-stop repairs:
    every payload carries ``(epoch, contributor, vector)``, and a
    handler drains (reads and deallocates) but never folds a message
    from another epoch or a contributor it has already counted — so a
    retried collective can re-send everything without double-adding,
    and stragglers from a timed-out attempt cannot pollute the repair.
    Each install gets fresh accumulator state captured in the handler
    closure (not looked up through ``kernel_state``), so a stale
    invocation finishing after a re-install cannot touch the new
    epoch's partial sums.
    """
    env = fabric.env
    words = vector_bytes // 4
    stride = region_stride(vector_bytes)
    by_name = {node.name: node for node in fabric.switches}

    counters = {}
    if metrics is not None:
        for level in sorted({p.level for p in plan.placements.values()}):
            counters[level] = (
                metrics.counter(f"fabric.level{level}.combines"),
                metrics.counter(f"fabric.level{level}.partials_sent"))

    for placement in plan.placements.values():
        node = by_name[placement.switch]
        switch = node.switch
        state = {"acc": [0] * words, "count": 0, "seen": set()}
        # Observability mirrors (tests/tools may inspect these); the
        # handler itself only ever touches its closure ``state``.
        switch.kernel_state["fabric_acc"] = state["acc"]
        switch.kernel_state["fabric_count"] = 0
        switch.kernel_state["fabric_expected"] = placement.expected
        switch.kernel_state["fabric_epoch"] = epoch

        def combine_handler(ctx, switch=switch, placement=placement,
                            state=state):
            yield from ctx.read(ctx.address, vector_bytes)
            msg_epoch, contributor, incoming = ctx.arg
            if msg_epoch != epoch or contributor in state["seen"]:
                # Stale epoch or duplicate: drain the staged region so
                # the buffers recycle, fold nothing.
                yield from ctx.deallocate_range(ctx.address,
                                                ctx.address + stride)
                return
            state["seen"].add(contributor)
            accumulator = state["acc"]
            for w in range(words):
                accumulator[w] = (accumulator[w] + incoming[w]) & 0xFFFFFFFF
            yield from ctx.compute(words * SWITCH_ADD_CYCLES_PER_WORD)
            # Range-exact: a delayed sibling may stage a lower slot
            # after this one — plain deallocate() would free it too.
            yield from ctx.deallocate_range(ctx.address,
                                            ctx.address + stride)
            state["count"] += 1
            switch.kernel_state["fabric_count"] = state["count"]
            pair = counters.get(placement.level)
            if pair is not None:
                pair[0].add(1)
            if env.trace is not None:
                env.trace.instant("fabric", "combine", env.now,
                                  switch=placement.switch,
                                  level=placement.level,
                                  count=state["count"])
            if state["count"] < placement.expected:
                return
            result = list(accumulator)
            if placement.parent is not None:
                if pair is not None:
                    pair[1].add(1)
                yield from ctx.send(
                    placement.parent, vector_bytes,
                    active=ActiveHeader(handler_id=H_COMBINE,
                                        address=placement.slot * stride),
                    payload=(epoch, placement.slot, result))
                return
            # Finalize: deliver to host 0 (reduce-to-one).
            if env.trace is not None:
                env.trace.instant("fabric", "finalize", env.now,
                                  switch=placement.switch,
                                  level=placement.level)
            done["result"] = result
            yield from ctx.send(fabric.hosts[0].name, vector_bytes,
                                payload=(epoch, result))

        # Retry attempts (epoch > 0) re-install over the previous
        # attempt's handler; a first install must stay strict so a
        # double install_plan is still a loud bug.
        switch.register_handler(H_COMBINE, combine_handler,
                                replace=epoch > 0)


def repair_plan(fabric: Fabric, plan: PlacementPlan,
                dead: Iterable[str]) -> PlacementPlan:
    """Re-root a placed aggregation around detected-dead components.

    ``dead`` is the detected set (usually
    :meth:`~repro.cluster.fabric.Fabric.detected_down`).  A dead entry
    (leaf) switch orphans its hosts with no re-parenting possible —
    that is a partition and raises :class:`FabricPartitioned`.  A dead
    *top-level* switch (fat-tree spine) is survivable: the plan is
    re-planned with the same policy onto the first surviving top switch
    every leaf still has a live route to.  When no placed switch died,
    the plan is returned unchanged (a timeout without a detected death
    retries as-is — it may have been congestion).
    """
    dead = set(dead)
    for host, (entry, _slot) in plan.entry.items():
        if entry in dead:
            raise FabricPartitioned(
                f"entry switch {entry} for host {host} is dead; its "
                f"subtree cannot be re-parented")
    affected = dead & {p.switch for p in plan.placements.values()}
    if not affected:
        return plan
    top = fabric.levels[-1]
    top_names = {node.name for node in top}
    if not affected <= top_names:
        raise FabricPartitioned(
            f"dead aggregation switch(es) {sorted(affected - top_names)} "
            f"below the top level have no replacement")
    for candidate in top:
        if candidate.name in dead or candidate.failed_at is not None:
            continue
        if all(leaf.switch.routing.ports_for(candidate.name)
               for leaf in fabric.levels[0]):
            return plan_placement(fabric, plan.policy, root=candidate.name)
    raise FabricPartitioned(
        f"no surviving top-level switch reachable from every leaf "
        f"(dead: {sorted(dead)})")


def run_placed_reduction(fabric: Fabric, plan: PlacementPlan,
                         vectors: List[List[int]], metrics=None,
                         timeout_ps: Optional[int] = None,
                         max_attempts: Optional[int] = None) -> Dict:
    """Full packet-level reduction through the placed handlers.

    Every host fires its vector at its entry switch as an active
    message; the plan's handlers fold and forward partials; host 0
    polls the final vector.  Returns ``{"result": [...],
    "latency_ps": ...}``.

    With ``timeout_ps`` set (defaulted from the fault plan's
    ``failstop.collective_timeout_ps`` when fail-stop events are
    armed), each attempt races an end-to-end deadline.  A timed-out
    attempt consults the fabric's detected-down set, repairs the plan
    (:func:`repair_plan`), bumps the epoch, and re-sends everything —
    idempotent contributions make the re-send safe.  After
    ``max_attempts`` the collective raises :class:`CollectiveTimeout`.
    Without a timeout the pre-1.5 single-attempt path runs unchanged.
    """
    env = fabric.env
    hosts = fabric.hosts
    if len(vectors) != len(hosts):
        raise ValueError(f"{len(vectors)} vectors for {len(hosts)} hosts")
    vector_bytes = len(vectors[0]) * 4
    stride = region_stride(vector_bytes)
    done: Dict = {}

    failstop = (fabric.injector.plan.failstop
                if fabric.injector is not None else None)
    armed = failstop is not None and failstop.enabled
    if timeout_ps is None and armed:
        timeout_ps = failstop.collective_timeout_ps
    if max_attempts is None:
        max_attempts = failstop.max_attempts if armed else 1

    sync = {"epoch": 0}

    def sender(i: int, current_plan: PlacementPlan, epoch: int):
        host = hosts[i]
        entry_switch, slot = current_plan.entry[host.name]
        send = host.hca.send(
            entry_switch, vector_bytes,
            active=ActiveHeader(handler_id=H_COMBINE,
                                address=slot * stride),
            payload=(epoch, slot, list(vectors[i])))
        if timeout_ps is None:
            yield from send
            return
        try:
            yield from send
        except AdapterSendError:
            # The host's own uplink died mid-send; the retry loop (or a
            # partition diagnosis at repair time) owns recovery.
            done["send_failures"] = done.get("send_failures", 0) + 1

    def receiver():
        # One long-lived receiver across attempts: drains stale-epoch
        # finalizes (a timed-out attempt may still complete late) and
        # returns the first current-epoch result.
        while True:
            message = yield from hosts[0].hca.poll_receive()
            msg_epoch, payload = message.payload
            if msg_epoch == sync["epoch"]:
                return payload

    recv = env.process(receiver(), name="fab-recv-0")
    current_plan = plan
    attempt = 0
    while True:
        sync["epoch"] = attempt
        install_plan(fabric, current_plan, vector_bytes, done,
                     metrics=metrics, epoch=attempt)
        procs = [env.process(sender(i, current_plan, attempt),
                             name=(f"fab-send-{i}" if attempt == 0
                                   else f"fab-send-{i}-e{attempt}"))
                 for i in range(len(hosts))]
        if timeout_ps is None:
            env.run(until=env.all_of(procs + [recv]))
            break
        deadline = env.timeout(timeout_ps)
        env.run(until=env.any_of([recv, deadline]))
        if recv.triggered:
            break
        attempt += 1
        if attempt >= max_attempts:
            raise CollectiveTimeout(
                f"placed reduction still incomplete after {attempt} "
                f"attempt(s) of {timeout_ps} ps (detected down: "
                f"{sorted(fabric.detected_down())})")
        repaired = repair_plan(fabric, current_plan,
                               fabric.detected_down())
        if repaired is not current_plan:
            fabric.ft.repairs += 1
            if env.trace is not None:
                env.trace.instant("fabric", "repair", env.now,
                                  attempt=attempt, root=repaired.root)
        current_plan = repaired
    done["latency_ps"] = env.now
    done["result"] = list(recv.value)
    if timeout_ps is not None:
        done["attempts"] = attempt + 1
        done["repairs"] = fabric.ft.repairs
    return done

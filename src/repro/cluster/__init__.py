"""Cluster assembly: configuration, nodes, system builder, I/O streams,
multi-stage fabrics, and handler placement."""

from .config import CASE_ORDER, ClusterConfig, case_configs, four_cases
from .fabric import FabricPartitioned, FtStats, TopologySpec, build_fabric
from .iostream import BlockArrival, ReadStream, WriteStream
from .node import ComputeNode, StorageNode
from .placement import (PLACEMENT_POLICIES, CollectiveTimeout, PlacementPlan,
                        plan_placement, repair_plan)
from .presets import PRESETS, get_preset
from .system import System
from .topology import SwitchTree, TopologyError

__all__ = [
    "CASE_ORDER",
    "ClusterConfig",
    "case_configs",
    "four_cases",
    "BlockArrival",
    "ReadStream",
    "WriteStream",
    "ComputeNode",
    "StorageNode",
    "PRESETS",
    "get_preset",
    "System",
    "SwitchTree",
    "TopologyError",
    "TopologySpec",
    "build_fabric",
    "FabricPartitioned",
    "FtStats",
    "PLACEMENT_POLICIES",
    "PlacementPlan",
    "plan_placement",
    "repair_plan",
    "CollectiveTimeout",
]

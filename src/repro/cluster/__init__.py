"""Cluster assembly: configuration, nodes, system builder, I/O streams."""

from .config import CASE_ORDER, ClusterConfig, case_configs, four_cases
from .iostream import BlockArrival, ReadStream, WriteStream
from .node import ComputeNode, StorageNode
from .presets import PRESETS, get_preset
from .system import System

__all__ = [
    "CASE_ORDER",
    "ClusterConfig",
    "case_configs",
    "four_cases",
    "BlockArrival",
    "ReadStream",
    "WriteStream",
    "ComputeNode",
    "StorageNode",
    "PRESETS",
    "get_preset",
    "System",
]

"""Cluster-level configuration.

One :class:`ClusterConfig` captures every architectural parameter of a
simulated system, defaulting to the paper's Section 4 values.  The four
evaluation configurations differ only in ``active`` and
``prefetch_depth``:

========  ======================================
normal        active=False, prefetch_depth=1
normal+pref   active=False, prefetch_depth=2
active        active=True,  prefetch_depth=1
active+pref   active=True,  prefetch_depth=2
========  ======================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..faults.plan import FaultPlan
from ..io.disk import DiskConfig
from ..io.os_model import OsCostConfig
from ..io.scsi import ScsiConfig
from ..io.tca import TcaConfig
from ..net.hca import HcaConfig
from ..net.link import LinkConfig
from ..sim.units import us
from ..switch.active import ActiveSwitchConfig
from ..switch.base import SwitchConfig


@dataclass(frozen=True)
class ClusterConfig:
    """A complete SAN cluster description."""

    num_hosts: int = 1
    num_storage: int = 1
    #: Active switches (True) or conventional ones (False).
    active: bool = False
    #: Outstanding I/O requests (1 = synchronous, 2 = the "+pref" cases).
    prefetch_depth: int = 1
    #: Embedded processors per active switch (1, 2 or 4).
    num_switch_cpus: int = 1
    #: Use the 8x-scaled host caches of the database experiments.
    database_scaled_caches: bool = False
    #: Extra power-of-two cache scaling applied when the workload itself
    #: is scaled down (preserves capacity-miss behaviour; see
    #: build_host_hierarchy).
    cache_scale_divisor: int = 1
    #: Disks per storage node (the paper uses two at 50 MB/s each).
    num_disks: int = 2
    #: Host cost of posting an I/O request whose data bypasses host
    #: memory (active cases): a user-level descriptor post with no
    #: kernel completion/interrupt path.
    active_request_cost_ps: int = us(5)
    #: Valid-bit streaming: handlers compute while a block is still
    #: arriving (the paper's design).  False = store-and-forward
    #: handlers that wait for the whole block (ablation knob).
    cut_through: bool = True
    #: Master seed: every pseudo-random decision in a run (currently the
    #: fault schedules) derives from it, so identical seeds reproduce
    #: identical runs bit for bit.
    seed: int = 0
    #: Fault-injection plan; ``None`` (the default) builds a perfect
    #: fabric along the exact pre-reliability code paths.
    faults: Optional[FaultPlan] = None

    link: LinkConfig = field(default_factory=LinkConfig)
    switch: SwitchConfig = field(default_factory=SwitchConfig)
    active_switch: ActiveSwitchConfig = field(default_factory=ActiveSwitchConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    scsi: ScsiConfig = field(default_factory=ScsiConfig)
    os: OsCostConfig = field(default_factory=OsCostConfig)
    hca: HcaConfig = field(default_factory=HcaConfig)
    tca: TcaConfig = field(default_factory=TcaConfig)

    def __post_init__(self):
        if self.num_hosts < 1:
            raise ValueError("need at least one host")
        if self.num_storage < 0:
            raise ValueError("storage count cannot be negative")
        if self.prefetch_depth < 1:
            raise ValueError("prefetch depth must be >= 1")
        if self.num_switch_cpus not in (1, 2, 4):
            raise ValueError("switch CPUs must be 1, 2 or 4")
        if self.active_request_cost_ps < 0:
            raise ValueError("active request cost cannot be negative")

    # ------------------------------------------------------------------
    # The paper's four cases
    # ------------------------------------------------------------------
    def with_case(self, active: bool, prefetch: bool) -> "ClusterConfig":
        """This configuration adjusted to one of the four cases."""
        wanted_cpus = (ActiveSwitchConfig(num_cpus=self.num_switch_cpus)
                       if self.num_switch_cpus != self.active_switch.num_cpus
                       else self.active_switch)
        return replace(self, active=active,
                       prefetch_depth=2 if prefetch else 1,
                       active_switch=wanted_cpus)

    @property
    def case_label(self) -> str:
        """The paper's label for this configuration."""
        base = "active" if self.active else "normal"
        return base + ("+pref" if self.prefetch_depth > 1 else "")


#: The four evaluation configurations, in the paper's presentation order.
CASE_ORDER = ("normal", "normal+pref", "active", "active+pref")


def case_configs(base: ClusterConfig):
    """The four (label, config) evaluation points for ``base``."""
    return [
        ("normal", base.with_case(active=False, prefetch=False)),
        ("normal+pref", base.with_case(active=False, prefetch=True)),
        ("active", base.with_case(active=True, prefetch=False)),
        ("active+pref", base.with_case(active=True, prefetch=True)),
    ]


def four_cases(base: ClusterConfig):
    """Deprecated alias of :func:`case_configs`.

    .. deprecated:: 1.1
       Use :func:`repro.run` to run a benchmark across the cases, or
       :func:`case_configs` if you only need the configurations.
    """
    import warnings
    warnings.warn(
        "four_cases() is deprecated; use repro.run(...) to run the four "
        "configurations, or repro.cluster.case_configs() for the raw "
        "(label, config) pairs",
        DeprecationWarning, stacklevel=2)
    return case_configs(base)

"""Parallel experiment harness with deterministic result caching.

The runner fans the paper's (application x configuration x seed) grid
across a process pool, caches finished cells on disk keyed by a
canonical fingerprint of the cluster configuration, application
parameters, and code version, and reports structured progress.  Results
are bit-identical whether a cell is simulated serially, simulated in a
worker process, or restored from cache.

Most callers want :func:`repro.run` (re-exported at top level); the
pieces here are for building custom sweeps::

    from repro.runner import ExperimentRunner, paper_grid

    runner = ExperimentRunner(parallel=4, cache=True)
    grid = runner.run_grid(paper_grid(scale=0.5))

Run the whole paper grid from the shell::

    python -m repro.runner --parallel 4 --cache .repro-cache
"""

from .api import RunResult, configure, run, run_many
from .cache import (ResultCache, decode_case, default_cache_dir,
                    encode_case, resolve_cache)
from .fingerprint import FingerprintError, canonicalize, code_version, fingerprint
from .options import RunOptions, make_run_options
from .harness import (
    CASE_LABELS,
    Cell,
    ExperimentRunner,
    RunnerError,
    cell_config,
    cell_key,
    run_cell,
)
from .pool import WorkerPool, shared_pool, shutdown_shared_pool
from .progress import CellEvent, Progress, make_progress
from .spec import APP_REGISTRY, AppSpec, make_spec, paper_grid, register_app

__all__ = [
    "APP_REGISTRY",
    "AppSpec",
    "CASE_LABELS",
    "Cell",
    "CellEvent",
    "ExperimentRunner",
    "FingerprintError",
    "Progress",
    "ResultCache",
    "RunOptions",
    "RunResult",
    "RunnerError",
    "WorkerPool",
    "canonicalize",
    "cell_config",
    "cell_key",
    "code_version",
    "configure",
    "decode_case",
    "default_cache_dir",
    "encode_case",
    "fingerprint",
    "make_progress",
    "make_run_options",
    "make_spec",
    "paper_grid",
    "register_app",
    "resolve_cache",
    "run",
    "run_cell",
    "run_many",
    "shared_pool",
    "shutdown_shared_pool",
]

"""Command-line front end for the experiment harness.

Runs the paper's nine-application grid (or a subset) through the
process pool and prints each benchmark's report::

    python -m repro.runner --parallel 4 --cache .repro-cache
    python -m repro.runner --apps grep,select --scale 0.25 --json
    python -m repro.runner --baseline-check --parallel 2 --cache dir

``--baseline-check`` re-runs the same grid serially (cold, uncached)
afterwards and exits non-zero if the parallel+cache pass was not
faster — the CI regression gate for the harness itself.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .api import RunResult
from .harness import CASE_LABELS, ExperimentRunner
from .progress import make_progress
from .spec import DEFAULT_SCALES, make_spec, paper_grid


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Run the paper's experiment grid through the "
                    "parallel harness.")
    parser.add_argument("--apps", default=None,
                        help="comma-separated registered app names "
                             "(default: the full nine-spec paper grid)")
    parser.add_argument("--cases", default=None,
                        help="comma-separated case labels "
                             f"(default: {','.join(CASE_LABELS)})")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor multiplying each "
                             "app's default scale")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="worker processes (default: 1 = serial)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="result cache directory (enables caching)")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed override for every cell")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of tables")
    parser.add_argument("--trace", action="store_true",
                        help="record structured traces (forces serial, "
                             "uncached execution; prints terminal "
                             "timelines unless --json)")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write the merged Chrome trace_event JSON "
                             "(Perfetto-loadable) to FILE; implies --trace")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    parser.add_argument("--baseline-check", action="store_true",
                        help="after the run, measure an uncached serial "
                             "pass and fail if the harness was slower")
    return parser


def _select_specs(args):
    if args.apps is None:
        return paper_grid(scale=args.scale)
    factor = 1.0 if args.scale is None else args.scale
    specs = []
    for name in args.apps.split(","):
        name = name.strip()
        specs.append(make_spec(
            name, scale=DEFAULT_SCALES.get(name, 1.0) * factor))
    return tuple(specs)


def _run_grid(specs, cases, seed, runner, progress):
    seeds = (seed,)
    grid = runner.run_grid(specs, cases=cases, seeds=seeds)
    return {label: bench for (label, _), bench in grid.items()}


def _run_traced_grid(specs, cases, seed):
    """Serial traced pass: one RunResult per spec plus merged collectors.

    The merged mapping keys are ``"app/case"`` so every traced cell gets
    its own Perfetto process track in the single exported document.
    """
    from .api import run as run_api
    grid = {}
    merged = {}
    for spec in specs:
        result = run_api(spec, cases=cases, seed=seed, trace=True)
        grid[spec.label] = result
        for case_label, collector in result.traces.items():
            merged[f"{spec.label}/{case_label}"] = collector
    return grid, merged


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    specs = _select_specs(args)
    cases = (tuple(c.strip() for c in args.cases.split(","))
             if args.cases else None)
    n_cases = len(cases) if cases else len(CASE_LABELS)
    progress = make_progress(len(specs) * n_cases, show=not args.quiet)
    runner = ExperimentRunner(parallel=args.parallel, cache=args.cache,
                              progress=progress)

    tracing = args.trace or args.trace_out is not None
    if tracing and args.parallel > 1:
        print("note: tracing forces serial execution; --parallel ignored",
              file=sys.stderr)

    started = time.perf_counter()
    if tracing:
        grid, traces = _run_traced_grid(specs, cases, args.seed)
        if args.trace_out:
            from ..obs.export import write_chrome_trace
            document = write_chrome_trace(args.trace_out, traces)
            print(f"trace: {len(document['traceEvents'])} events -> "
                  f"{args.trace_out}", file=sys.stderr)
    else:
        grid = _run_grid(specs, cases, args.seed, runner, progress)
    harness_s = time.perf_counter() - started

    if args.json:
        payload = {
            "grid": {label: {case: result.summary()[case]
                             for case in result.cases}
                     for label, result in grid.items()},
            "harness": dict(progress.summary(), wall_s=harness_s,
                            parallel=args.parallel,
                            cache=args.cache),
        }
    else:
        from ..metrics.report import Report
        for label, bench in grid.items():
            report = Report(bench)
            print(report.performance())
            print()
            if tracing and args.trace:
                timeline = report.timeline()
                if timeline:
                    print(timeline)
                    print()
        if tracing:
            print(f"grid: {len(grid)} specs traced serially, "
                  f"{harness_s:.1f}s wall", file=sys.stderr)
        else:
            summary = progress.summary()
            print(f"grid: {summary['cells']} cells, "
                  f"{summary['cache_hits']} cache hits, "
                  f"{summary['simulated']} simulated, "
                  f"{harness_s:.1f}s wall", file=sys.stderr)

    if args.baseline_check:
        serial = ExperimentRunner(parallel=1, cache=None)
        base_start = time.perf_counter()
        baseline = _run_grid(specs, cases, args.seed, serial,
                             make_progress(progress.total, show=False))
        baseline_s = time.perf_counter() - base_start
        mismatches = [label for label in grid
                      if grid[label].cases != baseline[label].cases]
        ok = not mismatches and harness_s <= baseline_s
        verdict = {
            "baseline_s": baseline_s,
            "harness_s": harness_s,
            "speedup": baseline_s / harness_s if harness_s else None,
            "identical": not mismatches,
            "mismatches": mismatches,
            "ok": ok,
        }
        if args.json:
            payload["baseline_check"] = verdict
        else:
            print(f"baseline check: serial {baseline_s:.1f}s vs harness "
                  f"{harness_s:.1f}s ({verdict['speedup']:.2f}x), "
                  f"identical={verdict['identical']}", file=sys.stderr)
        if not ok:
            if args.json:
                print(json.dumps(payload, indent=2))
            if mismatches:
                print(f"FAIL: results differ from serial baseline for "
                      f"{mismatches}", file=sys.stderr)
            else:
                print("FAIL: harness run was slower than the serial "
                      "baseline", file=sys.stderr)
            return 1

    if args.json:
        print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

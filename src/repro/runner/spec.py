"""Declarative, picklable benchmark descriptions.

The process-pool harness cannot ship closures to workers, so every
parallelizable (and cacheable) run is described by an :class:`AppSpec`:
the *name* of a registered application class plus its constructor
parameters, an optional technology ``preset``, and optional flat
:class:`~repro.cluster.ClusterConfig` field overrides.  A spec is
frozen, hashable, and canonically fingerprintable — two specs with the
same content always produce the same cache key and, by construction,
the same simulation.

Names resolve through :data:`APP_REGISTRY` (the paper's applications
are pre-registered); ``module:Class`` paths and
:func:`register_app` cover user-defined :class:`~repro.apps.StreamApp`
subclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from importlib import import_module
from typing import Dict, Optional, Tuple

#: name -> "module:Class" for every registered application.
APP_REGISTRY: Dict[str, str] = {
    "grep": "repro.apps.grep:GrepApp",
    "select": "repro.apps.select:SelectApp",
    "hashjoin": "repro.apps.hashjoin:HashJoinApp",
    "mpeg": "repro.apps.mpeg_filter:MpegFilterApp",
    "tar": "repro.apps.tar:TarApp",
    "sort": "repro.apps.sort:SortApp",
    "md5": "repro.apps.md5:Md5App",
    "reduce": "repro.apps.reduce_fabric:FabricReduceApp",
}

#: Workload scales keeping each paper artifact's wall-clock reasonable
#: (mirrors the experiment registry's default_scale values).
DEFAULT_SCALES: Dict[str, float] = {
    "select": 1 / 16,
    "hashjoin": 1 / 16,
    "sort": 1 / 64,
}


def register_app(name: str, path: str) -> None:
    """Register a custom ``module:Class`` application under ``name``."""
    if ":" not in path:
        raise ValueError(f"expected 'module:Class', got {path!r}")
    APP_REGISTRY[name] = path


@dataclass(frozen=True)
class AppSpec:
    """One application at one parameter point, ready to fan out.

    ``params`` and ``overrides`` are stored as sorted key/value tuples
    so equal content always compares (and fingerprints) equal; build
    one with :func:`make_spec` rather than by hand.
    """

    app: str
    params: Tuple[Tuple[str, object], ...] = ()
    preset: Optional[str] = None
    overrides: Tuple[Tuple[str, object], ...] = ()

    @property
    def label(self) -> str:
        """Short human name for progress lines: ``md5[num_switch_cpus=4]``."""
        interesting = [f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                       for k, v in self.params if k != "scale"]
        suffix = f"[{','.join(interesting)}]" if interesting else ""
        return f"{self.app}{suffix}"

    def build(self):
        """Instantiate the application (runs workload preparation)."""
        return resolve_app(self.app)(**dict(self.params))

    def base_config(self, app=None):
        """The cell's base :class:`ClusterConfig` (before case selection).

        Derived from the app's own configuration, then the preset (which
        keeps the app-owned topology/cache fields, exactly like
        ``python -m repro.apps --preset``), then the flat overrides.
        """
        app = self.build() if app is None else app
        config = app.cluster_config()
        if self.preset is not None:
            from ..cluster.presets import get_preset
            config = replace(
                get_preset(self.preset),
                num_hosts=config.num_hosts,
                num_storage=config.num_storage,
                num_switch_cpus=config.num_switch_cpus,
                database_scaled_caches=config.database_scaled_caches,
                cache_scale_divisor=config.cache_scale_divisor,
            )
        if self.overrides:
            config = replace(config, **dict(self.overrides))
        return config


def make_spec(app, preset: Optional[str] = None,
              overrides: Optional[dict] = None, **params) -> AppSpec:
    """Normalize ``app`` + constructor ``params`` into an :class:`AppSpec`.

    ``app`` may be a registered name, a ``module:Class`` path, an
    :class:`AppSpec` (returned as-is, with ``params`` forbidden), or an
    application class (registered implicitly by qualified name).
    """
    if isinstance(app, AppSpec):
        if params or preset or overrides:
            raise ValueError("pass parameters inside the AppSpec, "
                             "not alongside it")
        return app
    if isinstance(app, type):
        path = f"{app.__module__}:{app.__qualname__}"
        name = app.__qualname__
        APP_REGISTRY.setdefault(name, path)
        app = name if APP_REGISTRY[name] == path else path
    if not isinstance(app, str):
        raise TypeError(f"cannot make a spec from {app!r}")
    return AppSpec(
        app=app,
        params=tuple(sorted(params.items())),
        preset=preset,
        overrides=tuple(sorted((overrides or {}).items())),
    )


def resolve_app(name: str):
    """Look up an application class by registered name or module path."""
    path = APP_REGISTRY.get(name, name)
    if ":" not in path:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(APP_REGISTRY)}")
    module_name, _, class_name = path.partition(":")
    module = import_module(module_name)
    cls = module
    for part in class_name.split("."):
        cls = getattr(cls, part)
    return cls


def paper_grid(scale: Optional[float] = None) -> Tuple[AppSpec, ...]:
    """The paper's nine-application evaluation grid.

    The seven stream benchmarks at their registry scales plus MD5 with
    two and four switch CPUs (Figure 17's multiprocessor points).  An
    explicit ``scale`` multiplies every default (``scale=1.0`` is the
    paper's own problem sizes).
    """
    factor = 1.0 if scale is None else scale
    specs = []
    for name in ("mpeg", "hashjoin", "select", "grep", "tar", "sort", "md5"):
        specs.append(make_spec(name, scale=DEFAULT_SCALES.get(name, 1.0) * factor))
    for cpus in (2, 4):
        specs.append(make_spec("md5", scale=1.0 * factor,
                               num_switch_cpus=cpus))
    return tuple(specs)

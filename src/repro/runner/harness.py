"""The process-pool experiment harness.

One experiment *cell* is (application spec, case label, optional seed
override); a grid is a list of cells.  :class:`ExperimentRunner` runs a
grid with

* **deterministic per-cell execution** — a cell is a pure function of
  its spec + case + seed (every simulation builds a fresh workload,
  environment, and cluster from those alone), so the same cell produces
  the bit-identical :class:`~repro.metrics.CaseResult` whether it runs
  serially, in a worker process, or is restored from cache;
* **fan-out** across a process pool (``parallel`` workers, spawn start
  method by default so results can never depend on inherited parent
  state);
* **result caching** keyed by the cell fingerprint plus the code
  version (see :mod:`repro.runner.fingerprint`): a hit skips the
  simulation entirely and restores the stored result;
* **structured progress/ETA** via :mod:`repro.runner.progress`.

Workers communicate in the cache's JSON codec, so the parallel path and
the cache path reconstruct results through the same exact decoder.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..metrics.results import BenchmarkResult, CaseResult
from .cache import ResultCache, decode_case, encode_case, resolve_cache
from .fingerprint import FingerprintError, code_version, fingerprint
from .pool import WorkerPool, shared_pool
from .progress import CellEvent, Progress, make_progress
from .spec import AppSpec, make_spec

#: The paper's presentation order for the four configurations.
CASE_LABELS = ("normal", "normal+pref", "active", "active+pref")

#: Environment variable overriding the multiprocessing start method.
START_METHOD_ENV = "REPRO_RUNNER_START_METHOD"


class RunnerError(RuntimeError):
    """A grid cell failed inside a worker; carries the worker traceback."""


@dataclass(frozen=True)
class Cell:
    """One point of the (app x case x seed) grid."""

    spec: AppSpec
    case: str
    #: Optional :class:`ClusterConfig` master-seed override; ``None``
    #: keeps the configuration's own seed.
    seed: Optional[int] = None

    def __post_init__(self):
        if self.case not in CASE_LABELS:
            raise ValueError(
                f"unknown case {self.case!r}; expected one of {CASE_LABELS}")


def cell_config(cell: Cell, app=None):
    """The exact :class:`ClusterConfig` the cell simulates."""
    config = cell.spec.base_config(app)
    if cell.seed is not None:
        config = replace(config, seed=cell.seed)
    return config.with_case(active=cell.case.startswith("active"),
                            prefetch=cell.case.endswith("+pref"))


def run_cell(cell: Cell) -> CaseResult:
    """Simulate one cell from scratch (any process, any order)."""
    from ..cluster.template import cached_app

    app = cached_app(cell.spec)
    return app.run_case(cell_config(cell, app))


def cell_key(cell: Cell) -> str:
    """Cache key: canonical cell fingerprint + the code version.

    The spec's parameters, preset, and overrides determine the cell's
    :class:`ClusterConfig` as a pure function of the code version, so
    the three parts together fingerprint the full configuration; the
    realized config's own fingerprint is additionally stored in the
    entry metadata by :meth:`ExperimentRunner.run_cells` for auditing.
    The simulation mode tag (exact vs the opt-in approximate fluid
    mode, see :mod:`repro.sim.burst`) keeps the two result populations
    from ever sharing cache entries.
    """
    from ..sim.burst import sim_mode_tag
    return fingerprint("cell", cell.spec, cell.case, cell.seed,
                       code_version(), sim_mode_tag())


def _execute_cell(payload: Tuple[int, Cell]):
    """Pool worker: run one cell, return its encoded result.

    Results travel as the cache codec's JSON dicts so the parent
    reconstructs them with the same decoder used for cache hits.
    """
    from ..cluster.template import cached_app

    index, cell = payload
    try:
        started = time.perf_counter()
        app = cached_app(cell.spec)
        config = cell_config(cell, app)
        case = app.run_case(config)
        elapsed = time.perf_counter() - started
        try:
            config_print = fingerprint("config", config)
        except FingerprintError:
            config_print = None
        return ("ok", index, encode_case(case), elapsed, config_print)
    except BaseException:
        return ("error", index, traceback.format_exc(), 0.0, None)


class ExperimentRunner:
    """Runs experiment grids serially or across a process pool."""

    def __init__(self, parallel: int = 1,
                 cache: Union[None, bool, str, "os.PathLike", ResultCache] = None,
                 progress: Optional[Progress] = None,
                 show_progress: bool = False,
                 start_method: Optional[str] = None,
                 pool: Optional[WorkerPool] = None):
        if parallel < 1:
            raise ValueError(f"parallel must be >= 1, got {parallel}")
        self.parallel = parallel
        self.cache = resolve_cache(cache)
        self._progress = progress
        self._show_progress = show_progress
        self._start_method = (start_method
                              or os.environ.get(START_METHOD_ENV, "spawn"))
        #: Explicit pool injection (tests); ``None`` draws from the
        #: process-wide warm pool (:func:`repro.runner.pool.shared_pool`).
        self._pool = pool

    #: Back-compat shim; the public spelling is
    #: :func:`repro.runner.cache.resolve_cache`.
    _resolve_cache = staticmethod(resolve_cache)

    # ------------------------------------------------------------------
    # Core engine
    # ------------------------------------------------------------------
    def run_cells(self, cells: Sequence[Cell]) -> List[CaseResult]:
        """Run ``cells``; results align with the input order."""
        cells = list(cells)
        progress = self._progress or make_progress(
            len(cells), show=self._show_progress)
        results: List[Optional[CaseResult]] = [None] * len(cells)
        pending: List[Tuple[int, Cell]] = []

        # Explicit None check: ResultCache defines __len__, so an empty
        # cache is falsy and a bare truth test would skip lookups.
        for index, cell in enumerate(cells):
            cached = (self.cache.get(cell_key(cell))
                      if self.cache is not None else None)
            if cached is not None:
                results[index] = cached
                self._record(progress, index, cell, cached, 0.0, True)
            else:
                pending.append((index, cell))

        if pending:
            if self.parallel > 1 and len(pending) > 1:
                self._run_pool(pending, cells, results, progress)
            else:
                self._run_serial(pending, cells, results, progress)
        return results  # type: ignore[return-value]

    def _run_serial(self, pending, cells, results, progress) -> None:
        from ..cluster.template import cached_app

        for index, cell in pending:
            started = time.perf_counter()
            app = cached_app(cell.spec)
            config = cell_config(cell, app)
            case = app.run_case(config)
            elapsed = time.perf_counter() - started
            try:
                config_print = fingerprint("config", config)
            except FingerprintError:
                config_print = None
            self._store(cell, case, elapsed, config_print)
            results[index] = case
            self._record(progress, index, cell, case, elapsed, False)

    def _run_pool(self, pending, cells, results, progress) -> None:
        workers = min(self.parallel, len(pending))
        pool = self._pool if self._pool is not None \
            else shared_pool(workers, self._start_method)
        outcomes = pool.imap_unordered(_execute_cell, pending)
        for status, index, payload, elapsed, config_print in outcomes:
            cell = cells[index]
            if status != "ok":
                raise RunnerError(
                    f"cell {cell.spec.label}/{cell.case} failed in a "
                    f"worker:\n{payload}")
            case = decode_case(payload)
            self._store(cell, case, elapsed, config_print)
            results[index] = case
            self._record(progress, index, cell, case, elapsed, False)

    def _store(self, cell: Cell, case: CaseResult, elapsed: float,
               config_print: Optional[str] = None) -> None:
        if self.cache is None:
            return
        self.cache.put(cell_key(cell), case, meta={
            "app": cell.spec.label,
            "case": cell.case,
            "seed": cell.seed,
            "elapsed_s": elapsed,
            "config_fingerprint": config_print,
            "code_version": code_version(),
        })

    @staticmethod
    def _record(progress: Progress, index: int, cell: Cell,
                case: CaseResult, elapsed: float, cached: bool) -> None:
        progress.record(CellEvent(
            index=index, total=progress.total, app=cell.spec.label,
            case=cell.case, elapsed_s=elapsed, cached=cached,
            exec_ps=case.exec_ps))

    # ------------------------------------------------------------------
    # Grid conveniences
    # ------------------------------------------------------------------
    def run_app(self, app, cases: Optional[Sequence[str]] = None,
                seed: Optional[int] = None, name: Optional[str] = None,
                **params) -> BenchmarkResult:
        """All requested cases of one application as a result object."""
        spec = make_spec(app, **params)
        labels = tuple(cases) if cases is not None else CASE_LABELS
        cells = [Cell(spec=spec, case=label, seed=seed) for label in labels]
        results = self.run_cells(cells)
        return BenchmarkResult(
            name=name or spec.app,
            cases={label: case for label, case in zip(labels, results)})

    def run_grid(self, specs: Sequence[AppSpec],
                 cases: Optional[Sequence[str]] = None,
                 seeds: Sequence[Optional[int]] = (None,),
                 ) -> Dict[Tuple[str, Optional[int]], BenchmarkResult]:
        """The full (app x case x seed) grid in one pool pass.

        Returns ``{(spec label, seed): BenchmarkResult}``; every cell of
        every application shares the same pool, so wide grids load all
        workers even when individual apps have few cases.
        """
        labels = tuple(cases) if cases is not None else CASE_LABELS
        cells = [Cell(spec=spec, case=label, seed=seed)
                 for spec in specs for seed in seeds for label in labels]
        results = self.run_cells(cells)
        grid: Dict[Tuple[str, Optional[int]], BenchmarkResult] = {}
        cursor = 0
        for spec in specs:
            for seed in seeds:
                cases_map = {}
                for label in labels:
                    cases_map[label] = results[cursor]
                    cursor += 1
                grid[(spec.label, seed)] = BenchmarkResult(
                    name=spec.label, cases=cases_map)
        return grid

    def __repr__(self) -> str:
        root = self.cache.root if self.cache is not None else None
        return (f"<ExperimentRunner parallel={self.parallel} "
                f"cache={root} start={self._start_method}>")

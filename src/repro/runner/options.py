"""Typed, frozen option objects for the ``repro.run()`` front door.

:class:`RunOptions` captures everything ``repro.run`` accepts besides
the application itself — case selection, harness knobs (parallel,
cache), seed/preset/override configuration, observability switches —
as one frozen, reusable value::

    import repro

    opts = repro.RunOptions(cases=("normal", "active"), parallel=4,
                            cache=True, seed=7,
                            overrides={"num_switch_cpus": 4},
                            params={"scale": 0.25})
    result = repro.run("grep", opts)            # or options=opts

This is the canonical calling convention (docs/api.md); bare keyword
arguments remain supported as a thin compatibility wrapper that builds
the same :class:`RunOptions` internally.  The service side's analogue
is :class:`repro.traffic.ServiceSpec` for ``repro.serve()``.

Like :class:`~repro.runner.AppSpec`, dict-valued inputs (``overrides``,
``params``) are normalized to sorted key/value tuples so equal content
always compares equal and the object stays hashable whenever its
values are.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple


def _as_items(value, label: str) -> Tuple[Tuple[str, object], ...]:
    """Normalize a dict (or item-tuple) field to sorted item tuples."""
    if value is None:
        return ()
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    items = tuple((str(k), v) for k, v in value)
    return tuple(sorted(items))


@dataclass(frozen=True)
class RunOptions:
    """Everything ``repro.run`` accepts, minus the application.

    ``None`` for ``parallel``/``cache``/``show_progress`` means "use
    the :func:`repro.configure` process-wide default", exactly like the
    keyword form.  ``params`` holds app constructor parameters (e.g.
    ``scale``); ``overrides`` holds flat
    :class:`~repro.cluster.ClusterConfig` field overrides.
    """

    cases: Optional[Tuple[str, ...]] = None
    parallel: Optional[int] = None
    cache: object = None
    seed: Optional[int] = None
    preset: Optional[str] = None
    overrides: Tuple[Tuple[str, object], ...] = ()
    name: Optional[str] = None
    show_progress: Optional[bool] = None
    trace: object = None
    profile: bool = False
    params: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.cases is not None and not isinstance(self.cases, tuple):
            object.__setattr__(self, "cases", tuple(self.cases))
        object.__setattr__(self, "overrides",
                           _as_items(self.overrides, "overrides"))
        object.__setattr__(self, "params", _as_items(self.params, "params"))
        if self.profile and self.trace:
            raise ValueError("profile=True and trace are mutually "
                             "exclusive; run them separately")
        if self.parallel is not None and self.parallel < 1:
            raise ValueError(
                f"parallel must be >= 1, got {self.parallel}")

    def with_params(self, **params) -> "RunOptions":
        """A copy with extra app constructor parameters merged in."""
        merged = dict(self.params)
        merged.update(params)
        return replace(self, params=tuple(sorted(merged.items())))

    def replace(self, **changes) -> "RunOptions":
        """A copy with the given fields changed (dataclass ``replace``)."""
        return replace(self, **changes)


def make_run_options(options: Optional[RunOptions] = None,
                     cases: Optional[Sequence[str]] = None,
                     **kwargs) -> RunOptions:
    """Normalize the keyword calling convention into a RunOptions.

    ``options`` (or a RunOptions in the ``cases`` position) must stand
    alone: mixing a typed options object with loose keywords is an
    error, so a call site always has exactly one source of truth.
    """
    if isinstance(cases, RunOptions):
        if options is not None:
            raise TypeError("pass one RunOptions, not two")
        options, cases = cases, None
    if options is not None:
        loose = {k: v for k, v in kwargs.items()
                 if v not in (None, False, (), {})}
        if cases is not None or loose:
            raise TypeError(
                "pass parameters inside RunOptions, not alongside it "
                f"(got extra: {['cases'] if cases is not None else []} "
                f"{sorted(loose)})")
        return options
    return RunOptions(cases=cases, **kwargs)

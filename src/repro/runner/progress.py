"""Structured progress and ETA reporting for grid runs.

The harness emits one :class:`CellEvent` per finished cell; a
:class:`Progress` consumer keeps running totals, estimates time to
completion from the mean cost of the cells finished so far (cache hits
excluded — they are effectively free and would bias the estimate), and
optionally prints one status line per event.  Everything is plain data,
so front ends other than the bundled printer (CI logs, notebooks) can
subscribe with ``on_event``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(frozen=True)
class CellEvent:
    """One grid cell finished (simulated or restored from cache)."""

    index: int
    total: int
    app: str
    case: str
    elapsed_s: float
    cached: bool
    exec_ps: int


@dataclass
class Progress:
    """Aggregates cell events; optionally narrates to a stream."""

    total: int
    stream: Optional[object] = None
    on_event: Optional[Callable[[CellEvent], None]] = None
    events: List[CellEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._started = time.monotonic()

    @property
    def done(self) -> int:
        return len(self.events)

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.events if e.cached)

    @property
    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    def eta_s(self) -> Optional[float]:
        """Estimated seconds to completion, ``None`` before any sample."""
        simulated = [e.elapsed_s for e in self.events if not e.cached]
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        if not simulated:
            return None
        return remaining * (sum(simulated) / len(simulated))

    def record(self, event: CellEvent) -> None:
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)
        if self.stream is not None:
            eta = self.eta_s()
            eta_text = "?" if eta is None else f"{eta:.0f}s"
            source = "cache" if event.cached else f"{event.elapsed_s:.1f}s"
            print(f"[runner {self.done:>{len(str(self.total))}}/{self.total}] "
                  f"{event.app}/{event.case}: {source}  ETA {eta_text}",
                  file=self.stream, flush=True)

    def summary(self) -> dict:
        """Machine-readable totals for reports and the CLI's ``--json``."""
        return {
            "cells": self.total,
            "completed": self.done,
            "cache_hits": self.cache_hits,
            "simulated": self.done - self.cache_hits,
            "elapsed_s": self.elapsed_s,
        }


def make_progress(total: int, show: bool = False,
                  on_event: Optional[Callable[[CellEvent], None]] = None
                  ) -> Progress:
    """A :class:`Progress` printing to stderr when ``show`` is true."""
    return Progress(total=total, stream=sys.stderr if show else None,
                    on_event=on_event)

"""On-disk result cache with a lossless :class:`CaseResult` codec.

A cache entry is one JSON file named by the cell's fingerprint (see
:mod:`repro.runner.fingerprint`).  The codec is exact: every field of
:class:`~repro.metrics.CaseResult` (and its nested
:class:`~repro.cpu.accounting.Breakdown` values) is an ``int``, ``str``
or ``float``, all of which round-trip bit-identically through JSON —
so a cache hit restores the very result the simulation produced, and
the determinism suite can compare restored results field by field.

Writes are atomic (temp file + rename), so concurrent workers warming
the same cache directory can never leave a torn entry behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from ..cpu.accounting import Breakdown
from ..metrics.results import CaseResult

#: Bump when the entry layout changes; mismatched entries are misses.
CACHE_FORMAT = 1

#: Environment variable naming the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback default, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache directory used when callers say ``cache=True``."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


def resolve_cache(cache) -> Optional["ResultCache"]:
    """Normalize every caller-facing ``cache=`` spelling to a store.

    ``None``/``False`` mean no cache; ``True`` means the default
    directory (:func:`default_cache_dir`); a :class:`ResultCache`
    passes through; anything else is treated as a directory path.
    Shared by ``repro.run``, ``repro.serve``, the offered-load sweeps,
    and the adaptive knee search, so one spelling works everywhere.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache(default_cache_dir())
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


# ----------------------------------------------------------------------
# Lossless CaseResult codec
# ----------------------------------------------------------------------
def encode_breakdown(breakdown: Breakdown) -> dict:
    return {"label": breakdown.label, "exec_ps": breakdown.exec_ps,
            "busy_ps": breakdown.busy_ps, "stall_ps": breakdown.stall_ps}


def decode_breakdown(data: dict) -> Breakdown:
    return Breakdown(label=data["label"], exec_ps=data["exec_ps"],
                     busy_ps=data["busy_ps"], stall_ps=data["stall_ps"])


def encode_case(case: CaseResult) -> dict:
    """``CaseResult`` -> plain JSON-able dict (exact, no rounding)."""
    return {
        "label": case.label,
        "exec_ps": case.exec_ps,
        "host": encode_breakdown(case.host),
        "switch_cpus": [encode_breakdown(b) for b in case.switch_cpus],
        "host_bytes_in": case.host_bytes_in,
        "host_bytes_out": case.host_bytes_out,
        "extra": dict(case.extra),
    }


def decode_case(data: dict) -> CaseResult:
    """Inverse of :func:`encode_case` — bit-identical restore."""
    return CaseResult(
        label=data["label"],
        exec_ps=data["exec_ps"],
        host=decode_breakdown(data["host"]),
        switch_cpus=[decode_breakdown(b) for b in data["switch_cpus"]],
        host_bytes_in=data["host_bytes_in"],
        host_bytes_out=data["host_bytes_out"],
        extra=dict(data["extra"]),
    )


class ResultCache:
    """Content-addressed store of finished experiment cells."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[CaseResult]:
        """The cached result for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("format") != CACHE_FORMAT:
            self.misses += 1
            return None
        self.hits += 1
        return decode_case(entry["case"])

    def put(self, key: str, case: CaseResult,
            meta: Optional[Dict[str, object]] = None) -> Path:
        """Store ``case`` under ``key`` atomically; returns the path."""
        path = self._path(key)
        entry = {"format": CACHE_FORMAT, "case": encode_case(case),
                 "meta": dict(meta or {})}
        handle = tempfile.NamedTemporaryFile(
            "w", dir=str(self.root), prefix=".tmp-", suffix=".json",
            delete=False)
        try:
            with handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def get_json(self, key: str) -> Optional[dict]:
        """A generic JSON payload for ``key``, or ``None`` on a miss.

        The service-layer analogue of :meth:`get`: entries written by
        :meth:`put_json` hold one JSON-safe dict (e.g. an encoded
        ``repro.traffic.ServiceResult``) instead of a CaseResult.
        Floats round-trip exactly (``repr`` codec), so restored payloads
        are bit-identical to what the simulation produced.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("format") != CACHE_FORMAT or "payload" not in entry:
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def put_json(self, key: str, payload: dict,
                 meta: Optional[Dict[str, object]] = None) -> Path:
        """Store a JSON-safe ``payload`` dict under ``key`` atomically."""
        path = self._path(key)
        entry = {"format": CACHE_FORMAT, "payload": payload,
                 "meta": dict(meta or {})}
        handle = tempfile.NamedTemporaryFile(
            "w", dir=str(self.root), prefix=".tmp-", suffix=".json",
            delete=False)
        try:
            with handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def __repr__(self) -> str:
        return (f"<ResultCache {self.root} hits={self.hits} "
                f"misses={self.misses}>")

"""The unified ``repro.run()`` front door.

One call runs any registered application through the harness::

    import repro

    result = repro.run("grep", scale=0.25)             # serial
    result = repro.run("grep", scale=0.25, parallel=4) # process pool
    result = repro.run("grep", scale=0.25, cache=True) # cached

``run`` returns a :class:`RunResult` — a
:class:`~repro.metrics.BenchmarkResult` carrying harness statistics and
the :meth:`~repro.metrics.BenchmarkResult.report` accessor — and is
deterministic: serial, parallel, and cache-restored invocations produce
field-identical results.

:func:`configure` sets process-wide defaults (picked up by the
experiment registry, so ``python -m repro.experiments --parallel N``
routes every figure through the same pool).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..metrics.results import BenchmarkResult, CaseResult
from .harness import CASE_LABELS, ExperimentRunner
from .options import RunOptions, make_run_options
from .progress import Progress
from .spec import AppSpec, make_spec

#: Process-wide defaults applied when ``run()`` arguments are ``None``.
_DEFAULTS: Dict[str, object] = {
    "parallel": 1,
    "cache": None,
    "show_progress": False,
    "start_method": None,
}


def configure(**defaults) -> Dict[str, object]:
    """Set process-wide harness defaults; returns the effective set.

    Recognized keys: ``parallel``, ``cache``, ``show_progress``,
    ``start_method``.  ``python -m repro.experiments --parallel N``
    calls this once so every registered experiment inherits the pool.
    """
    unknown = set(defaults) - set(_DEFAULTS)
    if unknown:
        raise TypeError(f"unknown configure() keys: {sorted(unknown)}")
    _DEFAULTS.update(defaults)
    return dict(_DEFAULTS)


def _default(name: str, value):
    return _DEFAULTS[name] if value is None else value


@dataclass
class RunResult(BenchmarkResult):
    """A :class:`BenchmarkResult` plus harness bookkeeping.

    ``stats`` records how the cells were obtained (simulated vs cache
    hits, wall-clock, worker count); the measured data is exactly what
    the equivalent serial run produces.
    """

    stats: Dict[str, object] = field(default_factory=dict)
    #: Case label -> ``repro.obs.TraceCollector``; populated only by
    #: ``run(trace=...)``.  Traces ride on the RunResult, never inside
    #: the CaseResults, so traced and untraced results stay identical.
    traces: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_benchmark(cls, result: BenchmarkResult,
                       stats: Optional[Dict[str, object]] = None
                       ) -> "RunResult":
        return cls(name=result.name, cases=dict(result.cases),
                   stats=dict(stats or {}))


def run(app, cases: Optional[Sequence[str]] = None, *,
        options: Optional[RunOptions] = None,
        parallel: Optional[int] = None,
        cache=None,
        seed: Optional[int] = None,
        preset: Optional[str] = None,
        overrides: Optional[dict] = None,
        name: Optional[str] = None,
        show_progress: Optional[bool] = None,
        progress: Optional[Progress] = None,
        trace=None,
        profile: bool = False,
        **params) -> RunResult:
    """Run ``app`` through the experiment harness.

    The canonical calling convention is typed (docs/api.md)::

        opts = repro.RunOptions(parallel=4, cache=True, seed=7)
        result = repro.run("grep", opts)        # or options=opts

    The bare keywords below remain supported as a thin compatibility
    wrapper — they build the same :class:`RunOptions` internally, and
    mixing an options object with loose keywords is an error.

    Parameters
    ----------
    app:
        A registered application name (``"grep"``), a ``module:Class``
        path, a :class:`~repro.apps.StreamApp` subclass, an
        :class:`AppSpec`, or — for compatibility with the old
        ``run_four_cases`` API — a zero-argument factory callable
        (factories cannot be fingerprinted or pickled, so they always
        run serially and uncached).
    cases:
        Case labels to run; defaults to all four paper configurations.
        (A :class:`RunOptions` here is treated as ``options``.)
    options:
        A :class:`RunOptions` carrying every parameter below.
    parallel, cache, show_progress:
        Override the :func:`configure` defaults for this call.
    seed:
        Master-seed override applied to every case's configuration.
    preset, overrides, ``**params``:
        Forwarded to :func:`make_spec` (technology preset, flat config
        overrides, app constructor parameters).
    trace:
        ``True`` to record a structured trace per case (returned as
        ``result.traces``), or a file path to additionally write the
        merged Chrome ``trace_event`` JSON there (openable in Perfetto).
        Tracing forces serial in-process execution and bypasses the
        cache — a cache hit would skip the simulation a trace observes.
        The measured ``CaseResult``s are identical with or without
        tracing (see docs/observability.md).
    profile:
        ``True`` to run each case under :mod:`cProfile`, dumping one
        ``.pstats`` file per case next to the result cache (under
        ``<cache dir>/profiles/``).  ``result.report().profile()``
        renders the top entries; the raw paths are in
        ``result.stats["profiles"]``.  Profiling forces serial
        in-process execution and bypasses the cache, like tracing.
    progress:
        A live :class:`~repro.runner.Progress` sink (a runtime channel,
        not configuration — deliberately outside :class:`RunOptions`).
    """
    opts = make_run_options(
        options, cases, parallel=parallel, cache=cache, seed=seed,
        preset=preset, overrides=overrides, name=name,
        show_progress=show_progress, trace=trace, profile=profile,
        params=params)
    return _run_with_options(app, opts, progress=progress)


def _run_with_options(app, opts: RunOptions,
                      progress: Optional[Progress] = None) -> RunResult:
    """The typed execution path every ``run()`` call goes through."""
    parallel = _default("parallel", opts.parallel)
    cache = _default("cache", opts.cache)
    show_progress = _default("show_progress", opts.show_progress)
    params = dict(opts.params)
    overrides = dict(opts.overrides) or None

    if opts.profile:
        return _run_profiled(app, cases=opts.cases, seed=opts.seed,
                             name=opts.name, preset=opts.preset,
                             overrides=overrides, params=params)

    if opts.trace:
        return _run_traced(app, cases=opts.cases, seed=opts.seed,
                           name=opts.name, preset=opts.preset,
                           overrides=overrides, params=params,
                           trace=opts.trace)

    if callable(app) and not isinstance(app, type):
        if params or opts.preset or overrides:
            raise TypeError(
                "factory callables take no spec parameters; pass a "
                "registered name or application class instead")
        return _run_factory(app, cases=opts.cases, seed=opts.seed,
                            name=opts.name)

    spec = make_spec(app, preset=opts.preset, overrides=overrides, **params)
    runner = ExperimentRunner(
        parallel=parallel, cache=cache, progress=progress,
        show_progress=show_progress,
        start_method=_DEFAULTS["start_method"])  # type: ignore[arg-type]
    result = runner.run_app(spec, cases=opts.cases, seed=opts.seed,
                            name=opts.name)
    cache = runner.cache  # may be empty, hence len()==0 and falsy
    stats = {
        "parallel": runner.parallel,
        "cache_dir": str(cache.root) if cache is not None else None,
        "cache_hits": cache.hits if cache is not None else 0,
        "spec": spec,
        "options": opts,
    }
    return RunResult.from_benchmark(result, stats)


def _run_factory(app_factory, cases: Optional[Sequence[str]],
                 seed: Optional[int], name: Optional[str]) -> RunResult:
    """Old-API path: fresh app per case, serial, uncached."""
    from dataclasses import replace

    labels = tuple(cases) if cases is not None else CASE_LABELS
    results: Dict[str, CaseResult] = {}
    app_name = name
    for label in labels:
        instance = app_factory()
        if app_name is None:
            app_name = instance.name
        config = instance.cluster_config()
        if seed is not None:
            config = replace(config, seed=seed)
        config = config.with_case(active=label.startswith("active"),
                                  prefetch=label.endswith("+pref"))
        results[label] = instance.run_case(config)
    return RunResult(name=app_name or "benchmark", cases=results,
                     stats={"parallel": 1, "cache_dir": None,
                            "cache_hits": 0, "spec": None})


def _run_traced(app, *, cases: Optional[Sequence[str]],
                seed: Optional[int], name: Optional[str],
                preset: Optional[str], overrides: Optional[dict],
                params: dict, trace) -> RunResult:
    """Traced path: serial, in-process, uncached — one collector per case."""
    import os
    from dataclasses import replace

    from ..obs.export import write_chrome_trace
    from ..obs.trace import TraceCollector

    factory = callable(app) and not isinstance(app, type)
    spec = None
    if factory:
        if params or preset or overrides:
            raise TypeError(
                "factory callables take no spec parameters; pass a "
                "registered name or application class instead")
    else:
        spec = make_spec(app, preset=preset, overrides=overrides, **params)

    labels = tuple(cases) if cases is not None else CASE_LABELS
    results: Dict[str, CaseResult] = {}
    collectors: Dict[str, object] = {}
    app_name = name
    for label in labels:
        instance = app() if factory else spec.build()
        if app_name is None:
            app_name = instance.name
        config = (instance.cluster_config() if factory
                  else spec.base_config(instance))
        if seed is not None:
            config = replace(config, seed=seed)
        config = config.with_case(active=label.startswith("active"),
                                  prefetch=label.endswith("+pref"))
        collector = TraceCollector()
        results[label] = instance.run_case(config, trace=collector)
        collectors[label] = collector

    trace_path = None
    if not isinstance(trace, bool):
        trace_path = os.fspath(trace)
        write_chrome_trace(trace_path, collectors)
    return RunResult(name=app_name or "benchmark", cases=results,
                     stats={"parallel": 1, "cache_dir": None,
                            "cache_hits": 0, "spec": spec,
                            "trace_path": trace_path},
                     traces=collectors)


def _run_profiled(app, *, cases: Optional[Sequence[str]],
                  seed: Optional[int], name: Optional[str],
                  preset: Optional[str], overrides: Optional[dict],
                  params: dict) -> RunResult:
    """Profiled path: serial, in-process, uncached — one cProfile per
    case, dumped as pstats next to the result cache."""
    import cProfile
    from dataclasses import replace

    from .cache import default_cache_dir

    factory = callable(app) and not isinstance(app, type)
    spec = None
    if factory:
        if params or preset or overrides:
            raise TypeError(
                "factory callables take no spec parameters; pass a "
                "registered name or application class instead")
    else:
        spec = make_spec(app, preset=preset, overrides=overrides, **params)

    profile_dir = default_cache_dir() / "profiles"
    profile_dir.mkdir(parents=True, exist_ok=True)
    labels = tuple(cases) if cases is not None else CASE_LABELS
    results: Dict[str, CaseResult] = {}
    profiles: Dict[str, str] = {}
    app_name = name
    for label in labels:
        instance = app() if factory else spec.build()
        if app_name is None:
            app_name = instance.name
        config = (instance.cluster_config() if factory
                  else spec.base_config(instance))
        if seed is not None:
            config = replace(config, seed=seed)
        config = config.with_case(active=label.startswith("active"),
                                  prefetch=label.endswith("+pref"))
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            results[label] = instance.run_case(config)
        finally:
            profiler.disable()
        path = profile_dir / f"{app_name}-{label}.pstats"
        profiler.dump_stats(path)
        profiles[label] = str(path)
    return RunResult(name=app_name or "benchmark", cases=results,
                     stats={"parallel": 1, "cache_dir": None,
                            "cache_hits": 0, "spec": spec,
                            "profiles": profiles})


def run_many(specs: Sequence, *,
             parallel: Optional[int] = None,
             cache=None,
             cases: Optional[Sequence[str]] = None,
             seeds: Sequence[Optional[int]] = (None,),
             show_progress: Optional[bool] = None,
             progress: Optional[Progress] = None) -> Dict[str, RunResult]:
    """Run several applications through one shared pool.

    ``specs`` items pass through :func:`make_spec`; the return maps each
    spec's label to its :class:`RunResult`.  With multiple ``seeds`` the
    key becomes ``"label#seed"``.
    """
    parallel = _default("parallel", parallel)
    cache = _default("cache", cache)
    show_progress = _default("show_progress", show_progress)
    resolved = [make_spec(spec) if not isinstance(spec, AppSpec) else spec
                for spec in specs]
    runner = ExperimentRunner(
        parallel=parallel, cache=cache, progress=progress,
        show_progress=show_progress,
        start_method=_DEFAULTS["start_method"])  # type: ignore[arg-type]
    grid = runner.run_grid(resolved, cases=cases, seeds=seeds)
    out: Dict[str, RunResult] = {}
    for (label, seed), bench in grid.items():
        key = label if seed is None and len(tuple(seeds)) == 1 else \
            f"{label}#{seed}"
        out[key] = RunResult.from_benchmark(bench, {
            "parallel": runner.parallel,
            "cache_dir": (str(runner.cache.root)
                          if runner.cache is not None else None),
            "seed": seed,
        })
    return out

"""Persistent warm worker pool shared across the harness and sweeps.

Before this module, every ``ExperimentRunner.run_cells`` and every
``sweep_offered_load`` call created its own ``multiprocessing`` pool,
spawn-started for determinism — so each call re-paid one ``import
repro`` (~0.3 s) per worker before simulating anything, and a knee
search that issues several small batches paid it several times over.

:func:`shared_pool` keeps one spawn-started pool alive per process and
hands it to every caller: :class:`~repro.runner.ExperimentRunner`,
:func:`~repro.traffic.sweep.sweep_offered_load`, and the adaptive knee
search (:func:`~repro.traffic.sweep.find_knee`) all draw from the same
workers.  Workers are *warm*: the initializer imports :mod:`repro` and
pre-computes the code-version fingerprint, and each worker keeps the
per-process template caches (:mod:`repro.cluster.template`) —
fabric hop walks, placement plans, built apps — so the second point a
worker simulates skips everything that is a pure function of the
configuration.

Correctness guards:

* the pool is keyed by start method **and** the simulation-mode
  environment (``REPRO_SIM_PERBLOCK`` / ``REPRO_SIM_FLUID``): spawned
  workers copy the parent environment at creation, so flipping a sim
  path after the pool exists must retire the old workers — reusing
  them would silently simulate on the wrong path;
* determinism is untouched: workers receive frozen specs and return
  the cache codec's JSON dicts, exactly as the per-call pools did, and
  the spawn start method still guarantees no inherited parent state.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from typing import Optional, Tuple

#: Environment variable overriding the multiprocessing start method
#: (shared with :mod:`repro.runner.harness`).
START_METHOD_ENV = "REPRO_RUNNER_START_METHOD"

#: Simulation-mode variables a worker bakes in at spawn time.
_SIM_ENV_VARS = ("REPRO_SIM_PERBLOCK", "REPRO_SIM_FLUID")


def _resolve_start_method(start_method: Optional[str]) -> str:
    return start_method or os.environ.get(START_METHOD_ENV, "spawn")


def _sim_signature() -> Tuple[Optional[str], ...]:
    """The sim-mode environment a freshly spawned worker would inherit."""
    return tuple(os.environ.get(name) for name in _SIM_ENV_VARS)


def _warm_worker() -> None:
    """Pool initializer: pay the one-time imports before any task.

    ``code_version()`` walks and hashes the source tree on first use;
    warming it here keeps it out of the first task's measured time and
    shares it across every task the worker ever runs.
    """
    import repro  # noqa: F401  (the import itself is the warm-up)
    from .fingerprint import code_version

    code_version()


class WorkerPool:
    """A lazily created, reusable spawn-context process pool.

    Thin wrapper over ``multiprocessing.pool.Pool`` that (a) defers
    creation until the first task batch, (b) warms workers through
    :func:`_warm_worker`, and (c) remembers its start method and size
    so :func:`shared_pool` can decide whether it is reusable.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.start_method = _resolve_start_method(start_method)
        self.sim_signature = _sim_signature()
        self._pool = None
        self.closed = False

    @property
    def pool(self):
        if self.closed:
            raise RuntimeError("worker pool is closed")
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self.sim_signature = _sim_signature()
            self._pool = context.Pool(processes=self.workers,
                                      initializer=_warm_worker)
        return self._pool

    # ``chunksize=1`` everywhere: cells/rate points have very uneven
    # costs, and one-at-a-time dispatch keeps the pool load-balanced.
    def map(self, fn, items):
        return self.pool.map(fn, items, chunksize=1)

    def imap_unordered(self, fn, items):
        return self.pool.imap_unordered(fn, items, chunksize=1)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self.closed = True

    def __repr__(self) -> str:
        state = ("closed" if self.closed
                 else "warm" if self._pool is not None else "cold")
        return (f"<WorkerPool {self.workers} workers "
                f"start={self.start_method} {state}>")


_SHARED: Optional[WorkerPool] = None


def shared_pool(workers: int, start_method: Optional[str] = None) -> WorkerPool:
    """The process-wide warm pool, created/grown/recycled on demand.

    Reuses the existing pool when it is at least ``workers`` wide and
    was spawned under the same start method and sim-mode environment;
    otherwise the old pool is retired and a fresh one (sized to the
    larger of the two requests, so alternating callers don't thrash)
    replaces it.
    """
    global _SHARED
    method = _resolve_start_method(start_method)
    pool = _SHARED
    if pool is not None and not pool.closed \
            and pool.start_method == method \
            and pool.sim_signature == _sim_signature() \
            and pool.workers >= workers:
        return pool
    size = workers
    if pool is not None:
        if not pool.closed and pool.start_method == method \
                and pool.sim_signature == _sim_signature():
            size = max(size, pool.workers)
        pool.close()
    _SHARED = WorkerPool(size, method)
    return _SHARED


def shutdown_shared_pool() -> None:
    """Retire the shared pool (tests; also registered at exit)."""
    global _SHARED
    if _SHARED is not None:
        _SHARED.close()
        _SHARED = None


atexit.register(shutdown_shared_pool)

"""Canonical fingerprints for experiment cells.

A cache key must identify a simulation *exactly*: the same key must
always restore bit-identical results, and any change that could alter a
result must change the key.  Three ingredients go in:

* the **cell identity** — app spec (class, constructor parameters,
  preset, config overrides), case label, and seed;
* the **cluster configuration** — every :class:`ClusterConfig` field,
  canonicalized recursively through its nested dataclasses (fault
  plans included);
* the **code version** — a digest over the ``repro`` package sources,
  so editing any model invalidates every cached result.

Canonicalization is deliberately strict: only plain data (dataclasses,
dicts, sequences, scalars) is accepted.  Anything else — lambdas,
open files, arbitrary objects — raises :class:`FingerprintError`, which
the harness treats as "uncacheable, run serial".
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Optional


class FingerprintError(TypeError):
    """A value that cannot be canonically fingerprinted."""


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to a canonical JSON-able structure.

    Floats canonicalize through ``repr`` (shortest round-tripping
    form), dict keys sort, tuples and lists unify, and dataclasses
    carry their qualified type name so two configs of different types
    with equal fields never collide.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return ["f", repr(value)]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = [[f.name, canonicalize(getattr(value, f.name))]
                  for f in dataclasses.fields(value)]
        return ["dc", f"{type(value).__module__}.{type(value).__qualname__}",
                fields]
    if isinstance(value, dict):
        items = sorted((str(k), canonicalize(v)) for k, v in value.items())
        return ["map", [list(pair) for pair in items]]
    if isinstance(value, (list, tuple)):
        return ["seq", [canonicalize(item) for item in value]]
    if isinstance(value, (bytes, bytearray)):
        return ["b", bytes(value).hex()]
    raise FingerprintError(
        f"cannot fingerprint {type(value).__qualname__}: {value!r}")


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``parts``."""
    canonical = json.dumps([canonicalize(part) for part in parts],
                           separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of every ``repro`` source file (cached per process).

    Two processes running the same checkout agree on this value; any
    source edit changes it, invalidating the whole result cache.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:20]
    return _CODE_VERSION

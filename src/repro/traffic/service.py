"""Open-loop service simulation: :class:`ServiceSpec` and ``repro.serve()``.

The closed-loop benchmarks answer "how long does one job take"; this
module answers the north-star question "how much traffic can a
configuration sustain, and at what tail latency".  Thousands of logical
client streams issue request-sized invocations of the paper's apps —
grep as search-as-a-service, select/hashjoin as query traffic, MD5 as
integrity checks — against one serving host + storage behind a (single
or multi-stage) switch fabric:

* arrivals come from a deterministic open-loop schedule
  (:mod:`repro.traffic.arrivals`), so load does not slow down when the
  server saturates — queues grow instead, exactly like production;
* every request passes the HCA **admission queue**
  (:mod:`repro.traffic.admission`): bounded depth, drop or
  backpressure, with queue delay accounted separately from service;
* service uses the *real* simulated components: striped disk reads,
  SCSI + TCA costs, the switch (handler offload + per-CPU contention
  in the ``active`` case), shared host downlink, HCA overheads, and
  the host CPU with its cache-hierarchy stall model;
* per-stream and aggregate latencies land in mergeable
  :class:`~repro.metrics.QuantileEstimator` sketches, giving
  p50/p95/p99/max, goodput, and drop rate per run.

A :class:`ServiceSpec` is frozen, picklable, and fingerprintable — the
service analogue of :class:`~repro.runner.AppSpec` — so ``serve()``
results cache and parallelize bit-identically (serial ≡ parallel ≡
cache-restored).

Request lifecycle (one obs instant per transition when a trace
collector is attached): ``arrival → admit (or drop) → dispatch →
complete``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Tuple

from ..cluster.fabric import TOPOLOGY_KINDS
from ..metrics.report import Report
from ..metrics.sampling import QuantileEstimator
from ..net.packet import HEADER_BYTES
from ..sim.resources import Resource
from ..sim.units import transfer_ps
from .admission import ADMISSION_POLICIES, CLOSED, AdmissionQueue
from .arrivals import ARRIVAL_KINDS, Arrival, generate_schedule

#: Service configurations (prefetch is a streaming concept; open-loop
#: requests are naturally pipelined by the worker pool instead).
SERVICE_CASES = ("normal", "active")

#: Wire size of one request message (a descriptor, not the data).
REQUEST_MESSAGE_BYTES = 128

#: Minimum response size (completion + status, even with no payload).
MIN_RESPONSE_BYTES = 64

#: Percentiles every latency series reports.
SERVICE_PERCENTILES = (50.0, 95.0, 99.0)

_SECOND_PS = 1_000_000_000_000


@dataclass(frozen=True)
class ServiceSpec:
    """One open-loop service configuration, ready to run or sweep.

    Like :class:`~repro.runner.AppSpec`: frozen, hashable, picklable,
    canonically fingerprintable.  Build one with
    :func:`make_service_spec` (which normalizes ``overrides`` dicts)
    or directly.
    """

    app: str = "grep"
    case: str = "active"
    arrival: str = "poisson"
    rate_rps: float = 1000.0
    duration_s: float = 0.02
    num_streams: int = 64
    num_keys: int = 256
    zipf_exponent: float = 1.1
    depth: int = 64
    policy: str = "drop"
    workers: int = 8
    topology: str = "single"
    hosts: int = 1
    preset: Optional[str] = None
    overrides: Tuple[Tuple[str, object], ...] = ()
    seed: int = 0
    scale: float = 0.05
    slo_ms: Optional[float] = None
    burst_factor: float = 4.0
    burst_fraction: float = 0.1
    cycle_s: float = 0.005

    def __post_init__(self):
        if self.case not in SERVICE_CASES:
            raise ValueError(f"unknown service case {self.case!r}; "
                             f"known: {SERVICE_CASES}")
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(f"unknown arrival kind {self.arrival!r}; "
                             f"known: {ARRIVAL_KINDS}")
        if self.topology not in TOPOLOGY_KINDS:
            raise ValueError(f"unknown topology {self.topology!r}; "
                             f"known: {TOPOLOGY_KINDS}")
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(f"unknown admission policy {self.policy!r}; "
                             f"known: {ADMISSION_POLICIES}")
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")
        if self.duration_s <= 0:
            raise ValueError(
                f"duration_s must be positive, got {self.duration_s}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.hosts < 1:
            raise ValueError(f"hosts must be >= 1, got {self.hosts}")
        if self.topology != "single" and self.hosts < 2:
            raise ValueError(
                "multi-switch topologies need hosts >= 2 (one server "
                "plus at least one client-facing port)")
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {self.slo_ms}")

    @property
    def label(self) -> str:
        """Short human name: ``grep:active@fat_tree poisson@2000rps``."""
        return (f"{self.app}:{self.case}@{self.topology} "
                f"{self.arrival}@{self.rate_rps:g}rps")

    def at_rate(self, rate_rps: float) -> "ServiceSpec":
        """The same configuration at a different offered load."""
        return replace(self, rate_rps=rate_rps)


def make_service_spec(app="grep", *, overrides: Optional[dict] = None,
                      **params) -> ServiceSpec:
    """Normalize kwargs (and ``overrides`` dicts) into a ServiceSpec."""
    if isinstance(app, ServiceSpec):
        if params or overrides:
            raise ValueError("pass parameters inside the ServiceSpec, "
                             "not alongside it")
        return app
    if not isinstance(app, str):
        raise TypeError(f"app must be a registered application name, "
                        f"got {app!r}")
    return ServiceSpec(
        app=app,
        overrides=tuple(sorted((overrides or {}).items())),
        **params)


# ----------------------------------------------------------------------
# Result container
# ----------------------------------------------------------------------
@dataclass
class ServiceResult:
    """Everything one open-loop run measured (JSON-losslessly codable)."""

    name: str
    app: str
    case: str
    topology: str
    arrival: str
    policy: str
    rate_rps: float
    seed: int
    slo_ms: Optional[float]
    duration_ps: int
    horizon_ps: int
    offered: int
    admitted: int
    dropped: int
    completed: int
    drop_rate: float
    offered_rps: float
    throughput_rps: float
    goodput_rps: float
    slo_attainment: float
    latency_us: Dict[str, float]
    queue_delay_us: Dict[str, float]
    service_time_us: Dict[str, float]
    streams: int
    worst_stream_p99_us: Optional[float]
    admission: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    # -- reporting ----------------------------------------------------
    def latency_summary(self) -> Dict[str, object]:
        """The sections :meth:`repro.metrics.Report.latency` renders."""
        return {
            "series": {
                "latency (us)": self.latency_us,
                "queue delay (us)": self.queue_delay_us,
                "service time (us)": self.service_time_us,
            },
            "rates": {
                "offered RPS": self.offered_rps,
                "throughput RPS": self.throughput_rps,
                "goodput RPS": self.goodput_rps,
                "drop rate": self.drop_rate,
                "SLO attainment": self.slo_attainment,
            },
            "slo_ms": self.slo_ms,
            "worst_stream_p99_us": self.worst_stream_p99_us,
            "streams": self.streams,
        }

    def report(self) -> Report:
        """Figure-style renderings; :meth:`Report.latency` is the one
        that applies to service results."""
        return Report(self)

    def meets_slo(self, slo_ms: Optional[float] = None,
                  max_drop_rate: float = 0.01) -> bool:
        """Did this run sustain its load under the (given) SLO?"""
        slo = self.slo_ms if slo_ms is None else slo_ms
        if self.drop_rate > max_drop_rate:
            return False
        if self.completed < self.admitted:
            return False
        if slo is not None:
            p99 = self.latency_us.get("p99")
            if p99 is None or p99 > slo * 1000.0:
                return False
        return True

    # -- lossless codec (cache entries, pool results) -----------------
    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ServiceResult":
        return cls(**data)


# ----------------------------------------------------------------------
# Topology-derived client path lengths
# ----------------------------------------------------------------------
def _client_hops(kind: str, hosts: int) -> List[int]:
    """Switch hops from each host to ``host0`` (the serving host).

    Delegates to the per-process template cache
    (:func:`repro.cluster.template.client_hops`), which wires the real
    fabric once per (kind, hosts) and walks its routing tables.
    """
    from ..cluster.template import client_hops
    return client_hops(kind, hosts)


# ----------------------------------------------------------------------
# The simulation
# ----------------------------------------------------------------------
def _stall(fn, hierarchy) -> int:
    return fn(hierarchy) if fn is not None else 0


def _summary(est: QuantileEstimator) -> Dict[str, float]:
    return est.summary(SERVICE_PERCENTILES)


def build_service_app(spec: ServiceSpec):
    """Build the (app spec, app) pair a service run simulates against.

    Split out so callers that time the simulation (``repro.bench``) can
    hoist the workload generation — amortised, not part of the
    simulator hot path — out of the measured region, mirroring the
    stream-app ``prepare_s`` methodology.
    """
    from ..runner.spec import make_spec

    app_spec = make_spec(spec.app, preset=spec.preset,
                         overrides=dict(spec.overrides), scale=spec.scale)
    return app_spec, app_spec.build()


def _simulate(spec: ServiceSpec, trace=None, prebuilt=None) -> ServiceResult:
    """One deterministic open-loop run (the serial reference path).

    ``prebuilt`` optionally supplies the ``(app_spec, app)`` pair from
    :func:`build_service_app`; otherwise the per-process template cache
    serves it, so sweep points at different rates share one built app.
    The simulation itself is identical either way.
    """
    from ..cluster.template import cached_service_app, system_template

    app_spec, app = (prebuilt if prebuilt is not None
                     else cached_service_app(spec))
    config = app_spec.base_config(app)
    config = replace(config, seed=spec.seed)
    config = config.with_case(active=(spec.case == "active"),
                              prefetch=False)

    from ..cluster.system import System
    system = System(config, template=system_template(config))
    env = system.env
    if trace is not None:
        system.attach_trace(trace)
    env.add_context(app=f"serve:{spec.app}", config=spec.label)

    host = system.host
    storage = system.storage
    # Warm service: heads parked at the log's start, so the first
    # request measures steady-state service, not a cold 5 ms seek.
    storage.disks.position_heads(0)
    hca_cfg = config.hca
    link_cfg = config.link
    routing_ps = config.switch.routing_latency_ps

    schedule = generate_schedule(
        spec.arrival, spec.rate_rps, spec.duration_s,
        num_streams=spec.num_streams, num_keys=spec.num_keys,
        zipf_exponent=spec.zipf_exponent, seed=spec.seed,
        burst_factor=spec.burst_factor, burst_fraction=spec.burst_fraction,
        cycle_s=spec.cycle_s)

    # Client access paths: streams map round-robin onto the fabric's
    # non-serving hosts; hop counts come from real routing-table walks.
    hops = _client_hops(spec.topology, spec.hosts)
    if spec.hosts > 1:
        stream_hops = [hops[1 + (s % (spec.hosts - 1))]
                       for s in range(spec.num_streams)]
    else:
        stream_hops = [hops[0]] * spec.num_streams

    def _net_ps(nbytes: int, hop_count: int) -> int:
        # Cut-through: one serialization plus per-hop latch/propagation,
        # NIC processing at both ends.
        return (2 * hca_cfg.per_packet_ps
                + transfer_ps(nbytes + HEADER_BYTES,
                              link_cfg.bandwidth_bytes_per_s)
                + hop_count * (link_cfg.propagation_ps + routing_ps))

    ingress_ps = [_net_ps(REQUEST_MESSAGE_BYTES, h) for h in stream_hops]

    queue = AdmissionQueue(env, depth=spec.depth, policy=spec.policy)
    host.hca.attach_admission(queue)
    host_cpu = Resource(env, capacity=1, name="service-host-cpu")

    blocks = app.blocks
    per_stream: Dict[int, QuantileEstimator] = {}
    queue_delay_est = QuantileEstimator()
    service_time_est = QuantileEstimator()
    # Burst-path stand-in for the ``host_cpu`` Resource: workers reach
    # it in chronological order, so a scalar free-at grants in the same
    # FIFO order (see repro.sim.burst).
    state = {"completed": 0, "ok": 0, "last_completion_ps": 0,
             "cursor": 0, "cpu_free_ps": 0}
    slo_ps = (None if spec.slo_ms is None
              else int(spec.slo_ms * 1_000_000_000))

    def emit(name: str, arr: Arrival) -> None:
        collector = env.trace
        if collector is not None:
            collector.instant("traffic", name, env.now,
                              req=arr.index, stream=arr.stream)

    def feeder(env):
        # Server-side arrival order: client timestamp plus access-path
        # latency (streams nearer the serving leaf arrive sooner).
        arrivals = sorted(
            ((arr.t_ps + ingress_ps[arr.stream], arr.index, arr)
             for arr in schedule), key=lambda item: item[:2])
        for t_server, _, arr in arrivals:
            if t_server > env.now:
                yield env.timeout(t_server - env.now)
            emit("service.arrival", arr)
            admitted = yield from queue.offer(arr)
            emit("service.admit" if admitted else "service.drop", arr)
        queue.close(spec.workers)

    def worker(env):
        while True:
            entry = yield from queue.take()
            if entry is CLOSED:
                return
            offered_ps, arr = entry
            dispatch_ps = env.now
            emit("service.dispatch", arr)
            work = blocks[arr.key_rank % len(blocks)]
            burst = system.burst_ok()

            # Post the storage read (queue-pair doorbell on the host).
            #
            # Burst fast path: the request's post -> storage -> handler
            # dispatch prefix is a chain of FIFO stages whose
            # completion order equals dispatch order, so all of its
            # reservations can be made *now* at future ready times and
            # still grant exactly as the staged walk (and the per-block
            # Resources) would — one timeout replaces one per stage.
            # Past the multi-CPU handler pool a later request can
            # overtake an earlier one, so from there the walk stays at
            # real event times.
            post_ps = hca_cfg.recv_poll_ps + hca_cfg.send_overhead_ps
            if burst:
                start = max(env.now, state["cpu_free_ps"])
                acct = host.cpu.accounting
                acct.add_busy(hca_cfg.recv_poll_ps)
                acct.add_busy(hca_cfg.send_overhead_ps)
                post_done = start + post_ps
                state["cpu_free_ps"] = post_done
            else:
                with host_cpu.request() as grant:
                    yield grant
                    yield from host.cpu.busy(hca_cfg.recv_poll_ps)
                    yield from host.cpu.busy(hca_cfg.send_overhead_ps)

            # Storage: TCA + SCSI + striped spindles, log-structured
            # (sequential) layout so positioning amortizes like the
            # paper's streams.
            offset = state["cursor"]
            state["cursor"] += work.nbytes
            if burst:
                _, read_done = storage.serve_read_burst(
                    post_done, offset, work.nbytes)
            else:
                yield from storage.serve_read(offset, work.nbytes)

            if spec.case == "active":
                # Handler on a free switch CPU (contended pool), then
                # only the filtered bytes cross the host downlink.
                if burst:
                    peek = system.switch_cpu_peek_at(read_done)
                    stall = _stall(work.handler_stall_fn, peek.hierarchy)
                    handler_done = system.process_on_switch_at(
                        read_done, work.handler_cycles, stall)
                    if handler_done > env.now:
                        yield env.timeout(handler_done - env.now)
                    if work.out_bytes > 0:
                        end = system.switch_to_host_bulk_at(
                            host, work.out_bytes, env.now)
                        if end > env.now:
                            yield env.timeout(end - env.now)
                else:
                    peek = system.switch_cpu_peek()
                    stall = _stall(work.handler_stall_fn, peek.hierarchy)
                    yield from system.process_on_switch(
                        work.handler_cycles, stall)
                    if work.out_bytes > 0:
                        yield from system.switch_to_host_bulk(
                            host, work.out_bytes)
                host_cycles = work.active_host_cycles
                host_stall_fn = work.active_host_stall_fn
            else:
                # The whole block crosses the (shared) host downlink —
                # single-wire FIFO, so the burst walk reserves it at
                # the analytic arrival time and sleeps once.
                if burst:
                    end = system.switch_to_host_bulk_at(
                        host, work.nbytes, read_done)
                    if end > env.now:
                        yield env.timeout(end - env.now)
                else:
                    yield from system.switch_to_host_bulk(host, work.nbytes)
                host_cycles = work.host_cycles
                host_stall_fn = work.host_stall_fn

            # Host portion + response post, on the contended host CPU.
            if burst:
                start = max(env.now, state["cpu_free_ps"])
                acct = host.cpu.accounting
                acct.add_busy(hca_cfg.recv_poll_ps)
                stall = _stall(host_stall_fn, host.hierarchy)
                work_ps = host.cpu.clock.cycles(host_cycles)
                acct.add_busy(work_ps)
                acct.add_stall(stall)
                acct.add_busy(hca_cfg.send_overhead_ps)
                state["cpu_free_ps"] = (start + hca_cfg.recv_poll_ps
                                        + work_ps + stall
                                        + hca_cfg.send_overhead_ps)
                if state["cpu_free_ps"] > env.now:
                    yield env.timeout(state["cpu_free_ps"] - env.now)
            else:
                with host_cpu.request() as grant:
                    yield grant
                    yield from host.cpu.busy(hca_cfg.recv_poll_ps)
                    stall = _stall(host_stall_fn, host.hierarchy)
                    yield from host.cpu.work(host_cycles, stall)
                    yield from host.cpu.busy(hca_cfg.send_overhead_ps)

            done_ps = env.now
            emit("service.complete", arr)
            response_bytes = max(work.out_bytes, MIN_RESPONSE_BYTES)
            host.hca.account_bulk_out(response_bytes)
            egress = _net_ps(response_bytes, stream_hops[arr.stream])
            latency_ps = done_ps + egress - arr.t_ps
            est = per_stream.get(arr.stream)
            if est is None:
                est = per_stream[arr.stream] = QuantileEstimator()
            est.add(latency_ps / 1e6)
            queue_delay_est.add((dispatch_ps - offered_ps) / 1e6)
            service_time_est.add((done_ps - dispatch_ps) / 1e6)
            state["completed"] += 1
            if slo_ps is None or latency_ps <= slo_ps:
                state["ok"] += 1
            state["last_completion_ps"] = max(state["last_completion_ps"],
                                              done_ps + egress)

    system.metrics.register("service.offered", lambda: queue.offered)
    system.metrics.register("service.admitted", lambda: queue.admitted)
    system.metrics.register("service.dropped", lambda: queue.dropped)
    system.metrics.register("service.completed",
                            lambda: state["completed"])

    procs = [env.process(feeder(env), name="service-feeder")]
    for i in range(spec.workers):
        procs.append(env.process(worker(env), name=f"service-worker{i}"))
    env.run(until=env.all_of(procs))

    duration_ps = int(round(spec.duration_s * _SECOND_PS))
    horizon_ps = max(duration_ps, state["last_completion_ps"])
    horizon_s = horizon_ps / _SECOND_PS
    aggregate = QuantileEstimator.merged(
        [per_stream[s] for s in sorted(per_stream)])
    completed = state["completed"]
    worst_p99 = None
    for est in per_stream.values():
        p99 = est.percentile(99)
        if worst_p99 is None or (p99 is not None and p99 > worst_p99):
            worst_p99 = p99

    return ServiceResult(
        name=spec.label,
        app=spec.app,
        case=spec.case,
        topology=spec.topology,
        arrival=spec.arrival,
        policy=spec.policy,
        rate_rps=spec.rate_rps,
        seed=spec.seed,
        slo_ms=spec.slo_ms,
        duration_ps=duration_ps,
        horizon_ps=horizon_ps,
        offered=queue.offered,
        admitted=queue.admitted,
        dropped=queue.dropped,
        completed=completed,
        drop_rate=queue.drop_rate,
        offered_rps=queue.offered / spec.duration_s,
        throughput_rps=completed / horizon_s,
        goodput_rps=state["ok"] / horizon_s,
        slo_attainment=(state["ok"] / completed) if completed else 0.0,
        latency_us=_summary(aggregate),
        queue_delay_us=_summary(queue_delay_est),
        service_time_us=_summary(service_time_est),
        streams=len(per_stream),
        worst_stream_p99_us=worst_p99,
        admission=queue.snapshot(env.now),
        extra=system.reliability_report(),
    )


# ----------------------------------------------------------------------
# Front door
# ----------------------------------------------------------------------
def service_key(spec: ServiceSpec) -> str:
    """Cache key: spec content + code version (like ``cell_key``).

    The simulation mode tag keeps approximate (fluid) results from
    ever being restored as exact ones, or vice versa.
    """
    from ..runner.fingerprint import code_version, fingerprint
    from ..sim.burst import sim_mode_tag
    return fingerprint("service", spec, code_version(), sim_mode_tag())


def serve(app="grep", *, cache=None, trace=None, **params) -> ServiceResult:
    """Run one open-loop service configuration.

    ``app`` is a :class:`ServiceSpec` (the canonical typed path) or a
    registered application name with spec fields as keywords::

        import repro

        spec = repro.ServiceSpec(app="grep", case="active",
                                 rate_rps=2000, slo_ms=2.0)
        result = repro.serve(spec, cache=True)
        print(result.report().latency())

    ``cache`` works like ``repro.run``'s: ``True`` for the default
    directory, a path, or a :class:`~repro.runner.ResultCache`.  Cached
    results restore bit-identically (the codec is lossless).  ``trace``
    is an optional ``repro.obs.TraceCollector`` receiving one instant
    per request transition (arrival/admit/drop/dispatch/complete);
    tracing bypasses the cache so the observed simulation really runs.
    """
    spec = make_service_spec(app, **params)
    if trace is not None:
        return _simulate(spec, trace=trace)
    from ..runner.cache import resolve_cache
    store = resolve_cache(cache)
    if store is None:
        return _simulate(spec)
    key = service_key(spec)
    payload = store.get_json(key)
    if payload is not None:
        return ServiceResult.from_dict(payload)
    result = _simulate(spec)
    store.put_json(key, result.to_dict(), meta={"label": spec.label})
    return result

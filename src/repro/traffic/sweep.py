"""Offered-load sweeps: saturation knees and max sustainable RPS.

An open-loop configuration is characterized by sweeping the offered
rate and watching where the latency/goodput curve breaks: below the
knee, goodput tracks offered load and p99 stays near the unloaded
service time; past it, queues (or drops) absorb the excess and the tail
explodes.  :func:`sweep_offered_load` runs one :class:`ServiceSpec`
across a rate grid — serially, through the shared warm process pool,
or against the result cache, all bit-identically — and
:meth:`ServiceSweep.knee` reports the largest offered rate of the
sustained *prefix* under a declared SLO.

:func:`find_knee` is the adaptive alternative: instead of simulating
the whole grid it brackets the saturation boundary — bisection over a
given grid, or geometric probing plus rate bisection on a continuous
range — so a knee costs O(log) service simulations.  Fixed-grid mode
(``mode="grid"``) is retained as the golden reference; on monotone
curves the two return the same knee (proven by property test in
``tests/traffic/test_sweep.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..metrics.report import render_table
from .service import ServiceResult, ServiceSpec, _simulate, serve, service_key

#: Goodput must stay within this fraction of offered load to count as
#: "sustained" when no explicit SLO is declared.
GOODPUT_TOLERANCE = 0.95

#: Knee-search modes: adaptive bisection, or the exhaustive golden grid.
KNEE_MODES = ("adaptive", "grid")

#: Continuous-range searches stop doubling after this many probes (a
#: configuration sustaining lo * 2**20 has no knee worth bracketing).
_MAX_DOUBLINGS = 20


def _sweep_worker(spec: ServiceSpec) -> Dict[str, object]:
    """Pool entry point: run one rate point, return the encoded result."""
    return _simulate(spec).to_dict()


def _sustained(result: ServiceResult, slo_ms: Optional[float],
               max_drop_rate: float) -> bool:
    """One shared "did this rate point hold" predicate.

    Used identically by the exhaustive sweep, the adaptive search, and
    the experiments, so every path agrees on what a knee is: drop rate
    under ``max_drop_rate``, every admitted request completed, goodput
    within :data:`GOODPUT_TOLERANCE` of offered load, and — when an SLO
    applies — aggregate p99 under it.
    """
    ok = (result.drop_rate <= max_drop_rate
          and result.completed == result.admitted
          and result.goodput_rps >= GOODPUT_TOLERANCE * result.offered_rps)
    if ok and slo_ms is not None:
        p99 = result.latency_us.get("p99")
        ok = p99 is not None and p99 <= slo_ms * 1000.0
    return ok


@dataclass
class ServiceSweep:
    """Results of one offered-load sweep, ordered by offered rate."""

    spec: ServiceSpec
    results: List[ServiceResult] = field(default_factory=list)

    def rates(self) -> List[float]:
        return [result.rate_rps for result in self.results]

    def knee(self, slo_ms: Optional[float] = None,
             max_drop_rate: float = 0.01) -> Dict[str, Optional[float]]:
        """Locate the saturation knee under an SLO.

        A rate point is *sustained* per :func:`_sustained` (drops,
        completion, goodput tracking, and — when an SLO is declared via
        the argument or the spec's own ``slo_ms`` — p99 under it).  The
        knee is defined on the sustained **prefix**: scanning rates in
        ascending order, the first unsustained point is ``knee_rps``
        and ``max_sustainable_rps`` is the largest sustained rate
        *before* it.  A noisy sustained point beyond the knee does not
        count — the configuration already failed at a lower rate, so
        reporting a higher "max sustainable" would overstate capacity
        (and could make ``max_sustainable_rps`` exceed ``knee_rps``).
        ``knee_rps`` is ``None`` when the whole sweep held.
        """
        slo = self.spec.slo_ms if slo_ms is None else slo_ms
        best: Optional[ServiceResult] = None
        knee_rps: Optional[float] = None
        for result in sorted(self.results, key=lambda r: r.rate_rps):
            if not _sustained(result, slo, max_drop_rate):
                knee_rps = result.rate_rps
                break
            best = result
        return {
            "slo_ms": slo,
            "max_sustainable_rps": best.rate_rps if best else None,
            "goodput_rps": best.goodput_rps if best else None,
            "p99_us": best.latency_us.get("p99") if best else None,
            "knee_rps": knee_rps,
        }

    def table(self) -> str:
        """One aligned row per rate point (for EXPERIMENTS.md)."""
        rows = []
        for result in sorted(self.results, key=lambda r: r.rate_rps):
            rows.append([
                f"{result.rate_rps:g}",
                f"{result.offered_rps:.0f}",
                f"{result.goodput_rps:.0f}",
                f"{result.drop_rate:.3f}",
                f"{result.latency_us.get('p50', 0.0):.1f}",
                f"{result.latency_us.get('p95', 0.0):.1f}",
                f"{result.latency_us.get('p99', 0.0):.1f}",
            ])
        return (f"{self.spec.label}: offered-load sweep\n"
                + render_table(
                    ["rate", "offered", "goodput", "drop", "p50us",
                     "p95us", "p99us"], rows))


def sweep_offered_load(spec: ServiceSpec, rates: Sequence[float], *,
                       parallel: int = 1, cache=None,
                       start_method: Optional[str] = None,
                       pool=None) -> ServiceSweep:
    """Run ``spec`` at each offered rate in ``rates``.

    ``parallel > 1`` fans the rate points across the process-wide warm
    worker pool (:func:`repro.runner.pool.shared_pool`) — workers
    import once, keep their template caches, and are reused by every
    sweep and grid in the process; ``pool`` injects an explicit
    :class:`~repro.runner.pool.WorkerPool` instead.  ``cache``
    reuses/persists per-point results keyed by spec content + code
    version.  All three paths (serial, pool, cache-restored) produce
    field-identical results — the pool ships frozen specs out and
    lossless result dicts back, and the cache codec round-trips floats
    exactly.
    """
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    points = [spec.at_rate(rate) for rate in rates]
    results: List[Optional[ServiceResult]] = [None] * len(points)

    from ..runner.cache import resolve_cache
    store = resolve_cache(cache)
    pending = []
    for index, point in enumerate(points):
        payload = store.get_json(service_key(point)) if store is not None \
            else None
        if payload is not None:
            results[index] = ServiceResult.from_dict(payload)
        else:
            pending.append(index)

    if pending and (parallel > 1 or pool is not None) and len(pending) > 1:
        if pool is None:
            from ..runner.pool import shared_pool
            pool = shared_pool(min(parallel, len(pending)), start_method)
        payloads = pool.map(_sweep_worker, [points[i] for i in pending])
        for index, payload in zip(pending, payloads):
            results[index] = ServiceResult.from_dict(payload)
            if store is not None:
                store.put_json(service_key(points[index]), payload,
                               meta={"label": points[index].label})
    else:
        for index in pending:
            results[index] = serve(points[index], cache=store)

    return ServiceSweep(spec=spec, results=list(results))


# ----------------------------------------------------------------------
# Adaptive knee search
# ----------------------------------------------------------------------
@dataclass
class KneeSearch:
    """Everything one :func:`find_knee` call probed and concluded.

    ``sims`` counts simulations actually run, ``cache_hits`` the points
    restored from the result cache, and ``evaluations`` their sum (the
    number of distinct rate points consulted) — the accounting the
    ``sweep:*`` bench cells and the ≥3x sims-per-knee gate read.
    """

    spec: ServiceSpec
    mode: str
    slo_ms: Optional[float]
    max_drop_rate: float
    results: List[ServiceResult] = field(default_factory=list)
    #: Rates in evaluation order (the probe trace).
    probes: List[float] = field(default_factory=list)
    sims: int = 0
    evaluations: int = 0
    cache_hits: int = 0
    #: Largest sustained rate point of the prefix (None: none held).
    best: Optional[ServiceResult] = None
    #: First unsustained rate (None: everything probed held).
    knee_rps: Optional[float] = None

    def knee(self) -> Dict[str, Optional[float]]:
        """The knee verdict, in :meth:`ServiceSweep.knee`'s vocabulary
        plus the search's cost accounting."""
        return {
            "slo_ms": self.slo_ms,
            "max_sustainable_rps": self.best.rate_rps if self.best else None,
            "goodput_rps": self.best.goodput_rps if self.best else None,
            "p99_us": (self.best.latency_us.get("p99")
                       if self.best else None),
            "knee_rps": self.knee_rps,
            "sims": self.sims,
            "evaluations": self.evaluations,
        }

    def sweep(self) -> ServiceSweep:
        """The probed points as a :class:`ServiceSweep` (for tables)."""
        return ServiceSweep(
            spec=self.spec,
            results=sorted(self.results, key=lambda r: r.rate_rps))


def find_knee(spec: ServiceSpec,
              rates: Optional[Sequence[float]] = None, *,
              lo: Optional[float] = None, hi: Optional[float] = None,
              resolution: Optional[float] = None,
              mode: str = "adaptive",
              slo_ms: Optional[float] = None,
              max_drop_rate: float = 0.01,
              cache=None,
              evaluate: Optional[Callable[[ServiceSpec],
                                          ServiceResult]] = None,
              ) -> KneeSearch:
    """Locate ``spec``'s saturation knee in O(log) service simulations.

    Two search domains:

    * **grid** (``rates`` given) — the knee is the sustained-prefix
      boundary of the sorted grid.  ``mode="adaptive"`` bisects the
      boundary index (⌈log2(n+1)⌉ probes for an n-point grid, e.g. 5
      for 16 points); ``mode="grid"`` evaluates every point — the
      golden reference the adaptive path is tested against.  On a
      monotone curve both return the identical knee; on a non-monotone
      curve both honor the same prefix definition, though bisection may
      bracket a different noise-induced boundary than the full scan.
    * **continuous** (``rates`` omitted) — geometric doubling from
      ``lo`` (default: the spec's own ``rate_rps``) until a rate fails
      (or ``hi`` caps the range), then rate bisection until the bracket
      is narrower than ``resolution`` (default ``lo / 8``).

    Every distinct rate is evaluated once (memoized) and, when
    ``cache`` is given, consulted against / persisted to the result
    cache under the same keys ``serve()`` and ``sweep_offered_load``
    use — so a warm cache makes a repeated search cost **zero** new
    simulations, and grid points simulated here are reusable by later
    full sweeps.  ``evaluate`` swaps the simulator for a synthetic
    curve (property tests); each call then counts as one sim.

    Returns a :class:`KneeSearch`; ``.knee()`` has the verdict and the
    sims/evaluations accounting, ``.sweep()`` the probed points.
    """
    if mode not in KNEE_MODES:
        raise ValueError(f"unknown knee-search mode {mode!r}; "
                         f"expected one of {KNEE_MODES}")
    slo = spec.slo_ms if slo_ms is None else slo_ms
    search = KneeSearch(spec=spec, mode=mode, slo_ms=slo,
                        max_drop_rate=max_drop_rate)
    from ..runner.cache import resolve_cache
    store = resolve_cache(cache)
    memo: Dict[float, ServiceResult] = {}

    def run(rate: float) -> ServiceResult:
        result = memo.get(rate)
        if result is not None:
            return result
        point = spec.at_rate(rate)
        if evaluate is not None:
            result = evaluate(point)
            search.sims += 1
        else:
            payload = (store.get_json(service_key(point))
                       if store is not None else None)
            if payload is not None:
                result = ServiceResult.from_dict(payload)
                search.cache_hits += 1
            else:
                result = _simulate(point)
                search.sims += 1
                if store is not None:
                    store.put_json(service_key(point), result.to_dict(),
                                   meta={"label": point.label})
        search.evaluations += 1
        search.probes.append(rate)
        search.results.append(result)
        memo[rate] = result
        return result

    def held(rate: float) -> bool:
        return _sustained(run(rate), slo, max_drop_rate)

    if rates is not None:
        grid = sorted(set(float(rate) for rate in rates))
        if not grid:
            raise ValueError("rates must be non-empty")
        if mode == "grid":
            # Golden reference: evaluate everything, then apply the
            # same prefix rule ServiceSweep.knee() uses.
            for rate in grid:
                run(rate)
            for rate in grid:
                if not held(rate):
                    search.knee_rps = rate
                    break
                search.best = memo[rate]
        else:
            # Invariant: grid[lo_idx] sustained (or the virtual -1),
            # grid[hi_idx] unsustained (or the virtual end) — bisection
            # over the sustained-prefix boundary index.
            lo_idx, hi_idx = -1, len(grid)
            while hi_idx - lo_idx > 1:
                mid = (lo_idx + hi_idx) // 2
                if held(grid[mid]):
                    lo_idx = mid
                else:
                    hi_idx = mid
            if lo_idx >= 0:
                search.best = memo[grid[lo_idx]]
            if hi_idx < len(grid):
                search.knee_rps = grid[hi_idx]
        return search

    # Continuous range: double until something breaks, then bisect.
    low = float(spec.rate_rps if lo is None else lo)
    if low <= 0:
        raise ValueError(f"lo must be positive, got {low}")
    if resolution is None:
        resolution = low / 8
    if resolution <= 0:
        raise ValueError(f"resolution must be positive, got {resolution}")
    if not held(low):
        search.knee_rps = low
        return search
    search.best = memo[low]
    rate, high = low, None
    for _ in range(_MAX_DOUBLINGS):
        rate = rate * 2 if hi is None else min(rate * 2, hi)
        if held(rate):
            search.best = memo[rate]
            low = rate
            if hi is not None and rate >= hi:
                return search  # the whole requested range held
        else:
            high = rate
            break
    if high is None:
        return search  # never broke within the doubling budget
    while high - low > resolution:
        mid = (low + high) / 2
        if held(mid):
            search.best = memo[mid]
            low = mid
        else:
            high = mid
    search.knee_rps = high
    return search

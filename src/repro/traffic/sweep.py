"""Offered-load sweeps: saturation knees and max sustainable RPS.

An open-loop configuration is characterized by sweeping the offered
rate and watching where the latency/goodput curve breaks: below the
knee, goodput tracks offered load and p99 stays near the unloaded
service time; past it, queues (or drops) absorb the excess and the tail
explodes.  :func:`sweep_offered_load` runs one :class:`ServiceSpec`
across a rate grid — serially, through a process pool, or against the
result cache, all bit-identically — and :meth:`ServiceSweep.knee`
reports the largest offered rate the configuration sustains under a
declared SLO.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..metrics.report import render_table
from .service import ServiceResult, ServiceSpec, _simulate, serve, service_key

#: Goodput must stay within this fraction of offered load to count as
#: "sustained" when no explicit SLO is declared.
GOODPUT_TOLERANCE = 0.95


def _sweep_worker(spec: ServiceSpec) -> Dict[str, object]:
    """Pool entry point: run one rate point, return the encoded result."""
    return _simulate(spec).to_dict()


@dataclass
class ServiceSweep:
    """Results of one offered-load sweep, ordered by offered rate."""

    spec: ServiceSpec
    results: List[ServiceResult] = field(default_factory=list)

    def rates(self) -> List[float]:
        return [result.rate_rps for result in self.results]

    def knee(self, slo_ms: Optional[float] = None,
             max_drop_rate: float = 0.01) -> Dict[str, Optional[float]]:
        """Locate the saturation knee under an SLO.

        A rate point is *sustained* when its drop rate stays under
        ``max_drop_rate``, its goodput keeps up with the offered load
        (within :data:`GOODPUT_TOLERANCE`), and — when an SLO is
        declared (argument, or the spec's own ``slo_ms``) — aggregate
        p99 latency stays under it.  Returns the largest sustained
        offered rate (``max_sustainable_rps``), its goodput and p99,
        and the first unsustained rate (``knee_rps``; ``None`` when the
        whole sweep held).
        """
        slo = self.spec.slo_ms if slo_ms is None else slo_ms
        best: Optional[ServiceResult] = None
        knee_rps: Optional[float] = None
        for result in sorted(self.results, key=lambda r: r.rate_rps):
            sustained = (result.drop_rate <= max_drop_rate
                         and result.completed == result.admitted
                         and result.goodput_rps
                         >= GOODPUT_TOLERANCE * result.offered_rps)
            if sustained and slo is not None:
                p99 = result.latency_us.get("p99")
                sustained = p99 is not None and p99 <= slo * 1000.0
            if sustained:
                best = result
            elif knee_rps is None:
                knee_rps = result.rate_rps
        return {
            "slo_ms": slo,
            "max_sustainable_rps": best.rate_rps if best else None,
            "goodput_rps": best.goodput_rps if best else None,
            "p99_us": best.latency_us.get("p99") if best else None,
            "knee_rps": knee_rps,
        }

    def table(self) -> str:
        """One aligned row per rate point (for EXPERIMENTS.md)."""
        rows = []
        for result in sorted(self.results, key=lambda r: r.rate_rps):
            rows.append([
                f"{result.rate_rps:g}",
                f"{result.offered_rps:.0f}",
                f"{result.goodput_rps:.0f}",
                f"{result.drop_rate:.3f}",
                f"{result.latency_us.get('p50', 0.0):.1f}",
                f"{result.latency_us.get('p95', 0.0):.1f}",
                f"{result.latency_us.get('p99', 0.0):.1f}",
            ])
        return (f"{self.spec.label}: offered-load sweep\n"
                + render_table(
                    ["rate", "offered", "goodput", "drop", "p50us",
                     "p95us", "p99us"], rows))


def sweep_offered_load(spec: ServiceSpec, rates: Sequence[float], *,
                       parallel: int = 1, cache=None,
                       start_method: Optional[str] = None) -> ServiceSweep:
    """Run ``spec`` at each offered rate in ``rates``.

    ``parallel > 1`` fans the rate points across a spawn-started
    process pool; ``cache`` reuses/persists per-point results keyed by
    spec content + code version.  All three paths (serial, pool,
    cache-restored) produce field-identical results — the pool ships
    frozen specs out and lossless result dicts back, and the cache
    codec round-trips floats exactly.
    """
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    points = [spec.at_rate(rate) for rate in rates]
    results: List[Optional[ServiceResult]] = [None] * len(points)

    from ..runner.harness import ExperimentRunner
    store = ExperimentRunner._resolve_cache(cache)
    pending = []
    for index, point in enumerate(points):
        payload = store.get_json(service_key(point)) if store is not None \
            else None
        if payload is not None:
            results[index] = ServiceResult.from_dict(payload)
        else:
            pending.append(index)

    if pending and parallel > 1 and len(pending) > 1:
        from ..runner.harness import START_METHOD_ENV
        method = (start_method
                  or os.environ.get(START_METHOD_ENV, "spawn"))
        context = multiprocessing.get_context(method)
        with context.Pool(processes=min(parallel, len(pending))) as pool:
            payloads = pool.map(_sweep_worker,
                                [points[i] for i in pending], chunksize=1)
        for index, payload in zip(pending, payloads):
            results[index] = ServiceResult.from_dict(payload)
            if store is not None:
                store.put_json(service_key(points[index]), payload,
                               meta={"label": points[index].label})
    else:
        for index in pending:
            results[index] = serve(points[index], cache=store)

    return ServiceSweep(spec=spec, results=list(results))

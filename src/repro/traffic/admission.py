"""Bounded admission queue in front of the serving host's HCA.

Open-loop traffic must be *admitted* before it can be served: the
queue-pair completion ring is finite, so a server under overload either
sheds load (``drop``) or pushes back into the fabric (``backpressure``).
:class:`AdmissionQueue` models that choice explicitly and keeps the
accounting the latency reports need — offered/admitted/dropped counts
and a time-weighted depth signal — while *queue delay* (admission to
dispatch) stays separate from service time by construction: entries
carry their admission timestamp.

The queue attaches to the serving host's
:class:`~repro.net.hca.ChannelAdapter` (see ``attach_admission``), so
its drop counters surface through the same ``reliability()`` snapshot
as the link-level fault counters.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..metrics.sampling import TimeWeighted
from ..sim.resources import Store

#: Admission policies: shed load or push back on the arrival source.
ADMISSION_POLICIES = ("drop", "backpressure")


class _Closed:
    """Sentinel marking the end of the admitted request stream."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<CLOSED>"


CLOSED = _Closed()


class AdmissionQueue:
    """Bounded FIFO between arrival and dispatch, with depth accounting.

    ``offer`` and ``take`` are generators driven from simulation
    processes.  Under ``drop`` an arrival finding ``depth`` requests
    outstanding is rejected immediately; under ``backpressure`` the
    offering process blocks until a slot frees (head-of-line: one
    admission point, exactly like one NIC descriptor ring).
    """

    def __init__(self, env, depth: int, policy: str = "drop"):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if policy not in ADMISSION_POLICIES:
            raise ValueError(f"unknown admission policy {policy!r}; "
                             f"known: {ADMISSION_POLICIES}")
        self.env = env
        self.depth = depth
        self.policy = policy
        self._store: Store = Store(env)
        self._occupancy = 0
        self._waiters: Deque = deque()
        self.offered = 0
        self.admitted = 0
        self.dropped = 0
        self.depth_signal = TimeWeighted(env)

    @property
    def queued(self) -> int:
        """Requests admitted but not yet dispatched."""
        return self._occupancy

    def offer(self, item):
        """Try to admit ``item``; yields, returns True iff admitted.

        The returned entry timestamp is the *offer* time, so for
        ``backpressure`` the blocked wait counts as queue delay.
        """
        self.offered += 1
        arrived_ps = self.env.now
        if self._occupancy >= self.depth:
            if self.policy == "drop":
                self.dropped += 1
                return False
            while self._occupancy >= self.depth:
                waiter = self.env.event()
                self._waiters.append(waiter)
                yield waiter
        self.admitted += 1
        self._occupancy += 1
        self.depth_signal.set(self._occupancy)
        self._store.put((arrived_ps, item))
        return True

    def take(self):
        """Next admitted entry ``(offer_ps, item)``, or ``CLOSED``."""
        entry = yield self._store.get()
        if entry is CLOSED:
            return CLOSED
        self._occupancy -= 1
        self.depth_signal.set(self._occupancy)
        if self._waiters:
            self._waiters.popleft().succeed()
        return entry

    def close(self, consumers: int) -> None:
        """Wake ``consumers`` takers after the last offer (FIFO: every
        admitted request drains before any consumer sees the sentinel)."""
        for _ in range(consumers):
            self._store.put(CLOSED)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def drop_rate(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0

    def snapshot(self, until_ps: Optional[int] = None) -> Dict[str, float]:
        """Counter snapshot for reports and metric registries."""
        return {
            "offered": float(self.offered),
            "admitted": float(self.admitted),
            "dropped": float(self.dropped),
            "drop_rate": self.drop_rate,
            "mean_depth": self.depth_signal.mean(until_ps),
            "max_depth": self.depth_signal.maximum,
        }

    def __repr__(self) -> str:
        return (f"<AdmissionQueue {self.policy} depth={self.depth} "
                f"queued={self.queued} dropped={self.dropped}>")

"""Deterministic open-loop arrival schedules.

Three arrival processes, all seeded through the :mod:`repro.faults`
stream-seed discipline (one sha256-derived :class:`random.Random` per
named draw, so the arrival times, stream assignment, and key popularity
are independent streams of one master seed):

* ``poisson`` — memoryless arrivals at a constant rate;
* ``bursty`` — an MMPP on/off source: exponential on/off phases, the
  on-phase running ``burst_factor`` hotter, the off-phase cooled so the
  *mean* rate stays the requested one;
* ``diurnal`` — a linear ramp from ``0.5x`` to ``1.5x`` the requested
  rate over the window (a compressed day), realized by thinning.

A schedule is generated up front as a plain list of :class:`Arrival`
records — picoseconds, stream id, Zipf key rank — so the serial,
parallel, and cache-restored execution paths all consume the identical
request sequence.  Key popularity reuses the inverse-CDF Zipf sampler
from :mod:`repro.workloads.zipf`.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import List

from ..faults.injector import stream_seed
from ..workloads.zipf import zipf_cdf

#: Supported arrival process kinds.
ARRIVAL_KINDS = ("poisson", "bursty", "diurnal")

#: One simulated second, in picoseconds.
_SECOND_PS = 1_000_000_000_000


@dataclass(frozen=True)
class Arrival:
    """One client request: when, from which stream, for which key."""

    index: int
    t_ps: int
    stream: int
    key_rank: int


def _arrival_seconds(kind: str, rate_rps: float, duration_s: float,
                     rng: random.Random, burst_factor: float,
                     burst_fraction: float, cycle_s: float) -> List[float]:
    """Raw arrival instants in seconds over ``[0, duration_s)``."""
    times: List[float] = []
    if kind == "poisson":
        t = rng.expovariate(rate_rps)
        while t < duration_s:
            times.append(t)
            t += rng.expovariate(rate_rps)
        return times

    if kind == "bursty":
        # MMPP on/off: rate_on = burst_factor * rate during the on
        # phase; rate_off rebalanced so the long-run mean is rate_rps.
        f = burst_fraction
        rate_on = burst_factor * rate_rps
        rate_off = rate_rps * (1.0 - f * burst_factor) / (1.0 - f)
        if rate_off < 0:
            raise ValueError(
                f"burst_fraction * burst_factor must be < 1 "
                f"(got {f} * {burst_factor})")
        phase_rng = random.Random(rng.getrandbits(64))
        on = True
        phase_end = phase_rng.expovariate(1.0 / (f * cycle_s))
        t = 0.0
        while t < duration_s:
            rate = rate_on if on else rate_off
            gap = rng.expovariate(rate) if rate > 0 else duration_s
            if t + gap >= phase_end:
                t = phase_end
                on = not on
                mean = (f if on else (1.0 - f)) * cycle_s
                phase_end = t + phase_rng.expovariate(1.0 / mean)
                continue
            t += gap
            if t < duration_s:
                times.append(t)
        return times

    if kind == "diurnal":
        # Thinning against the peak rate 1.5x; lambda(t) ramps
        # 0.5x -> 1.5x so the window's mean is exactly rate_rps.
        peak = 1.5 * rate_rps
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if t >= duration_s:
                return times
            lam = rate_rps * (0.5 + t / duration_s)
            if rng.random() * peak < lam:
                times.append(t)

    raise ValueError(f"unknown arrival kind {kind!r}; "
                     f"known: {ARRIVAL_KINDS}")


def generate_schedule(kind: str, rate_rps: float, duration_s: float, *,
                      num_streams: int, num_keys: int,
                      zipf_exponent: float, seed: int,
                      burst_factor: float = 4.0,
                      burst_fraction: float = 0.1,
                      cycle_s: float = 0.005) -> List[Arrival]:
    """The full deterministic request schedule for one service run."""
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if num_streams < 1:
        raise ValueError(f"num_streams must be >= 1, got {num_streams}")
    if num_keys < 1:
        raise ValueError(f"num_keys must be >= 1, got {num_keys}")
    gap_rng = random.Random(stream_seed(seed, f"traffic/arrivals/{kind}"))
    stream_rng = random.Random(stream_seed(seed, "traffic/streams"))
    key_rng = random.Random(stream_seed(seed, "traffic/keys"))
    cdf = zipf_cdf(num_keys, zipf_exponent)
    seconds = _arrival_seconds(kind, rate_rps, duration_s, gap_rng,
                               burst_factor, burst_fraction, cycle_s)
    schedule = []
    for index, t in enumerate(seconds):
        schedule.append(Arrival(
            index=index,
            t_ps=int(round(t * _SECOND_PS)),
            stream=stream_rng.randrange(num_streams),
            key_rank=bisect.bisect_left(cdf, key_rng.random()),
        ))
    return schedule

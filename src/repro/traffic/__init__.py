"""Open-loop service traffic over the simulated SAN.

The paper's benchmarks are closed-loop batch jobs; this package serves
them — deterministic arrival generators drive thousands of logical
client streams through an HCA admission queue into the simulated
cluster, and every request's latency lands in mergeable streaming
quantile sketches.  ``repro.serve()`` runs one configuration;
:func:`sweep_offered_load` runs a fixed offered-rate grid, and
:func:`find_knee` locates a configuration's saturation knee and max
sustainable RPS under an SLO in O(log) simulations (the
``ext_service_slo`` experiment).

See docs/traffic.md for the tutorial and docs/api.md for the typed
front-door contract.
"""

from .admission import ADMISSION_POLICIES, CLOSED, AdmissionQueue
from .arrivals import ARRIVAL_KINDS, Arrival, generate_schedule
from .service import (SERVICE_CASES, ServiceResult, ServiceSpec,
                      make_service_spec, serve, service_key)
from .sweep import (GOODPUT_TOLERANCE, KNEE_MODES, KneeSearch,
                    ServiceSweep, find_knee, sweep_offered_load)

__all__ = [
    "ADMISSION_POLICIES",
    "ARRIVAL_KINDS",
    "AdmissionQueue",
    "Arrival",
    "CLOSED",
    "GOODPUT_TOLERANCE",
    "KNEE_MODES",
    "KneeSearch",
    "SERVICE_CASES",
    "ServiceResult",
    "ServiceSpec",
    "ServiceSweep",
    "find_knee",
    "generate_schedule",
    "make_service_spec",
    "serve",
    "service_key",
    "sweep_offered_load",
]

"""``python -m repro.bench`` — time the grid, emit/compare BENCH json.

Exit status is non-zero only when ``--compare`` (or an auto-detected
previous ``BENCH_*.json``) shows a per-app wall-clock regression beyond
``--threshold``; smaller slowdowns print warnings and exit 0, keeping
CI tolerant of runner noise.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..runner.harness import CASE_LABELS
from ..runner.spec import DEFAULT_SCALES, make_spec, paper_grid
from . import (compare, comparison_table, load, make_document, next_bench_id,
               previous_bench_path, quick_grid, run_bench, run_service_bench,
               run_sweep_bench)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Time the standard app grid and emit a BENCH_<n>.json "
                    "perf snapshot.")
    parser.add_argument("--quick", action="store_true",
                        help="reduced scan-heavy smoke grid "
                             "(select,grep,sort,tar at 0.25x scale)")
    parser.add_argument("--apps", default=None,
                        help="comma-separated registered app names "
                             "(overrides the grid choice)")
    parser.add_argument("--cases", default=None,
                        help="comma-separated case labels "
                             f"(default: {','.join(CASE_LABELS)})")
    parser.add_argument("--scale", type=float, default=None,
                        help="extra workload scale factor")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed override for every cell")
    parser.add_argument("--no-services", action="store_true",
                        help="skip the open-loop service/fat-tree cells "
                             "(they always run on grid benches; --apps "
                             "and --cases selections skip them already)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="snapshot path (default: BENCH_<next>.json "
                             "in the current directory)")
    parser.add_argument("--no-out", action="store_true",
                        help="measure and compare without writing a file")
    parser.add_argument("--compare", default=None, metavar="FILE",
                        help="baseline BENCH json (default: the "
                             "highest-numbered BENCH_*.json already in "
                             "the current directory, if any)")
    parser.add_argument("--no-compare", action="store_true",
                        help="skip the baseline comparison entirely")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="per-app wall-clock regression tolerance "
                             "(default: 0.30 = fail beyond +30%%)")
    parser.add_argument("--json", action="store_true",
                        help="print the full document to stdout as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    return parser


def _select_specs(args):
    if args.apps is not None:
        factor = 1.0 if args.scale is None else args.scale
        return tuple(
            make_spec(name.strip(),
                      scale=DEFAULT_SCALES.get(name.strip(), 1.0) * factor)
            for name in args.apps.split(","))
    if args.quick:
        return quick_grid(scale=args.scale)
    return paper_grid(scale=args.scale)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    specs = _select_specs(args)
    cases = (tuple(c.strip() for c in args.cases.split(","))
             if args.cases else CASE_LABELS)

    progress = None if args.quiet else (
        lambda line: print(line, file=sys.stderr))
    services = None
    if not (args.no_services or args.apps or args.cases):
        # The open-loop service + fat-tree fabric cells ride along on
        # every grid bench (full and --quick) so the burst fast path's
        # transport/dispatch throughput is tracked snapshot to snapshot.
        # They run first, before the grid has churned the heap — their
        # walls are small enough for allocator noise to matter.
        services = run_service_bench(progress=progress)
        # The sweep:* cells (adaptive vs exhaustive knee search on the
        # ext_service_slo topologies) ride along under the same rule.
        sweeps = run_sweep_bench(progress=progress)
        services["cells"].update(sweeps["cells"])
        services["apps"].update(sweeps["apps"])
        # The knee searches leave warm template caches (built apps,
        # hop walks) alive; drop them so the grid cells below time
        # against the same heap state as a grid-only run.
        import gc

        from ..cluster.template import clear_templates
        clear_templates()
        gc.collect()
    measurements = run_bench(specs, cases=cases, seed=args.seed,
                             progress=progress)
    if services is not None:
        measurements["cells"].update(services["cells"])
        measurements["apps"].update(services["apps"])
    document = make_document(measurements, bench_id=next_bench_id(),
                             quick=args.quick)

    baseline_path = args.compare
    if baseline_path is None and not args.no_compare:
        # Prefer a same-flavor baseline: quick and full grids run at
        # different workload scales, so cross-flavor wall-clocks only
        # compare on the scale-independent serve:* cells.
        baseline_path = previous_bench_path(quick=args.quick)
    verdict = None
    if baseline_path is not None and not args.no_compare:
        baseline = load(baseline_path)
        verdict = compare(document, baseline, threshold=args.threshold)
        verdict["baseline"] = str(baseline_path)
        document["comparison"] = verdict

    out_path = None
    if not args.no_out:
        out_path = args.out or f"BENCH_{document['bench_id']}.json"
        from . import save
        save(document, out_path)

    if args.json:
        print(json.dumps(document, indent=2))
    else:
        total = sum(cell["wall_s"] for cell in document["cells"].values())
        print(f"bench: {len(document['cells'])} cells, {total:.1f}s "
              f"simulated wall-clock"
              + (f" -> {out_path}" if out_path else ""))
        if verdict is not None:
            print(comparison_table(verdict))

    if verdict is not None and not verdict["ok"]:
        print(f"FAIL: wall-clock regression beyond "
              f"{args.threshold:.0%} vs {verdict['baseline']}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Perf-regression harness: the ``BENCH_*.json`` trajectory.

The simulator's correctness story is covered by the test suite; this
package covers its *speed*.  ``python -m repro.bench`` times the
standard application grid cell by cell — wall-clock seconds, simulation
events per second, and cache accesses per second — and emits a
``BENCH_<n>.json`` snapshot.  Committing one snapshot per perf-relevant
PR builds a trajectory the next optimisation can be measured against::

    python -m repro.bench                       # full grid -> BENCH_<n>.json
    python -m repro.bench --quick               # scan-heavy smoke grid
    python -m repro.bench --compare BENCH_5.json --threshold 0.30

Measurement methodology (same rules for every snapshot, so files stay
comparable):

* a *cell* is one (app, case) pair; its ``wall_s`` covers exactly
  ``StreamApp.run_case`` — workload generation is timed separately as
  the per-app ``prepare_s``, because it is amortised across cases and
  is not part of the simulator hot path;
* ``events_per_s`` is the DES kernel throughput
  (``sim.event_count / wall_s``);
* ``cache_accesses_per_s`` is the memory-model throughput: the sum of
  every ``mem.*.{l1d,l1i,l2}.accesses`` counter from the system's
  :class:`~repro.obs.MetricsRegistry` divided by ``wall_s`` — the same
  names traces and experiments read, so bench numbers and observability
  share one vocabulary;
* cells run serially, in process, uncached (a cache hit measures
  nothing).

Comparison is tolerant by design: CI runners are noisy, so
:func:`compare` *fails* only past a configurable regression threshold
(default 30%) on per-app wall-clock, and merely *warns* on smaller
slowdowns or per-cell noise.
"""

from __future__ import annotations

import json
import os
import re
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..metrics.report import render_table
from ..runner.harness import CASE_LABELS, Cell, cell_config
from ..runner.spec import DEFAULT_SCALES, AppSpec, make_spec, paper_grid

#: Cache levels whose ``accesses`` counters make up the throughput rate.
CACHE_LEVELS = ("l1d", "l1i", "l2")

#: The scan-heavy apps the ``--quick`` smoke grid exercises (the cells
#: the memory-hierarchy fast path matters most for).
QUICK_APPS = ("select", "grep", "sort", "tar")

#: Extra workload scale factor applied by ``--quick``.
QUICK_SCALE = 0.25

#: The trajectory starts at PR 5 (the hot-path overhaul); earlier PRs
#: predate the harness.
FIRST_BENCH_ID = 5

#: Best-of-N repeats for the service cells.  The simulation is
#: deterministic — repeats measure the same run — so the minimum is the
#: least-noisy wall-clock estimate, and the cells are small enough that
#: five runs stay cheap.  (The grid cells don't repeat: their walls are
#: an order of magnitude larger, so runner noise matters less.)
SERVICE_REPEATS = 5

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def quick_grid(scale: Optional[float] = None) -> Tuple[AppSpec, ...]:
    """The reduced scan-heavy grid behind ``--quick``."""
    factor = QUICK_SCALE if scale is None else scale
    return tuple(
        make_spec(name, scale=DEFAULT_SCALES.get(name, 1.0) * factor)
        for name in QUICK_APPS)


def _cell_metrics(sink: Dict[str, float]) -> Tuple[Optional[int], Dict[str, int]]:
    """(event count, per-level cache access counts) from a snapshot."""
    events = sink.get("sim.event_count")
    by_level: Dict[str, int] = {}
    for name, value in sink.items():
        parts = name.split(".")
        if (parts[0] == "mem" and parts[-1] == "accesses"
                and parts[-2] in CACHE_LEVELS):
            by_level[parts[-2]] = by_level.get(parts[-2], 0) + int(value)
    return (int(events) if events is not None else None), by_level


def _rate(count: Optional[int], wall_s: float) -> Optional[float]:
    if count is None or wall_s <= 0:
        return None
    return count / wall_s


def _takes_metrics_sink(app) -> bool:
    import inspect

    try:
        return "metrics_sink" in inspect.signature(app.run_case).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False


def run_bench(specs: Sequence[AppSpec],
              cases: Sequence[str] = CASE_LABELS,
              seed: Optional[int] = None,
              progress=None) -> dict:
    """Time every (spec, case) cell; returns the snapshot document body.

    ``progress`` is an optional callable receiving one human-readable
    line per finished cell.
    """
    cells: Dict[str, dict] = {}
    apps: Dict[str, dict] = {}
    for spec in specs:
        t0 = time.perf_counter()
        app = spec.build()
        prepare_s = time.perf_counter() - t0
        app_wall = 0.0
        app_events = 0
        app_accesses = 0
        counters_seen = False
        for case in cases:
            config = cell_config(Cell(spec=spec, case=case, seed=seed), app)
            sink: Dict[str, float] = {}
            t0 = time.perf_counter()
            if _takes_metrics_sink(app):
                result = app.run_case(config, metrics_sink=sink)
            else:
                # Older run_case without the metrics hook (used when this
                # harness measures a pre-hook checkout as a baseline).
                result = app.run_case(config)
            wall_s = time.perf_counter() - t0
            events, by_level = _cell_metrics(sink)
            accesses = sum(by_level.values()) if by_level else None
            key = f"{spec.label}/{case}"
            cells[key] = {
                "wall_s": round(wall_s, 6),
                "exec_ps": result.exec_ps,
                "events": events,
                "events_per_s": _rate(events, wall_s),
                "cache_accesses": accesses,
                "cache_accesses_by_level": by_level or None,
                "cache_accesses_per_s": _rate(accesses, wall_s),
            }
            app_wall += wall_s
            if events is not None:
                app_events += events
                counters_seen = True
            if accesses is not None:
                app_accesses += accesses
            if progress is not None:
                rate = cells[key]["cache_accesses_per_s"]
                progress(f"{key}: {wall_s:.2f}s"
                         + (f", {rate / 1e6:.2f} M cache accesses/s"
                            if rate else ""))
        apps[spec.label] = {
            "prepare_s": round(prepare_s, 6),
            "wall_s": round(app_wall, 6),
            "events_per_s": _rate(app_events if counters_seen else None,
                                  app_wall),
            "cache_accesses_per_s": _rate(
                app_accesses if counters_seen else None, app_wall),
        }
    return {"cells": cells, "apps": apps}


# ----------------------------------------------------------------------
# Open-loop service / fabric cells (burst fast path)
# ----------------------------------------------------------------------
def service_grid():
    """The open-loop traffic cells the bench times (PR 9 onward).

    One single-switch serving cell plus two fat-tree fabric cells —
    the configurations the burst engine (docs/scaling.md) exists for:
    event-dominated request pipelines at rates the per-block path
    cannot sustain.  Active-case and just under saturation (~3000 rps
    against a ~3800 rps ceiling) so every request exercises the whole
    post/storage/handler/downlink pipeline and the cells measure
    transport/dispatch throughput, not the memory hierarchy (the
    standard grid already covers that) and not drop processing; one
    simulated second keeps the wall-clock large enough to time stably.
    """
    from ..traffic.service import ServiceSpec

    return (
        ServiceSpec(app="grep", case="active", topology="single",
                    rate_rps=3000.0, duration_s=1.0),
        ServiceSpec(app="grep", case="active", topology="fat_tree",
                    hosts=16, rate_rps=3000.0, duration_s=1.0),
        ServiceSpec(app="grep", case="active", topology="fat_tree",
                    hosts=64, rate_rps=3000.0, duration_s=1.0),
    )


def service_cell_key(spec) -> str:
    """Snapshot key of one service cell.

    The spec label omits the fabric size, and two fat-tree cells at
    different host counts must not share a key.
    """
    key = f"serve:{spec.label}"
    if spec.topology != "single":
        key += f" hosts={spec.hosts}"
    return key


def run_service_bench(specs=None, progress=None,
                      repeats: int = SERVICE_REPEATS) -> dict:
    """Time the service cells on both simulator paths.

    Mirrors :func:`run_bench`'s methodology: the app/workload build is
    the separately-timed ``prepare_s``; ``wall_s`` covers exactly one
    ``_simulate`` call on the (default) burst path.  Each cell also
    runs the per-block reference path — the pre-burst simulator these
    cells were infeasible on — records it as ``perblock_wall_s`` /
    ``speedup_vs_perblock``, and *verifies the two paths' results are
    identical* before reporting, so every committed snapshot re-proves
    the equivalence it is advertising.
    """
    from ..traffic.service import _simulate, build_service_app

    if specs is None:
        specs = service_grid()
    cells: Dict[str, dict] = {}
    apps: Dict[str, dict] = {}
    saved = {name: os.environ.pop(name, None)
             for name in ("REPRO_SIM_PERBLOCK", "REPRO_SIM_FLUID")}

    def timed(spec, prebuilt, perblock):
        if perblock:
            os.environ["REPRO_SIM_PERBLOCK"] = "1"
        else:
            os.environ.pop("REPRO_SIM_PERBLOCK", None)
        import gc

        best, result = None, None
        for _ in range(max(repeats, 1)):
            gc.collect()  # don't bill one rep for another's garbage
            t0 = time.perf_counter()
            result = _simulate(spec, prebuilt=prebuilt)
            wall = time.perf_counter() - t0
            best = wall if best is None else min(best, wall)
        return best, result

    try:
        for spec in specs:
            key = service_cell_key(spec)
            t0 = time.perf_counter()
            prebuilt = build_service_app(spec)
            prepare_s = time.perf_counter() - t0
            wall_s, result = timed(spec, prebuilt, perblock=False)
            perblock_s, reference = timed(spec, prebuilt, perblock=True)
            if result != reference:  # pragma: no cover - equivalence bug
                raise RuntimeError(
                    f"{key}: burst and per-block paths disagree")
            cells[key] = {
                "wall_s": round(wall_s, 6),
                "perblock_wall_s": round(perblock_s, 6),
                "speedup_vs_perblock": round(perblock_s / wall_s, 4),
                "requests_completed": result.completed,
                "requests_dropped": result.dropped,
                "p99_latency_us": result.latency_us.get("p99"),
            }
            apps[key] = {
                "prepare_s": round(prepare_s, 6),
                "wall_s": round(wall_s, 6),
            }
            if progress is not None:
                progress(f"{key}: {wall_s:.2f}s burst, {perblock_s:.2f}s "
                         f"per-block ({perblock_s / wall_s:.1f}x)")
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    return {"cells": cells, "apps": apps}


# ----------------------------------------------------------------------
# Sweep cells: adaptive knee search vs the fixed grid (PR 10 onward)
# ----------------------------------------------------------------------
def sweep_grid():
    """The knee-search cells the bench times.

    The active-case specs of the ``ext_service_slo`` experiment — one
    per topology — probed over that experiment's 16-point rate grid.
    Short durations keep a 16-sim exhaustive grid affordable inside a
    bench run while the knee still lands mid-grid, so the bisection
    does real work rather than falling off either end.
    """
    from ..experiments.service_slo import RATES, TOPOLOGIES, _base_spec

    return tuple((_base_spec("active", topology, hosts), RATES)
                 for topology, hosts in TOPOLOGIES)


def sweep_cell_key(spec) -> str:
    key = f"sweep:{spec.label}"
    if spec.topology != "single":
        key += f" hosts={spec.hosts}"
    return key


def run_sweep_bench(cells_in=None, progress=None) -> dict:
    """Time the adaptive knee search against the exhaustive grid.

    Methodology matches :func:`run_service_bench`: warming the template
    caches (built app, system template, fabric hop walk) is the
    separately-timed ``prepare_s``; ``wall_s`` covers exactly one
    adaptive :func:`~repro.traffic.find_knee` call, ``grid_wall_s`` one
    exhaustive ``mode="grid"`` call over the same rates.  No result
    cache — a cache hit measures nothing.  Every cell *verifies both
    modes return the same knee* before reporting, so each committed
    snapshot re-proves the equivalence the speedup rests on, and
    records the simulation counts behind it (``sims`` vs
    ``grid_sims``).
    """
    from ..traffic.sweep import find_knee

    if cells_in is None:
        cells_in = sweep_grid()
    cells: Dict[str, dict] = {}
    apps: Dict[str, dict] = {}
    for spec, rates in cells_in:
        key = sweep_cell_key(spec)
        t0 = time.perf_counter()
        # One throwaway probe warms every per-process template cache
        # (built app, system template, hop walk) so neither timed mode
        # is billed for one-time construction the other then reuses.
        find_knee(spec, [rates[0]], mode="grid")
        prepare_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        adaptive = find_knee(spec, rates, mode="adaptive")
        wall_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        grid = find_knee(spec, rates, mode="grid")
        grid_wall_s = time.perf_counter() - t0
        counters = ("sims", "evaluations")
        if ({k: v for k, v in adaptive.knee().items() if k not in counters}
                != {k: v for k, v in grid.knee().items() if k not in counters}):
            raise RuntimeError(  # pragma: no cover - equivalence bug
                f"{key}: adaptive and grid knees disagree")
        cells[key] = {
            "wall_s": round(wall_s, 6),
            "grid_wall_s": round(grid_wall_s, 6),
            "speedup_vs_grid": round(grid_wall_s / wall_s, 4),
            "sims": adaptive.sims,
            "grid_sims": grid.sims,
            "knee_rps": adaptive.knee_rps,
            "max_sustainable_rps":
                adaptive.best.rate_rps if adaptive.best else None,
        }
        apps[key] = {
            "prepare_s": round(prepare_s, 6),
            "wall_s": round(wall_s, 6),
        }
        if progress is not None:
            progress(f"{key}: {wall_s:.2f}s adaptive ({adaptive.sims} sims), "
                     f"{grid_wall_s:.2f}s grid ({grid.sims} sims, "
                     f"{grid_wall_s / wall_s:.1f}x)")
    return {"cells": cells, "apps": apps}


# ----------------------------------------------------------------------
# Snapshot files
# ----------------------------------------------------------------------
def make_document(measurements: dict, *, bench_id: int,
                  quick: bool) -> dict:
    """Wrap raw measurements in the committed-snapshot envelope."""
    from ..runner.fingerprint import code_version

    return {
        "schema": "repro-bench/1",
        "bench_id": bench_id,
        "quick": quick,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "code_version": code_version(),
        **measurements,
    }


def save(document: dict, path) -> str:
    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def load(path) -> dict:
    with open(os.fspath(path), encoding="utf-8") as fh:
        document = json.load(fh)
    if "cells" not in document or "apps" not in document:
        raise ValueError(f"{path}: not a repro-bench snapshot")
    return document


def existing_bench_ids(directory=".") -> List[int]:
    """Sorted ids of the ``BENCH_<n>.json`` files in ``directory``."""
    ids = []
    for name in os.listdir(os.fspath(directory)):
        match = _BENCH_RE.match(name)
        if match:
            ids.append(int(match.group(1)))
    return sorted(ids)


def next_bench_id(directory=".") -> int:
    ids = existing_bench_ids(directory)
    return max(ids) + 1 if ids else FIRST_BENCH_ID


def previous_bench_path(directory=".", quick: Optional[bool] = None) -> Optional[str]:
    """The highest-numbered committed snapshot, if any.

    With ``quick`` given, prefers the newest snapshot of that flavor —
    a quick run is 0.25x-scale, so its grid cells are not wall-clock
    comparable with a full run's (see :func:`compare`).  Falls back to
    the newest snapshot of either flavor when none match.
    """
    ids = existing_bench_ids(directory)
    if not ids:
        return None
    directory = os.fspath(directory)
    paths = [os.path.join(directory, f"BENCH_{i}.json") for i in ids]
    if quick is not None:
        for path in reversed(paths):
            try:
                if bool(load(path).get("quick")) == quick:
                    return path
            except (ValueError, OSError):  # pragma: no cover - bad file
                continue
    return paths[-1]


# ----------------------------------------------------------------------
# Regression comparison
# ----------------------------------------------------------------------
def compare(current: dict, baseline: dict,
            threshold: float = 0.30) -> dict:
    """Per-app and per-cell wall-clock comparison against a baseline.

    Returns a verdict dict: ``speedup`` > 1 means the current snapshot
    is faster.  ``regressions`` lists apps slower than ``1 + threshold``
    times the baseline — the only condition that makes ``ok`` false;
    ``warnings`` lists smaller per-app slowdowns and per-cell noise.
    Only keys present in both snapshots are compared, so a quick run
    checks cleanly against a quick baseline.

    Quick and full snapshots run the grid at different workload scales,
    so their grid walls are not comparable even where labels match;
    when the two flavors differ only the scale-independent open-loop
    ``serve:*`` / ``sweep:*`` cells (fixed specs on every flavor) are
    compared, and a warning records the restriction.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    apps: Dict[str, dict] = {}
    regressions: List[str] = []
    warnings: List[str] = []
    comparable = lambda label: True
    if bool(current.get("quick")) != bool(baseline.get("quick")):
        comparable = lambda label: label.startswith(("serve:", "sweep:"))
        warnings.append(
            "flavor mismatch (quick vs full): grid cells run at "
            "different workload scales, comparing only serve:* and "
            "sweep:* cells")
    for label in sorted(label for label
                        in set(current["apps"]) & set(baseline["apps"])
                        if comparable(label)):
        base_s = baseline["apps"][label]["wall_s"]
        cur_s = current["apps"][label]["wall_s"]
        speedup = base_s / cur_s if cur_s else float("inf")
        apps[label] = {
            "wall_s": cur_s, "baseline_wall_s": base_s,
            "speedup": round(speedup, 4),
        }
        if cur_s > base_s * (1 + threshold):
            regressions.append(
                f"{label}: {cur_s:.2f}s vs baseline {base_s:.2f}s "
                f"({cur_s / base_s:.2f}x slower)")
        elif cur_s > base_s:
            warnings.append(
                f"{label}: {cur_s:.2f}s vs baseline {base_s:.2f}s "
                f"(within the {threshold:.0%} noise tolerance)")
    cell_speedups: Dict[str, float] = {}
    for key in sorted(k for k in set(current["cells"]) & set(baseline["cells"])
                      if comparable(k)):
        base_s = baseline["cells"][key]["wall_s"]
        cur_s = current["cells"][key]["wall_s"]
        if cur_s:
            cell_speedups[key] = round(base_s / cur_s, 4)
    return {
        "threshold": threshold,
        "apps": apps,
        "cells": cell_speedups,
        "regressions": regressions,
        "warnings": warnings,
        "ok": not regressions,
    }


def comparison_table(verdict: dict) -> str:
    """Human-readable rendering of a :func:`compare` verdict."""
    rows = [[label, f"{entry['baseline_wall_s']:.2f}",
             f"{entry['wall_s']:.2f}", f"{entry['speedup']:.2f}x"]
            for label, entry in verdict["apps"].items()]
    table = render_table(["app", "baseline (s)", "current (s)", "speedup"],
                         rows)
    lines = ["bench comparison (wall-clock per app)", table]
    for warning in verdict["warnings"]:
        lines.append(f"warn: {warning}")
    for regression in verdict["regressions"]:
        lines.append(f"FAIL: {regression}")
    return "\n".join(lines)


__all__ = [
    "CACHE_LEVELS", "QUICK_APPS", "QUICK_SCALE", "SERVICE_REPEATS",
    "compare", "comparison_table", "existing_bench_ids", "load",
    "make_document", "next_bench_id", "previous_bench_path",
    "quick_grid", "run_bench", "run_service_bench", "run_sweep_bench",
    "save", "service_cell_key", "service_grid", "sweep_cell_key",
    "sweep_grid",
]

"""Perf-regression harness: the ``BENCH_*.json`` trajectory.

The simulator's correctness story is covered by the test suite; this
package covers its *speed*.  ``python -m repro.bench`` times the
standard application grid cell by cell — wall-clock seconds, simulation
events per second, and cache accesses per second — and emits a
``BENCH_<n>.json`` snapshot.  Committing one snapshot per perf-relevant
PR builds a trajectory the next optimisation can be measured against::

    python -m repro.bench                       # full grid -> BENCH_<n>.json
    python -m repro.bench --quick               # scan-heavy smoke grid
    python -m repro.bench --compare BENCH_5.json --threshold 0.30

Measurement methodology (same rules for every snapshot, so files stay
comparable):

* a *cell* is one (app, case) pair; its ``wall_s`` covers exactly
  ``StreamApp.run_case`` — workload generation is timed separately as
  the per-app ``prepare_s``, because it is amortised across cases and
  is not part of the simulator hot path;
* ``events_per_s`` is the DES kernel throughput
  (``sim.event_count / wall_s``);
* ``cache_accesses_per_s`` is the memory-model throughput: the sum of
  every ``mem.*.{l1d,l1i,l2}.accesses`` counter from the system's
  :class:`~repro.obs.MetricsRegistry` divided by ``wall_s`` — the same
  names traces and experiments read, so bench numbers and observability
  share one vocabulary;
* cells run serially, in process, uncached (a cache hit measures
  nothing).

Comparison is tolerant by design: CI runners are noisy, so
:func:`compare` *fails* only past a configurable regression threshold
(default 30%) on per-app wall-clock, and merely *warns* on smaller
slowdowns or per-cell noise.
"""

from __future__ import annotations

import json
import os
import re
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..metrics.report import render_table
from ..runner.harness import CASE_LABELS, Cell, cell_config
from ..runner.spec import DEFAULT_SCALES, AppSpec, make_spec, paper_grid

#: Cache levels whose ``accesses`` counters make up the throughput rate.
CACHE_LEVELS = ("l1d", "l1i", "l2")

#: The scan-heavy apps the ``--quick`` smoke grid exercises (the cells
#: the memory-hierarchy fast path matters most for).
QUICK_APPS = ("select", "grep", "sort", "tar")

#: Extra workload scale factor applied by ``--quick``.
QUICK_SCALE = 0.25

#: The trajectory starts at PR 5 (the hot-path overhaul); earlier PRs
#: predate the harness.
FIRST_BENCH_ID = 5

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def quick_grid(scale: Optional[float] = None) -> Tuple[AppSpec, ...]:
    """The reduced scan-heavy grid behind ``--quick``."""
    factor = QUICK_SCALE if scale is None else scale
    return tuple(
        make_spec(name, scale=DEFAULT_SCALES.get(name, 1.0) * factor)
        for name in QUICK_APPS)


def _cell_metrics(sink: Dict[str, float]) -> Tuple[Optional[int], Dict[str, int]]:
    """(event count, per-level cache access counts) from a snapshot."""
    events = sink.get("sim.event_count")
    by_level: Dict[str, int] = {}
    for name, value in sink.items():
        parts = name.split(".")
        if (parts[0] == "mem" and parts[-1] == "accesses"
                and parts[-2] in CACHE_LEVELS):
            by_level[parts[-2]] = by_level.get(parts[-2], 0) + int(value)
    return (int(events) if events is not None else None), by_level


def _rate(count: Optional[int], wall_s: float) -> Optional[float]:
    if count is None or wall_s <= 0:
        return None
    return count / wall_s


def _takes_metrics_sink(app) -> bool:
    import inspect

    try:
        return "metrics_sink" in inspect.signature(app.run_case).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False


def run_bench(specs: Sequence[AppSpec],
              cases: Sequence[str] = CASE_LABELS,
              seed: Optional[int] = None,
              progress=None) -> dict:
    """Time every (spec, case) cell; returns the snapshot document body.

    ``progress`` is an optional callable receiving one human-readable
    line per finished cell.
    """
    cells: Dict[str, dict] = {}
    apps: Dict[str, dict] = {}
    for spec in specs:
        t0 = time.perf_counter()
        app = spec.build()
        prepare_s = time.perf_counter() - t0
        app_wall = 0.0
        app_events = 0
        app_accesses = 0
        counters_seen = False
        for case in cases:
            config = cell_config(Cell(spec=spec, case=case, seed=seed), app)
            sink: Dict[str, float] = {}
            t0 = time.perf_counter()
            if _takes_metrics_sink(app):
                result = app.run_case(config, metrics_sink=sink)
            else:
                # Older run_case without the metrics hook (used when this
                # harness measures a pre-hook checkout as a baseline).
                result = app.run_case(config)
            wall_s = time.perf_counter() - t0
            events, by_level = _cell_metrics(sink)
            accesses = sum(by_level.values()) if by_level else None
            key = f"{spec.label}/{case}"
            cells[key] = {
                "wall_s": round(wall_s, 6),
                "exec_ps": result.exec_ps,
                "events": events,
                "events_per_s": _rate(events, wall_s),
                "cache_accesses": accesses,
                "cache_accesses_by_level": by_level or None,
                "cache_accesses_per_s": _rate(accesses, wall_s),
            }
            app_wall += wall_s
            if events is not None:
                app_events += events
                counters_seen = True
            if accesses is not None:
                app_accesses += accesses
            if progress is not None:
                rate = cells[key]["cache_accesses_per_s"]
                progress(f"{key}: {wall_s:.2f}s"
                         + (f", {rate / 1e6:.2f} M cache accesses/s"
                            if rate else ""))
        apps[spec.label] = {
            "prepare_s": round(prepare_s, 6),
            "wall_s": round(app_wall, 6),
            "events_per_s": _rate(app_events if counters_seen else None,
                                  app_wall),
            "cache_accesses_per_s": _rate(
                app_accesses if counters_seen else None, app_wall),
        }
    return {"cells": cells, "apps": apps}


# ----------------------------------------------------------------------
# Snapshot files
# ----------------------------------------------------------------------
def make_document(measurements: dict, *, bench_id: int,
                  quick: bool) -> dict:
    """Wrap raw measurements in the committed-snapshot envelope."""
    from ..runner.fingerprint import code_version

    return {
        "schema": "repro-bench/1",
        "bench_id": bench_id,
        "quick": quick,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "code_version": code_version(),
        **measurements,
    }


def save(document: dict, path) -> str:
    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def load(path) -> dict:
    with open(os.fspath(path), encoding="utf-8") as fh:
        document = json.load(fh)
    if "cells" not in document or "apps" not in document:
        raise ValueError(f"{path}: not a repro-bench snapshot")
    return document


def existing_bench_ids(directory=".") -> List[int]:
    """Sorted ids of the ``BENCH_<n>.json`` files in ``directory``."""
    ids = []
    for name in os.listdir(os.fspath(directory)):
        match = _BENCH_RE.match(name)
        if match:
            ids.append(int(match.group(1)))
    return sorted(ids)


def next_bench_id(directory=".") -> int:
    ids = existing_bench_ids(directory)
    return max(ids) + 1 if ids else FIRST_BENCH_ID


def previous_bench_path(directory=".") -> Optional[str]:
    """The highest-numbered committed snapshot, if any."""
    ids = existing_bench_ids(directory)
    if not ids:
        return None
    return os.path.join(os.fspath(directory), f"BENCH_{ids[-1]}.json")


# ----------------------------------------------------------------------
# Regression comparison
# ----------------------------------------------------------------------
def compare(current: dict, baseline: dict,
            threshold: float = 0.30) -> dict:
    """Per-app and per-cell wall-clock comparison against a baseline.

    Returns a verdict dict: ``speedup`` > 1 means the current snapshot
    is faster.  ``regressions`` lists apps slower than ``1 + threshold``
    times the baseline — the only condition that makes ``ok`` false;
    ``warnings`` lists smaller per-app slowdowns and per-cell noise.
    Only keys present in both snapshots are compared, so a quick run
    checks cleanly against a quick baseline.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    apps: Dict[str, dict] = {}
    regressions: List[str] = []
    warnings: List[str] = []
    for label in sorted(set(current["apps"]) & set(baseline["apps"])):
        base_s = baseline["apps"][label]["wall_s"]
        cur_s = current["apps"][label]["wall_s"]
        speedup = base_s / cur_s if cur_s else float("inf")
        apps[label] = {
            "wall_s": cur_s, "baseline_wall_s": base_s,
            "speedup": round(speedup, 4),
        }
        if cur_s > base_s * (1 + threshold):
            regressions.append(
                f"{label}: {cur_s:.2f}s vs baseline {base_s:.2f}s "
                f"({cur_s / base_s:.2f}x slower)")
        elif cur_s > base_s:
            warnings.append(
                f"{label}: {cur_s:.2f}s vs baseline {base_s:.2f}s "
                f"(within the {threshold:.0%} noise tolerance)")
    cell_speedups: Dict[str, float] = {}
    for key in sorted(set(current["cells"]) & set(baseline["cells"])):
        base_s = baseline["cells"][key]["wall_s"]
        cur_s = current["cells"][key]["wall_s"]
        if cur_s:
            cell_speedups[key] = round(base_s / cur_s, 4)
    return {
        "threshold": threshold,
        "apps": apps,
        "cells": cell_speedups,
        "regressions": regressions,
        "warnings": warnings,
        "ok": not regressions,
    }


def comparison_table(verdict: dict) -> str:
    """Human-readable rendering of a :func:`compare` verdict."""
    rows = [[label, f"{entry['baseline_wall_s']:.2f}",
             f"{entry['wall_s']:.2f}", f"{entry['speedup']:.2f}x"]
            for label, entry in verdict["apps"].items()]
    table = render_table(["app", "baseline (s)", "current (s)", "speedup"],
                         rows)
    lines = ["bench comparison (wall-clock per app)", table]
    for warning in verdict["warnings"]:
        lines.append(f"warn: {warning}")
    for regression in verdict["regressions"]:
        lines.append(f"FAIL: {regression}")
    return "\n".join(lines)


__all__ = [
    "CACHE_LEVELS", "QUICK_APPS", "QUICK_SCALE",
    "compare", "comparison_table", "existing_bench_ids", "load",
    "make_document", "next_bench_id", "previous_bench_path",
    "quick_grid", "run_bench", "save",
]

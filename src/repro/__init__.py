"""repro — reproduction of "Active I/O Switches in System Area Networks"
(Hao & Heinrich, HPCA 2003).

A discrete-event simulation of SAN clusters built around *active
switches*: conventional cut-through switches augmented with embedded
processors, on-chip data buffers with valid-bit streaming, an address
translation buffer, and a message-driven handler dispatch unit.

Layers (each usable on its own):

* :mod:`repro.sim` — generator-based discrete-event kernel;
* :mod:`repro.mem`, :mod:`repro.cpu` — caches/TLBs/RDRAM and the host
  and switch processor models;
* :mod:`repro.net`, :mod:`repro.switch`, :mod:`repro.io` — the SAN
  fabric, the (active) switch, and the storage subsystem;
* :mod:`repro.cluster` — system assembly and the bulk I/O pipeline;
* :mod:`repro.apps` — the paper's nine benchmarks;
* :mod:`repro.runner` — parallel experiment harness with deterministic
  result caching (``python -m repro.runner``);
* :mod:`repro.obs` — observability: structured tracing with Chrome
  ``trace_event``/CSV/terminal exporters and the metrics registry
  (``repro.run(..., trace=True)``);
* :mod:`repro.experiments` — every table/figure, runnable
  (``python -m repro.experiments [--parallel N]``).

Quickstart::

    import repro

    result = repro.run("grep", scale=0.25)
    print(result.report().performance())

    # Open-loop service traffic: how much load does a config sustain?
    spec = repro.ServiceSpec(app="grep", case="active",
                             rate_rps=4000, slo_ms=1.0)
    print(repro.serve(spec).report().latency())

``repro.run`` accepts any registered benchmark name, a ``StreamApp``
subclass, or (for the old API) a factory callable; the canonical typed
form bundles every knob in a frozen :class:`RunOptions`
(``repro.run("grep", repro.RunOptions(parallel=4, cache=True))``) —
see docs/api.md.  ``repro.serve`` is the open-loop analogue, driven by
a frozen :class:`ServiceSpec`.
"""

from .cluster import (
    CASE_ORDER,
    ClusterConfig,
    PRESETS,
    ReadStream,
    System,
    case_configs,
    four_cases,
    get_preset,
)
from .faults import (
    DiskFaults,
    FailStopEvent,
    FailStopFaults,
    FaultInjector,
    FaultPlan,
    HandlerFaults,
    LinkFaults,
    ScsiFaults,
)
from .metrics import (
    BenchmarkResult,
    CaseResult,
    QuantileEstimator,
    Report,
    breakdown_table,
    latency_table,
    performance_table,
    reliability_table,
)
from .obs import (
    MetricsRegistry,
    TraceCollector,
    TraceEvent,
    load_chrome_trace,
    write_chrome_trace,
)
from .runner import (
    AppSpec,
    ExperimentRunner,
    ResultCache,
    RunOptions,
    RunResult,
    configure,
    make_spec,
    paper_grid,
    register_app,
    run,
    run_many,
)
from .sim import Environment, Tracer
from .switch import ActiveSwitch, ActiveSwitchConfig, BaseSwitch
from .traffic import (
    KneeSearch,
    ServiceResult,
    ServiceSpec,
    ServiceSweep,
    find_knee,
    make_service_spec,
    serve,
    sweep_offered_load,
)

__version__ = "1.7.0"

#: Authoritative public surface: `import *`, the docs' API reference,
#: and tests/test_public_api.py all derive from this list.
__all__ = [
    # Unified front door
    "run",
    "run_many",
    "configure",
    "RunOptions",
    "RunResult",
    # Open-loop service traffic
    "serve",
    "ServiceSpec",
    "ServiceResult",
    "ServiceSweep",
    "KneeSearch",
    "find_knee",
    "make_service_spec",
    "sweep_offered_load",
    # Harness building blocks
    "AppSpec",
    "ExperimentRunner",
    "ResultCache",
    "make_spec",
    "paper_grid",
    "register_app",
    # Cluster configuration
    "CASE_ORDER",
    "ClusterConfig",
    "PRESETS",
    "get_preset",
    "case_configs",
    "ReadStream",
    "System",
    # Fault injection
    "DiskFaults",
    "FailStopEvent",
    "FailStopFaults",
    "FaultInjector",
    "FaultPlan",
    "HandlerFaults",
    "LinkFaults",
    "ScsiFaults",
    # Results and reporting
    "BenchmarkResult",
    "CaseResult",
    "QuantileEstimator",
    "Report",
    "breakdown_table",
    "latency_table",
    "performance_table",
    "reliability_table",
    # Observability
    "MetricsRegistry",
    "TraceCollector",
    "TraceEvent",
    "load_chrome_trace",
    "write_chrome_trace",
    # Simulation kernel
    "Environment",
    "Tracer",  # deprecated: superseded by repro.obs (see docs/observability.md)
    # Switch models
    "ActiveSwitch",
    "ActiveSwitchConfig",
    "BaseSwitch",
    # Deprecated (warn-and-forward shims)
    "four_cases",
    "__version__",
]

"""repro — reproduction of "Active I/O Switches in System Area Networks"
(Hao & Heinrich, HPCA 2003).

A discrete-event simulation of SAN clusters built around *active
switches*: conventional cut-through switches augmented with embedded
processors, on-chip data buffers with valid-bit streaming, an address
translation buffer, and a message-driven handler dispatch unit.

Layers (each usable on its own):

* :mod:`repro.sim` — generator-based discrete-event kernel;
* :mod:`repro.mem`, :mod:`repro.cpu` — caches/TLBs/RDRAM and the host
  and switch processor models;
* :mod:`repro.net`, :mod:`repro.switch`, :mod:`repro.io` — the SAN
  fabric, the (active) switch, and the storage subsystem;
* :mod:`repro.cluster` — system assembly and the bulk I/O pipeline;
* :mod:`repro.apps` — the paper's nine benchmarks;
* :mod:`repro.experiments` — every table/figure, runnable
  (``python -m repro.experiments``).

Quickstart::

    from repro import ClusterConfig, System
    from repro.apps import GrepApp, run_four_cases
    from repro.metrics import performance_table

    result = run_four_cases(lambda: GrepApp(scale=0.25))
    print(performance_table(result))
"""

from .cluster import ClusterConfig, ReadStream, System, four_cases
from .faults import (
    DiskFaults,
    FaultInjector,
    FaultPlan,
    HandlerFaults,
    LinkFaults,
    ScsiFaults,
)
from .metrics import (
    BenchmarkResult,
    CaseResult,
    breakdown_table,
    performance_table,
    reliability_table,
)
from .sim import Environment
from .switch import ActiveSwitch, ActiveSwitchConfig, BaseSwitch

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "ReadStream",
    "System",
    "four_cases",
    "DiskFaults",
    "FaultInjector",
    "FaultPlan",
    "HandlerFaults",
    "LinkFaults",
    "ScsiFaults",
    "BenchmarkResult",
    "CaseResult",
    "breakdown_table",
    "performance_table",
    "reliability_table",
    "Environment",
    "ActiveSwitch",
    "ActiveSwitchConfig",
    "BaseSwitch",
    "__version__",
]

"""Scale-out aggregation: single switch vs hierarchical placement.

The paper evaluates one active switch; Section 6 argues the design
scales by "organizing the switches logically in a tree" with each leaf
combining its local vectors.  This experiment quantifies that claim on
multi-stage fabrics from 64 to 1024 hosts, comparing three systems at
each size:

* **host_only** — the software MST (binomial) reduction over the same
  fabric: the baseline an unmodified cluster achieves;
* **root_only** — active switches, but one finalize handler at the
  fabric root folds all ``p`` vectors (the single-switch design
  stretched across a fabric; the root serializes everything);
* **per_level** — the paper's hierarchical scheme: leaves fold their
  hosts, every internal level folds its children, the root finalizes.

Expected shape: host_only grows with ``log2(p)`` software rounds at
~28 us each; root_only eliminates the software alpha but its root
serializes ``p`` handler invocations (linear); per_level keeps the
per-switch work bounded by the radix, so latency grows only with tree
depth — the gap over root_only widens with scale.
"""

from __future__ import annotations

from typing import Dict, List

from ..apps.reduction import REDUCTION_HCA, _make_vectors, _oracle
from ..cluster.fabric import TopologySpec, build_fabric
from ..cluster.placement import run_placed_reduction
from ..cluster.template import placement_plan
from ..apps.reduction import run_normal_reduction
from ..sim.core import Environment
from .registry import Experiment, register

#: Host counts swept (64 .. 1024; scale trims the top end).
HOST_COUNTS = (64, 128, 256, 512, 1024)


def _one_point(num_hosts: int, system: str, kind: str = "tree") -> Dict:
    env = Environment()
    spec = TopologySpec(kind=kind, num_hosts=num_hosts)
    fabric = build_fabric(env, spec, hca_config=REDUCTION_HCA)
    fabric.validate()
    vectors = _make_vectors(num_hosts)
    if system == "host_only":
        outcome = run_normal_reduction(fabric, vectors, "reduce-to-one")
        result, latency_ps = outcome.result_vector, outcome.latency_ps
    else:
        # Plans are pure topology data; the template cache shares one
        # per (spec, policy) across the sweep's fabric instances.
        plan = placement_plan(fabric, system)
        done = run_placed_reduction(fabric, plan, vectors)
        result, latency_ps = done["result"], done["latency_ps"]
    if list(result) != _oracle(vectors):
        raise AssertionError(
            f"scale_fabric {system} p={num_hosts}: wrong reduction result")
    return {"system": system, "hosts": num_hosts, "depth": fabric.depth,
            "latency_us": latency_ps / 1e6}


def fabric_scale_sweep(scale: float = 1.0) -> List[Dict]:
    """Latency rows for every (hosts, system) point of the sweep.

    ``scale`` trims the host-count range: 1.0 sweeps to 1024 hosts,
    0.25 to 256, etc. — the shape is visible from 256 up.
    """
    top = max(64, int(1024 * scale))
    counts = [p for p in HOST_COUNTS if p <= top]
    rows = []
    for num_hosts in counts:
        for system in ("host_only", "root_only", "per_level"):
            rows.append(_one_point(num_hosts, system))
    return rows


def _measured(rows) -> Dict[str, float]:
    by_key = {(row["system"], row["hosts"]): row["latency_us"]
              for row in rows}
    top = max(row["hosts"] for row in rows)
    base = 64
    out = {
        "per_level speedup vs host_only @64":
            by_key[("host_only", base)] / by_key[("per_level", base)],
        "per_level speedup vs root_only @top":
            by_key[("root_only", top)] / by_key[("per_level", top)],
        "per_level growth 64->top":
            by_key[("per_level", top)] / by_key[("per_level", base)],
        "root_only growth 64->top":
            by_key[("root_only", top)] / by_key[("root_only", base)],
    }
    return out


register(Experiment(
    experiment_id="ext_fabric_scale",
    title="Extension: scale-out fabrics — hierarchical vs single-point "
          "aggregation (64-1024 hosts)",
    paper={
        # Section 6's qualitative scaling claims, quantified: the
        # hierarchical scheme should beat the software baseline by at
        # least the paper's small-vector reduction gap, and pull away
        # from single-point aggregation as the fabric grows.
        "per_level speedup vs host_only @64": 4.0,
        "per_level growth 64->top": 1.5,
    },
    run=lambda scale=1.0: fabric_scale_sweep(scale),
    measured=_measured,
    default_scale=1.0,
    notes=("Not a paper figure: extends Section 6's switch-tree sketch "
           "to full multi-stage fabrics with the handler placement "
           "engine; latencies are packet-level simulations with the "
           "vectors really added and oracle-checked."),
))

"""Generate a complete markdown results report.

``generate_report()`` runs every registered experiment at its default
scale and emits one self-contained markdown document: figure-style
tables, bar charts, and paper-vs-measured comparisons.  This is the
machine-generated companion to the hand-curated EXPERIMENTS.md::

    python -m repro.experiments --markdown experiments_report.md
"""

from __future__ import annotations

import time
from typing import Optional

from ..metrics.report import (
    breakdown_table,
    comparison_table,
    performance_bars,
    performance_table,
)
from ..metrics.results import BenchmarkResult
from .registry import all_experiments, compare


def _render_result(experiment, result) -> str:
    parts = []
    if isinstance(result, BenchmarkResult):
        parts.append("```\n" + performance_table(result) + "\n```")
        parts.append("```\n" + performance_bars(result) + "\n```")
        parts.append("```\n" + breakdown_table(result) + "\n```")
    elif isinstance(result, dict) and result and all(
            isinstance(v, BenchmarkResult) for v in result.values()):
        for key, sub in result.items():
            parts.append(f"**Variant {key}:**")
            parts.append("```\n" + performance_table(sub) + "\n```")
    elif isinstance(result, list) and result and isinstance(result[0], dict):
        keys = list(result[0])
        header = "| " + " | ".join(str(k) for k in keys) + " |"
        divider = "|" + "|".join("---" for _ in keys) + "|"
        body = "\n".join(
            "| " + " | ".join(
                f"{row[k]:.3f}" if isinstance(row[k], float) else str(row[k])
                for k in keys) + " |"
            for row in result)
        parts.append("\n".join([header, divider, body]))
    parts.append("```\n"
                 + comparison_table(experiment.experiment_id,
                                    compare(experiment, result))
                 + "\n```")
    if experiment.notes:
        parts.append(f"*Note: {experiment.notes}*")
    return "\n\n".join(parts)


def generate_report(scale: Optional[float] = None,
                    experiment_ids: Optional[list] = None) -> str:
    """Run the experiments and return the markdown report."""
    chosen = all_experiments()
    if experiment_ids:
        chosen = [e for e in chosen if e.experiment_id in experiment_ids]
    sections = [
        "# Generated results report",
        "",
        "Produced by `python -m repro.experiments --markdown`; see",
        "EXPERIMENTS.md for curated paper-vs-measured commentary.",
        "",
    ]
    for experiment in chosen:
        chosen_scale = experiment.default_scale if scale is None else scale
        start = time.time()
        result = experiment.run(chosen_scale)
        elapsed = time.time() - start
        sections.append(f"## {experiment.title}")
        sections.append("")
        sections.append(f"Scale {chosen_scale:g}, wall time {elapsed:.1f} s.")
        sections.append("")
        sections.append(_render_result(experiment, result))
        sections.append("")
    return "\n".join(sections)


def write_report(path: str, scale: Optional[float] = None,
                 experiment_ids: Optional[list] = None) -> None:
    """Generate and write the report to ``path``."""
    with open(path, "w") as handle:
        handle.write(generate_report(scale=scale,
                                     experiment_ids=experiment_ids))

"""Ablation studies of the active-switch design choices.

Beyond reproducing the paper's figures, these experiments isolate the
individual design decisions DESIGN.md section 7 calls out:

* **cut-through** — valid-bit streaming (handlers compute while the
  block arrives) versus store-and-forward handlers;
* **buffer count** — how many of the 16 on-chip data buffers the
  multi-stream reduction really needs;
* **clock ratio** — how fast the embedded core must be before a
  whole-application offload (MD5 on one CPU) stops losing;
* **prefetch depth** — how many outstanding disk requests it takes to
  hide the I/O path;
* **non-interference** — design goal #1: active load must not slow
  down non-active forwarding;
* **filter placement** — one switch CPU amortised across several
  passive storage streams (the paper's economic argument versus
  active disks).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from ..apps.grep import GrepApp
from ..apps.md5 import Md5App
from ..apps.reduction import (
    REDUCE_TO_ONE,
    REDUCTION_HCA,
    _make_vectors,
    run_active_reduction,
)
from ..apps.select import SelectApp
from ..cluster.iostream import ReadStream
from ..cluster.system import System
from ..cluster.topology import SwitchTree
from ..net import ActiveHeader, ChannelAdapter, Link, Message
from ..sim import Environment
from ..sim.units import us
from ..switch import ActiveSwitch, ActiveSwitchConfig


# ----------------------------------------------------------------------
# Cut-through (valid-bit streaming) vs store-and-forward handlers
# ----------------------------------------------------------------------
def ablate_cut_through(scale: float = 1.0) -> Dict[str, float]:
    """Grep 'active' case with and without valid-bit overlap."""
    times = {}
    # One workload, both configurations: run_case rebuilds all mutable
    # simulation state per call, so app reuse is bit-identical to
    # fresh builds (tests/cluster/test_template.py).
    app = GrepApp(scale=scale)
    for cut_through, label in ((True, "cut-through"),
                               (False, "store-and-forward")):
        config = replace(
            app.cluster_config().with_case(active=True, prefetch=False),
            cut_through=cut_through)
        times[label] = app.run_case(config).exec_ps
    times["overlap benefit"] = (times["store-and-forward"]
                                / times["cut-through"])
    return times


# ----------------------------------------------------------------------
# Data-buffer count (packet-level reduction at one leaf switch)
# ----------------------------------------------------------------------
def ablate_buffer_count(num_hosts: int = 8,
                        counts=(2, 4, 8, 16)) -> List[dict]:
    """Latency of an 8-way leaf reduction vs available data buffers."""
    rows = []
    for count in counts:
        env = Environment()
        tree = SwitchTree(
            env, num_hosts=num_hosts, hosts_per_leaf=8, switch_ports=16,
            hca_config=REDUCTION_HCA,
            active_config=ActiveSwitchConfig(num_buffers=count))
        vectors = _make_vectors(num_hosts)
        result = run_active_reduction(tree, vectors, REDUCE_TO_ONE)
        rows.append({"buffers": count,
                     "latency_us": result.latency_ps / 1e6})
    return rows


# ----------------------------------------------------------------------
# Switch CPU clock ratio (MD5 on one embedded core)
# ----------------------------------------------------------------------
def ablate_clock_ratio(scale: float = 0.5,
                       freqs=(250e6, 500e6, 1e9, 2e9)) -> List[dict]:
    """active+pref vs normal+pref speedup as the embedded core speeds up."""
    rows = []
    app = Md5App(scale=scale, num_switch_cpus=1)
    for freq in freqs:
        base = app.cluster_config()
        normal = app.run_case(base.with_case(active=False, prefetch=True))
        active_config = replace(
            base.with_case(active=True, prefetch=True),
            active_switch=ActiveSwitchConfig(num_cpus=1, cpu_freq_hz=freq))
        active = app.run_case(active_config)
        rows.append({
            "freq_mhz": freq / 1e6,
            "speedup": normal.exec_ps / active.exec_ps,
        })
    return rows


# ----------------------------------------------------------------------
# Prefetch depth (outstanding I/O requests)
# ----------------------------------------------------------------------
def ablate_prefetch_depth(scale: float = 1 / 32,
                          depths=(1, 2, 3, 4)) -> List[dict]:
    """Select 'normal' execution time vs outstanding request count.

    Also reports the disks' measured busy fraction: one outstanding
    request leaves the spindles idle between blocks; two keep them
    saturated — which is why execution time stops improving.
    """
    rows = []
    for depth in depths:
        app = SelectApp(scale=scale)
        config = replace(app.cluster_config(), prefetch_depth=depth)
        system = System(config)
        runner = app.run_normal(system, depth)
        proc = system.env.process(runner, name=f"depth-{depth}")
        system.env.run(until=proc)
        rows.append({
            "depth": depth,
            "exec_ms": system.env.now / 1e9,
            "disk_utilization": system.storage.disks.utilization(),
        })
    return rows


# ----------------------------------------------------------------------
# Non-interference: forwarding latency under active load
# ----------------------------------------------------------------------
def measure_forwarding_latency(active_load: bool,
                               probes: int = 20) -> float:
    """Mean ep0->ep1 message latency (us) through an active switch,
    optionally while a third endpoint keeps the switch CPU saturated
    with handler work."""
    env = Environment()
    switch = ActiveSwitch(env, "sw0")
    adapters = []
    for port, name in enumerate(["ep0", "ep1", "ep2"]):
        to_switch = Link(env, f"{name}->sw0")
        from_switch = Link(env, f"sw0->{name}")
        adapter = ChannelAdapter(env, name)
        adapter.attach(tx_link=to_switch, rx_link=from_switch)
        switch.connect(port, tx_link=from_switch, rx_link=to_switch)
        switch.routing.add(name, port)
        adapters.append(adapter)
    ep0, ep1, ep2 = adapters

    def busy_handler(ctx):
        yield from ctx.compute(cycles=100_000)  # 200 us of CPU work
        yield from ctx.deallocate(ctx.address + 512)

    switch.register_handler(1, busy_handler)

    if active_load:
        def loader(env):
            for i in range(16):
                yield from ep2.transmit(Message(
                    "ep2", "sw0", size_bytes=512,
                    active=ActiveHeader(handler_id=1,
                                        address=(i % 16) * 512)))
                yield env.timeout(us(210))  # keep exactly one in flight

        env.process(loader(env))

    latencies = []

    def prober(env):
        for _ in range(probes):
            sent = env.now
            yield from ep0.transmit(Message("ep0", "ep1", 256))
            message = yield ep1.recv_queue.get()
            latencies.append(env.now - sent)
            yield env.timeout(us(100))

    probe_proc = env.process(prober(env))
    env.run(until=probe_proc)
    return sum(latencies) / len(latencies) / 1e6


def ablate_noninterference(probes: int = 20) -> Dict[str, float]:
    """Forwarding latency with vs without concurrent active load."""
    quiet = measure_forwarding_latency(active_load=False, probes=probes)
    loaded = measure_forwarding_latency(active_load=True, probes=probes)
    return {"quiet_us": quiet, "loaded_us": loaded,
            "slowdown": loaded / quiet}


# ----------------------------------------------------------------------
# Filter placement: one switch CPU serving several storage streams
# ----------------------------------------------------------------------
def ablate_filter_placement(scale: float = 1 / 64,
                            num_streams: int = 2) -> Dict[str, float]:
    """Run ``num_streams`` concurrent filtered scans through ONE switch
    CPU; report how busy it is.  Far below saturation supports the
    paper's claim that a single active switch amortises across multiple
    passive devices instead of requiring one active disk each."""
    app = SelectApp(scale=scale)
    config = replace(app.cluster_config().with_case(active=True,
                                                    prefetch=True),
                     num_storage=num_streams)
    system = System(config)
    env = system.env

    def one_stream(storage_index: int):
        stream = ReadStream(system, system.host,
                            total_bytes=app.total_bytes,
                            request_bytes=app.request_bytes, depth=2,
                            to_switch=True, request_cost="active",
                            storage_index=storage_index)
        for work in app.blocks:
            arrival = yield from stream.next_block()
            yield from system.process_on_switch(
                work.handler_cycles, 0,
                arrival_end_event=arrival.end_event,
                arrival_end_ps=arrival.end_ps)
            yield from system.switch_to_host_bulk(system.host,
                                                  work.out_bytes)
            yield from stream.done_with(arrival)

    procs = [env.process(one_stream(i), name=f"scan{i}")
             for i in range(num_streams)]
    env.run(until=env.all_of(procs))
    cpu = system.switch.cpus[0]
    # Streams run in parallel off separate disk arrays, so a disk-bound
    # run finishes in about one stream's worth of disk time.
    single_stream_disk_ps = app.total_bytes / 100e6 * 1e12
    return {
        "streams": float(num_streams),
        "exec_ms": env.now / 1e9,
        "switch_cpu_busy_frac": cpu.accounting.busy_ps / env.now,
        "disk_bound": float(env.now < 1.4 * single_stream_disk_ps
                            + 20e9),
    }


# ----------------------------------------------------------------------
# Storage technology scaling: when do faster disks outrun the handler?
# ----------------------------------------------------------------------
def ablate_storage_scaling(scale: float = 0.5,
                           multipliers=(1, 2, 4, 8)) -> List[dict]:
    """Grep active+pref vs normal+pref as disk bandwidth grows.

    The paper's disks stream 100 MB/s against a 500 MHz handler with
    headroom; as storage gets faster (the 2000s-to-NVMe trajectory) the
    handler becomes the bottleneck and the streaming offload's win
    erodes — the forward-looking sensitivity the paper's fixed testbed
    could not show.
    """
    from ..io.disk import DiskConfig
    rows = []
    app = GrepApp(scale=scale)
    for multiplier in multipliers:
        disk = DiskConfig(
            bandwidth_bytes_per_s=50e6 * multiplier)
        config_n = replace(
            app.cluster_config().with_case(active=False, prefetch=True),
            disk=disk)
        normal = app.run_case(config_n)
        config_a = replace(
            app.cluster_config().with_case(active=True, prefetch=True),
            disk=disk)
        active = app.run_case(config_a)
        switch_busy = (active.switch_cpus[0].busy_frac
                       if active.switch_cpus else 0.0)
        rows.append({
            "disk_mb_s": 100.0 * multiplier,
            "speedup": normal.exec_ps / active.exec_ps,
            "switch_busy_frac": switch_busy,
        })
    return rows


# ----------------------------------------------------------------------
# Selectivity: how much the filter keeps determines the traffic win
# ----------------------------------------------------------------------
def ablate_selectivity(scale: float = 1 / 128,
                       selectivities=(0.05, 0.25, 0.5, 0.9)) -> List[dict]:
    """Select's traffic and host-utilization benefits vs selectivity.

    The active switch's traffic reduction IS the predicate's
    selectivity; at 90 % kept there is little left to win.
    """
    rows = []
    for selectivity in selectivities:
        from ..runner.api import run
        result = run("select", scale=scale, selectivity=selectivity)
        rows.append({
            "selectivity": selectivity,
            "traffic_fraction": result.normalized_traffic("active"),
            "util_ratio": (result.utilization("normal+pref")
                           / max(result.utilization("active+pref"), 1e-9)),
        })
    return rows


# ----------------------------------------------------------------------
# Output queuing vs input queuing (the paper's Switch-3 design choice)
# ----------------------------------------------------------------------
def ablate_queueing_discipline(num_endpoints: int = 6,
                               messages_per_sender: int = 30):
    """Adversarial fan-in throughput: output-queued vs input-queued.

    Pattern: half the senders all target endpoint 0 (a hot output)
    while each also interleaves traffic to a cold output.  HOL blocking
    makes the cold traffic wait behind the hot in the input-queued
    switch; the output-queued design keeps the cold flows at wire speed.
    """
    from ..net import ChannelAdapter, Link, Message
    from ..switch import BaseSwitch, InputQueuedSwitch, SwitchConfig

    def run(switch_cls):
        env = Environment()
        switch = switch_cls(env, "sw0", SwitchConfig(
            num_ports=num_endpoints))
        adapters = []
        for i in range(num_endpoints):
            name = f"ep{i}"
            to_switch = Link(env, f"{name}->sw0")
            from_switch = Link(env, f"sw0->{name}")
            adapter = ChannelAdapter(env, name)
            adapter.attach(tx_link=to_switch, rx_link=from_switch)
            switch.connect(i, tx_link=from_switch, rx_link=to_switch)
            switch.routing.add(name, i)
            adapters.append(adapter)

        cold_latencies = []
        active_senders = num_endpoints - 3

        def sender(env, index):
            src = adapters[index]
            cold_dst = f"ep{num_endpoints - 1 - (index % 2)}"
            for m in range(messages_per_sender):
                # Hot packet to the shared output, then a cold one whose
                # payload carries its send time.
                yield from src.transmit(Message(src.node_id, "ep0", 512))
                yield from src.transmit(Message(src.node_id, cold_dst, 512,
                                                payload=env.now))

        def cold_receiver(env, adapter, expected):
            for _ in range(expected):
                message = yield adapter.recv_queue.get()
                cold_latencies.append(env.now - message.payload)

        senders = [env.process(sender(env, i))
                   for i in range(1, 1 + active_senders)]
        # Cold destinations are the last two endpoints.
        expected_last = sum(1 for i in range(1, 1 + active_senders)
                            if i % 2 == 1) * messages_per_sender
        expected_second = active_senders * messages_per_sender - expected_last
        receivers = [
            env.process(cold_receiver(env, adapters[num_endpoints - 1],
                                      expected_second)),
            env.process(cold_receiver(env, adapters[num_endpoints - 2],
                                      expected_last)),
        ]
        env.run(until=env.all_of(senders + receivers))
        total = env.now
        return total, sum(cold_latencies) / len(cold_latencies)

    oq_total, oq_cold = run(BaseSwitch)
    iq_total, iq_cold = run(InputQueuedSwitch)
    return {
        "output_queued_ms": oq_total / 1e9,
        "input_queued_ms": iq_total / 1e9,
        "hol_penalty": iq_total / oq_total,
        "cold_latency_ratio": iq_cold / max(oq_cold, 1),
    }


# ----------------------------------------------------------------------
# Receive discipline: polling vs interrupts (the paper's footnote)
# ----------------------------------------------------------------------
def ablate_receive_discipline(num_hosts: int = 64):
    """Reduce-to-one speedup under polling vs interrupt-driven receives.

    "The message receiver uses polling instead of interrupts, which
    favors the normal case since active switches can eliminate most of
    the interrupts."  Switching the MST baseline to interrupt-driven
    receives makes every one of its log2(p) rounds pay the interrupt
    path, widening the active system's win — quantifying how much the
    paper's choice of polling *understates* the benefit.
    """
    from dataclasses import replace as dc_replace
    from ..apps.reduction import (
        REDUCE_TO_ONE,
        REDUCTION_HCA,
        _make_vectors,
        run_active_reduction,
        run_normal_reduction,
    )

    results = {}
    for mode_name, hca in (
            ("polling", REDUCTION_HCA),
            ("interrupt", dc_replace(REDUCTION_HCA,
                                     receive_mode="interrupt",
                                     interrupt_cost_ps=30_000_000))):
        # 30 us per interrupt-driven receive: trap + handler + wakeup on
        # a 2003 kernel, vs the 18 us user-level completion poll.
        vectors = _make_vectors(num_hosts)
        normal_tree = SwitchTree(Environment(), num_hosts=num_hosts,
                                 hosts_per_leaf=8, switch_ports=16,
                                 hca_config=hca)
        normal = run_normal_reduction(normal_tree, vectors, REDUCE_TO_ONE)
        active_tree = SwitchTree(Environment(), num_hosts=num_hosts,
                                 hosts_per_leaf=8, switch_ports=16,
                                 hca_config=hca)
        active = run_active_reduction(active_tree, vectors, REDUCE_TO_ONE)
        results[mode_name] = {
            "normal_us": normal.latency_ps / 1e6,
            "active_us": active.latency_ps / 1e6,
            "speedup": normal.latency_ps / active.latency_ps,
        }
    return results


# ----------------------------------------------------------------------
# Key skew: how imbalance erodes the sort's distribution phase
# ----------------------------------------------------------------------
def ablate_sort_skew(scale: float = 1 / 512,
                     exponents=(0.0, 0.6, 1.0)) -> List[dict]:
    """Sort distribution under Zipf key skew.

    The p/(3p-2) traffic formula assumes uniform keys; with skew a
    static range partition overloads one node, the slowest node
    dominates the phase, and *both* systems degrade — the active
    switch redistributes in-flight but cannot repartition the ranges.
    """
    from ..apps.sort import SortApp
    from ..runner.api import run
    from ..workloads import datamation, zipf

    rows = []
    for exponent in exponents:
        class SkewedSort(SortApp):
            def __init__(self, scale=scale, exponent=exponent):
                super().__init__(scale=scale)
                # Re-derive per-block destination counts from skewed keys.
                per_block = self.request_bytes // datamation.RECORD_BYTES
                shift = 8 * datamation.KEY_BYTES
                self.node_blocks = []
                for node in range(self.num_nodes):
                    keys = zipf.generate_zipf_keys(
                        self.records_per_node, exponent=exponent,
                        seed=31 + node)
                    blocks = []
                    for start in range(0, len(keys), per_block):
                        counts = [0] * self.num_nodes
                        for key in keys[start:start + per_block]:
                            owner = (int.from_bytes(key, "big")
                                     * self.num_nodes) >> shift
                            counts[owner] += 1
                        blocks.append(counts)
                    self.node_blocks.append(blocks)

        probe = SkewedSort()
        imbalance = max(
            sum(counts[node] for blocks in probe.node_blocks
                for counts in blocks)
            for node in range(probe.num_nodes)
        ) / (probe.total_records / probe.num_nodes)
        # SkewedSort is a local class closing over the sweep point, so
        # it goes through run()'s factory path (serial, uncached).
        result = run(lambda: SkewedSort())
        rows.append({
            "zipf_exponent": exponent,
            "imbalance": imbalance,
            "active_exec_ms": result.case("active+pref").exec_ps / 1e9,
            "normal_exec_ms": result.case("normal+pref").exec_ps / 1e9,
            "traffic_fraction": result.normalized_traffic("active"),
        })
    return rows

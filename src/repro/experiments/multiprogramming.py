"""Multiprogrammed-server throughput — the paper's concluding claim.

"Even where there is little or no speedup, reductions in host
utilization and system bandwidth requirements allow for other tasks to
be performed concurrently.  Thus, active switches can play a key role
in improving overall throughput in modern multi-programmed servers."

This experiment quantifies that: run the I/O-bound Select scan under
each configuration and measure how much *other* work the host could
have completed in its idle time (a background job at a fixed
cycles-per-operation cost).  The scan's own completion time barely
moves between normal+pref and active+pref — what changes is how much
of the server is left over.
"""

from __future__ import annotations

from typing import Dict, List

from ..runner.api import run
from .registry import Experiment, register

#: Background job: operations of 50k host cycles (25 us each).
BACKGROUND_OP_CYCLES = 50_000


def multiprogramming_throughput(scale: float = 1 / 32) -> List[Dict]:
    """Background ops completable during the scan, per configuration."""
    result = run("select", scale=scale)
    rows = []
    for label in ("normal", "normal+pref", "active", "active+pref"):
        case = result.case(label)
        idle_ps = case.host.idle_ps
        op_ps = BACKGROUND_OP_CYCLES * 500  # host cycle = 500 ps
        rows.append({
            "case": label,
            "scan_ms": case.exec_ps / 1e9,
            "host_idle_frac": case.host.idle_frac,
            "background_ops": idle_ps // op_ps,
            "bg_ops_per_ms": (idle_ps // op_ps) / (case.exec_ps / 1e9),
        })
    return rows


def _measured(rows) -> Dict[str, float]:
    by_case = {row["case"]: row for row in rows}
    return {
        "active/normal+pref background ratio": (
            by_case["active+pref"]["background_ops"]
            / max(1, by_case["normal+pref"]["background_ops"])),
        "active+pref idle fraction": by_case["active+pref"]["host_idle_frac"],
        "scan slowdown from offload": (
            by_case["active+pref"]["scan_ms"]
            / by_case["normal+pref"]["scan_ms"]),
    }


register(Experiment(
    experiment_id="ext_multiprogramming",
    title="Extension: multiprogrammed-server throughput (Select)",
    paper={
        # Qualitative claim quantified: the active host frees real
        # capacity at no scan-time cost.
        "scan slowdown from offload": 1.0,
    },
    run=lambda scale=1 / 32: multiprogramming_throughput(scale),
    measured=_measured,
    default_scale=1 / 32,
    notes=("Quantifies the conclusion's multi-programming argument: "
           "idle host time convertible to background work."),
))

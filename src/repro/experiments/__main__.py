"""Run every experiment and print the paper-vs-measured report.

::

    python -m repro.experiments              # all, at default scales
    python -m repro.experiments fig09_10_grep table1
    python -m repro.experiments --scale 0.25 fig03_04_mpeg
    python -m repro.experiments --parallel 4 --cache .repro-cache

``--parallel`` and ``--cache`` configure the experiment harness
(:mod:`repro.runner`) process-wide, so every four-case experiment fans
its cells across the worker pool and reuses cached results; outputs are
bit-identical to the serial path.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..metrics.report import comparison_table, performance_table, breakdown_table
from ..metrics.results import BenchmarkResult
from .registry import all_experiments, compare, get


def run_one(experiment, scale=None, collect=None) -> str:
    """Run and render one experiment.

    ``collect``, if given, receives the measured metrics keyed by
    experiment id (for --json output) without re-running anything.
    """
    chosen_scale = experiment.default_scale if scale is None else scale
    start = time.time()
    result = experiment.run(chosen_scale)
    elapsed = time.time() - start
    if collect is not None:
        collect[experiment.experiment_id] = {
            "title": experiment.title,
            "scale": chosen_scale,
            "paper": experiment.paper,
            "measured": experiment.measured(result),
        }
    sections = [f"== {experiment.title} (scale={chosen_scale:g}, "
                f"{elapsed:.1f}s) =="]
    if isinstance(result, BenchmarkResult):
        sections.append(performance_table(result))
        sections.append(breakdown_table(result))
    elif isinstance(result, dict) and all(
            isinstance(v, BenchmarkResult) for v in result.values()):
        for key, sub in result.items():
            sections.append(f"-- variant {key} --")
            sections.append(performance_table(sub))
    elif isinstance(result, list) and result and isinstance(result[0], dict):
        header = "  ".join(f"{k:>12}" for k in result[0])
        rows = "\n".join(
            "  ".join(f"{row[k]:12.3f}" if isinstance(row[k], float)
                      else f"{row[k]:>12}" for k in row)
            for row in result)
        sections.append(header + "\n" + rows)
    sections.append(comparison_table(experiment.experiment_id,
                                     compare(experiment, result)))
    if experiment.notes:
        sections.append(f"note: {experiment.notes}")
    return "\n\n".join(sections)


def run_ablations() -> str:
    """Run every ablation study and format the results."""
    from . import ablations

    sections = ["== Ablation studies (DESIGN.md section 7) =="]

    times = ablations.ablate_cut_through(scale=0.5)
    sections.append(
        "cut-through (grep, active): "
        f"{times['cut-through'] / 1e9:.2f} ms with valid-bit overlap vs "
        f"{times['store-and-forward'] / 1e9:.2f} ms store-and-forward "
        f"({times['overlap benefit']:.2f}x)")

    rows = ablations.ablate_buffer_count()
    sections.append("data buffers (8-way leaf reduction): " + ", ".join(
        f"{r['buffers']}->{r['latency_us']:.1f}us" for r in rows))

    rows = ablations.ablate_clock_ratio()
    sections.append("switch clock (MD5, 1 CPU, a+p speedup): " + ", ".join(
        f"{r['freq_mhz']:.0f}MHz->{r['speedup']:.2f}x" for r in rows))

    rows = ablations.ablate_prefetch_depth()
    sections.append("prefetch depth (select, normal): " + ", ".join(
        f"d{r['depth']}->{r['exec_ms']:.1f}ms" for r in rows))

    result = ablations.ablate_noninterference()
    sections.append(
        f"non-interference: forwarding {result['quiet_us']:.3f} us quiet, "
        f"{result['loaded_us']:.3f} us under active load "
        f"({result['slowdown']:.3f}x)")

    result = ablations.ablate_filter_placement()
    sections.append(
        f"filter placement: 1 switch CPU filtering "
        f"{result['streams']:.0f} disk streams at "
        f"{result['switch_cpu_busy_frac']:.1%} utilization "
        f"({'disk-bound' if result['disk_bound'] else 'CPU-bound'})")

    return "\n".join(sections)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override workload scale (1.0 = paper sizes)")
    parser.add_argument("--ablations", action="store_true",
                        help="also run the design-choice ablation studies")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write measured metrics as JSON")
    parser.add_argument("--markdown", metavar="PATH", default=None,
                        help="write the full generated markdown report "
                             "and exit")
    parser.add_argument("--parallel", type=int, default=None, metavar="N",
                        help="fan experiment cells across N worker "
                             "processes (results identical to serial)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="reuse/store per-cell results in DIR")
    args = parser.parse_args(argv)

    if args.parallel is not None or args.cache is not None:
        from ..runner.api import configure
        harness = {}
        if args.parallel is not None:
            harness["parallel"] = args.parallel
        if args.cache is not None:
            harness["cache"] = args.cache
        configure(**harness)

    if args.markdown:
        from .report_generator import write_report
        write_report(args.markdown, scale=args.scale,
                     experiment_ids=args.experiments or None)
        print(f"wrote {args.markdown}")
        return 0

    chosen = ([get(eid) for eid in args.experiments]
              if args.experiments else all_experiments())
    collected = {}
    if not (args.ablations and args.experiments == []):
        for experiment in chosen:
            print(run_one(experiment, scale=args.scale,
                          collect=collected if args.json else None))
            print()
    if args.ablations:
        print(run_ablations())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(collected, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

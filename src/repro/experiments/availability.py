"""Fabric availability: reductions that survive fail-stop switch deaths.

The paper's switches are single points of aggregation: Section 6's
switch tree concentrates every partial result at the root.  This
experiment quantifies what the fail-stop machinery (ACK-timeout
escalation + heartbeats -> ECMP failover -> placement repair + epoch
retry) buys on fat-tree fabrics: the aggregation-root spine is killed
at a sweep of times across the collective's lifetime and the collective
must still deliver the bit-exact result.

Each (hosts, kill time) point reports

* ``latency_us`` — end-to-end completion including any repair/retry;
* ``slowdown`` — that latency over the failure-free run's (the goodput
  dip: a kill the collective has already drained past costs nothing,
  one mid-aggregation costs one ``collective_timeout`` plus a re-run);
* ``attempts`` / ``repairs`` — how recovery happened (1/0 means the
  partials had cleared the dead spine; 2/1 means a full re-root);
* ``detect_us`` — worst detection latency (bounded by the heartbeat
  interval);
* ``recover_us`` — time-to-recover: latency minus the failure-free
  baseline (0 when the kill was harmless).

Every run's result is checked against the host-side oracle — a row only
exists if the reduction survived *and* was bit-exact.
"""

from __future__ import annotations

from typing import Dict, List

from ..apps.reduction import REDUCTION_HCA, _make_vectors, _oracle
from ..cluster.fabric import TopologySpec, build_fabric
from ..cluster.placement import plan_placement, run_placed_reduction
from ..faults import FailStopEvent, FailStopFaults, FaultInjector, FaultPlan
from ..sim.core import Environment
from ..sim.units import us
from .registry import Experiment, register

#: Fabric sizes swept (scale trims the top end).
HOST_COUNTS = (64, 128, 256)
#: Root-spine kill times (us); None is the failure-free baseline.
KILL_TIMES_US = (None, 10, 15, 20, 30)
#: Per-attempt deadline — dominates time-to-recover when a repair fires.
COLLECTIVE_TIMEOUT_PS = us(200)


def _one_point(num_hosts: int, kill_at_us) -> Dict:
    env = Environment()
    # 256 hosts overflow a 16-port spine (32 leaves); use the 32-port
    # building block there, paper-sized switches below.
    if num_hosts > 128:
        spec = TopologySpec(kind="fat_tree", num_hosts=num_hosts,
                            hosts_per_leaf=16, switch_ports=32)
    else:
        spec = TopologySpec(kind="fat_tree", num_hosts=num_hosts)
    injector = None
    if kill_at_us is not None:
        plan = FaultPlan(failstop=FailStopFaults(
            events=(FailStopEvent(kind="switch_down", target="spine0",
                                  at_ps=us(kill_at_us)),),
            collective_timeout_ps=COLLECTIVE_TIMEOUT_PS))
        injector = FaultInjector(plan, seed=7)
    fabric = build_fabric(env, spec, hca_config=REDUCTION_HCA,
                          injector=injector)
    vectors = _make_vectors(num_hosts)
    placement = plan_placement(fabric, "per_level")
    done = run_placed_reduction(fabric, placement, vectors)
    if list(done["result"]) != _oracle(vectors):
        raise AssertionError(
            f"availability p={num_hosts} kill@{kill_at_us}us: "
            f"reduction result does not match the oracle")
    return {
        "hosts": num_hosts,
        "kill_at_us": kill_at_us,
        "latency_us": done["latency_ps"] / 1e6,
        "attempts": done.get("attempts", 1),
        "repairs": done.get("repairs", 0),
        "failovers": fabric.failovers,
        "detect_us": fabric.ft.detection_latency_ps_max / 1e6,
    }


def availability_sweep(scale: float = 1.0) -> List[Dict]:
    """Rows for every (hosts, kill time) point, plus derived columns."""
    top = max(64, int(256 * scale))
    rows: List[Dict] = []
    for num_hosts in [p for p in HOST_COUNTS if p <= top]:
        baseline_us = None
        for kill_at_us in KILL_TIMES_US:
            row = _one_point(num_hosts, kill_at_us)
            if kill_at_us is None:
                baseline_us = row["latency_us"]
            row["slowdown"] = row["latency_us"] / baseline_us
            row["recover_us"] = row["latency_us"] - baseline_us
            rows.append(row)
    return rows


def _measured(rows) -> Dict[str, float]:
    killed = [row for row in rows if row["kill_at_us"] is not None]
    repaired = [row for row in killed if row["repairs"]]
    clean = [row for row in killed if not row["repairs"]]
    out = {
        "survival rate under root-spine kill": 1.0,  # rows exist => exact
        "kills forcing a repair": float(len(repaired)),
        "kills absorbed without retry": float(len(clean)),
    }
    if repaired:
        out["worst time-to-recover (us)"] = max(
            row["recover_us"] for row in repaired)
        out["worst detection latency (us)"] = max(
            row["detect_us"] for row in repaired)
        out["slowdown when repair fires"] = max(
            row["slowdown"] for row in repaired)
    if clean:
        out["slowdown when kill is absorbed"] = max(
            row["slowdown"] for row in clean)
    return out


register(Experiment(
    experiment_id="ext_fabric_availability",
    title="Extension: fail-stop availability — root-spine kills across "
          "the collective window (64-256 hosts)",
    paper={
        # No paper figure: the design target.  Every kill must be
        # survived bit-exactly, and recovery is bounded by one
        # collective timeout plus a fresh attempt.
        "survival rate under root-spine kill": 1.0,
    },
    run=lambda scale=1.0: availability_sweep(scale),
    measured=_measured,
    default_scale=1.0,
    notes=("Not a paper figure: stresses the fail-stop machinery the "
           "paper's single-switch design lacks.  The aggregation-root "
           "spine dies mid-collective; detection (ACK escalation + "
           "heartbeat), ECMP failover, and epoch-numbered placement "
           "repair must deliver the oracle-exact result.  Early kills "
           "force a repair + full retry (latency ~ collective timeout "
           "+ one clean run); late kills are absorbed for free because "
           "the partials already cleared the dead spine."),
))

"""Open-loop service SLO: saturation knees with and without offload.

The paper evaluates closed-loop batch jobs; the north star asks the
serving question — how much open-loop traffic can a configuration
sustain under a tail-latency SLO?  This experiment probes offered load
(Poisson arrivals over 64 Zipf-keyed client streams of grep-as-a-
service requests) through the HCA admission queue into the simulated
cluster, for ``normal`` vs ``active`` handler placement on a single
switch and on a 16-host fat tree.

Storage uses the ``service_2003`` preset (a 16-spindle stripe) so the
knee lands on the *CPU* axis: in the ``normal`` case every block
crosses the host downlink and the host CPU scans it; in the ``active``
case four embedded switch CPUs run the grep handler and only matching
bytes reach the host.  Per configuration the search locates the
largest offered rate whose aggregate p99 stays under the SLO with no
drops and goodput tracking offered load (``max_sustainable_rps``), and
the first rate that breaks (``knee_rps``).

Since PR 10 the knee comes from the adaptive search
(:func:`repro.traffic.find_knee`): bisection over the 16-point rate
grid costs at most 5 service simulations per configuration instead of
16 — ≥3x fewer — and the fixed-grid mode is retained as the golden
reference (``mode="grid"``; the CI sweep-smoke step and the bench
``sweep:*`` cells assert both return the same knee).

Deterministic end to end: arrival schedules are pure functions of the
seed, and every path — adaptive, exhaustive grid, cache-restored —
evaluates rate points through the identical simulation.
"""

from __future__ import annotations

from typing import Dict, List

from ..traffic import ServiceSpec, find_knee
from .registry import Experiment, register

#: Offered-load grid (requests/s); scale trims the top end.  16 points
#: at 2 kRPS resolution: the adaptive search bisects the sustained-
#: prefix boundary in ⌈log2(17)⌉ = 5 probes.
RATES = tuple(2000.0 * step for step in range(1, 17))

#: Tail-latency objective: aggregate p99 under 1 ms.
SLO_MS = 1.0

#: (topology kind, fabric hosts) points; host 0 serves, the rest are
#: client-facing ports.  The 1024-host tree rides the burst engine
#: (docs/scaling.md) and shares its fabric hop walk + built app across
#: every probe through the template caches (docs/performance.md).
TOPOLOGIES = (("single", 1), ("fat_tree", 16), ("tree", 1024))


def _base_spec(case: str, topology: str, hosts: int) -> ServiceSpec:
    return ServiceSpec(
        app="grep", case=case, arrival="poisson",
        duration_s=0.02, num_streams=64, num_keys=256,
        depth=128, policy="drop", workers=32,
        topology=topology, hosts=hosts,
        preset="service_2003",
        overrides=(("num_switch_cpus", 4),),
        seed=7, slo_ms=SLO_MS)


def service_slo_sweep(scale: float = 1.0, mode: str = "adaptive",
                      cache=None) -> List[Dict]:
    """One row per (topology, case): the knee under the SLO.

    ``mode="adaptive"`` (default) bisects the rate grid;
    ``mode="grid"`` runs the exhaustive golden reference.  Each row
    records ``sims`` — the service simulations that configuration's
    knee cost — so the ≥3x saving is visible in the artifact itself.
    """
    top = max(RATES[0], scale * RATES[-1])
    rates = [rate for rate in RATES if rate <= top]
    rows: List[Dict] = []
    for topology, hosts in TOPOLOGIES:
        for case in ("normal", "active"):
            spec = _base_spec(case, topology, hosts)
            search = find_knee(spec, rates, mode=mode, cache=cache)
            knee = search.knee()
            rows.append({
                "topology": topology,
                "case": case,
                "max_rps": knee["max_sustainable_rps"] or 0.0,
                "goodput": knee["goodput_rps"] or 0.0,
                "p99_us": knee["p99_us"] or 0.0,
                "knee_rps": knee["knee_rps"] or 0.0,
                "sims": knee["sims"],
            })
    return rows


def _measured(rows) -> Dict[str, float]:
    out: Dict[str, float] = {}
    by_key = {(row["topology"], row["case"]): row for row in rows}
    for (topology, case), row in sorted(by_key.items()):
        out[f"{topology}/{case} max sustainable RPS"] = row["max_rps"]
    for topology, _ in TOPOLOGIES:
        normal = by_key.get((topology, "normal"))
        active = by_key.get((topology, "active"))
        if normal and active and normal["max_rps"]:
            out[f"{topology} active/normal capacity ratio"] = (
                active["max_rps"] / normal["max_rps"])
    return out


register(Experiment(
    experiment_id="ext_service_slo",
    title="Extension: open-loop service SLO — saturation knee and max "
          "sustainable RPS, normal vs active placement",
    paper={
        # No paper figure: the design target.  Handler offload must buy
        # measurable serving capacity under the same 1 ms p99 SLO.
        "single active/normal capacity ratio": 1.5,
    },
    run=lambda scale=1.0: service_slo_sweep(scale),
    measured=_measured,
    default_scale=1.0,
    notes=("Not a paper figure: the paper's batch benchmarks recast as "
           "open-loop service traffic (Poisson arrivals, Zipf keys, HCA "
           "admission queue).  With a 16-spindle stripe the knee is "
           "CPU-bound: the normal case saturates the host CPU scanning "
           "whole blocks, the active case fans the grep handler across "
           "four switch CPUs and ships only matches — sustaining ~50% "
           "more offered load under the same 1 ms p99 SLO on the "
           "single switch, the 16-host fat tree, and the 1024-host "
           "tree fabric.  Knees located by adaptive bisection "
           "(<=5 sims per configuration on the 16-point grid)."),
))

"""Per-figure experiment definitions (the paper's evaluation section).

Every table and figure of the paper maps to one registered
:class:`Experiment`; running one produces the same rows/series the
paper reports plus a paper-vs-measured comparison.
"""

from __future__ import annotations

from typing import Dict

from ..apps.reduction import DISTRIBUTED, REDUCE_TO_ONE, reduction_sweep
from ..metrics.results import BenchmarkResult
from ..runner.api import run as _run_benchmark
from .registry import Experiment, register


# ----------------------------------------------------------------------
# Table 1: applications and problem sizes
# ----------------------------------------------------------------------
def _run_table1(scale: float = 1.0):
    from ..workloads import datamation
    return [
        ("MPEG filter", 2_202_640),
        ("HashJoin", "16M x 128M"),
        ("Select", 128 * 1024 * 1024),
        ("Grep", 1_146_880),
        ("Tar", 4 * 1024 * 1024),
        ("Parallel sort", f"{datamation.PAPER_NUM_RECORDS // (1024 * 1024)}M records"),
        ("MD5", 256 * 1024),
        ("Collective Reduction", 512),
    ]


register(Experiment(
    experiment_id="table1",
    title="Table 1: Applications and problem sizes",
    paper={"applications": 8},
    run=_run_table1,
    measured=lambda rows: {"applications": len(rows)},
))


# ----------------------------------------------------------------------
# Shared helpers for the four-case figures
# ----------------------------------------------------------------------
def _four_case_metrics(result: BenchmarkResult) -> Dict[str, float]:
    return {
        "normal+pref norm. time": result.normalized_time("normal+pref"),
        "active norm. time": result.normalized_time("active"),
        "active+pref norm. time": result.normalized_time("active+pref"),
        "active speedup (vs normal)": result.active_speedup,
        "active+pref speedup (vs normal+pref)": result.active_pref_speedup,
        "active traffic fraction": result.normalized_traffic("active"),
        "host util normal": result.utilization("normal"),
        "host util normal+pref": result.utilization("normal+pref"),
        "host util active": result.utilization("active"),
        "host util active+pref": result.utilization("active+pref"),
    }


# ----------------------------------------------------------------------
# Figures 3/4: MPEG filter
# ----------------------------------------------------------------------
register(Experiment(
    experiment_id="fig03_04_mpeg",
    title="Figures 3/4: MPEG-filter performance and breakdown",
    paper={
        "active speedup (vs normal)": 1.23,
        "active+pref speedup (vs normal+pref)": 1.36,
        "active traffic fraction": 0.365,
        "normal / normal+pref": 1.13,
    },
    run=lambda scale=1.0: _run_benchmark("mpeg", scale=scale),
    measured=lambda r: {
        **_four_case_metrics(r),
        "normal / normal+pref": r.speedup("normal", "normal+pref"),
    },
    notes=("Our active-no-pref pipelines more aggressively than the "
           "paper's, so its speedup overshoots 1.23; see EXPERIMENTS.md."),
))


# ----------------------------------------------------------------------
# Figures 5/6: HashJoin
# ----------------------------------------------------------------------
def _hashjoin_measured(result: BenchmarkResult) -> Dict[str, float]:
    metrics = _four_case_metrics(result)
    npref = result.case("normal+pref")
    apref = result.case("active+pref")
    metrics["normal+pref host stall frac"] = npref.host.stall_frac
    metrics["active+pref host stall frac"] = apref.host.stall_frac
    return metrics


register(Experiment(
    experiment_id="fig05_06_hashjoin",
    title="Figures 5/6: HashJoin performance and breakdown",
    paper={
        "active speedup (vs normal)": 1.10,
        "active+pref speedup (vs normal+pref)": 1.00,
        "normal+pref host stall frac": 0.276,
        "active+pref host stall frac": 0.161,
    },
    run=lambda scale=1 / 16: _run_benchmark("hashjoin", scale=scale),
    measured=_hashjoin_measured,
    default_scale=1 / 16,
    notes=("Paper's 76% traffic reduction counts the S scan only; our "
           "traffic metric also includes R passing through to the host."),
))


# ----------------------------------------------------------------------
# Figures 7/8: Select
# ----------------------------------------------------------------------
def _select_measured(result: BenchmarkResult) -> Dict[str, float]:
    metrics = _four_case_metrics(result)
    normal_avg = (result.utilization("normal")
                  + result.utilization("normal+pref")) / 2
    active_avg = (result.utilization("active")
                  + result.utilization("active+pref")) / 2
    metrics["normal/active utilization ratio"] = (
        normal_avg / active_avg if active_avg else float("inf"))
    return metrics


register(Experiment(
    experiment_id="fig07_08_select",
    title="Figures 7/8: Select performance and breakdown",
    paper={
        "active traffic fraction": 0.25,
        "normal/active utilization ratio": 21.0,
        "active+pref speedup (vs normal+pref)": 1.00,
    },
    run=lambda scale=1 / 16: _run_benchmark("select", scale=scale),
    measured=_select_measured,
    default_scale=1 / 16,
))


# ----------------------------------------------------------------------
# Figures 9/10: Grep
# ----------------------------------------------------------------------
register(Experiment(
    experiment_id="fig09_10_grep",
    title="Figures 9/10: Grep performance and breakdown",
    paper={
        "active speedup (vs normal)": 1.14,
        "host util active": 0.0,
    },
    run=lambda scale=1.0: _run_benchmark("grep", scale=scale),
    measured=_four_case_metrics,
))


# ----------------------------------------------------------------------
# Figures 11/12: Tar
# ----------------------------------------------------------------------
register(Experiment(
    experiment_id="fig11_12_tar",
    title="Figures 11/12: Tar performance and breakdown",
    paper={
        "host util active": 0.0,
        "active traffic fraction": 0.01,  # headers only
        "active+pref speedup (vs normal+pref)": 1.00,
    },
    run=lambda scale=1.0: _run_benchmark("tar", scale=scale),
    measured=_four_case_metrics,
))


# ----------------------------------------------------------------------
# Figures 13/14: Parallel sort
# ----------------------------------------------------------------------
def _sort_measured(result: BenchmarkResult) -> Dict[str, float]:
    metrics = _four_case_metrics(result)
    metrics["per-node traffic fraction"] = result.normalized_traffic("active")
    return metrics


register(Experiment(
    experiment_id="fig13_14_sort",
    title="Figures 13/14: Parallel sort performance and breakdown",
    paper={
        "per-node traffic fraction": 0.40,  # p/(3p-2) at p=4
    },
    run=lambda scale=1 / 64: _run_benchmark("sort", scale=scale),
    measured=_sort_measured,
    default_scale=1 / 64,
))


# ----------------------------------------------------------------------
# Figures 15/16: collective reductions
# ----------------------------------------------------------------------
def _run_reduction(mode):
    def run(scale: float = 1.0):
        counts = (2, 4, 8, 16, 32, 64, 128)
        if scale < 1.0:
            counts = tuple(c for c in counts if c <= max(8, int(128 * scale)))
        return reduction_sweep(mode, node_counts=counts)
    return run


def _reduction_measured(rows):
    peak = max(row["speedup"] for row in rows)
    return {
        "peak speedup": peak,
        "speedup at max nodes": rows[-1]["speedup"],
        "monotone growth": float(all(
            b["speedup"] >= a["speedup"] * 0.95
            for a, b in zip(rows, rows[1:]))),
    }


register(Experiment(
    experiment_id="fig15_reduce_to_one",
    title="Figure 15: Collective Reduce-to-one latency vs nodes",
    paper={"peak speedup": 5.61},
    run=_run_reduction(REDUCE_TO_ONE),
    measured=_reduction_measured,
))

register(Experiment(
    experiment_id="fig16_distributed_reduce",
    title="Figure 16: Collective Distributed Reduce latency vs nodes",
    paper={"peak speedup": 5.92},
    run=_run_reduction(DISTRIBUTED),
    measured=_reduction_measured,
))


# ----------------------------------------------------------------------
# Figure 17: MD5 with multiple switch CPUs
# ----------------------------------------------------------------------
def _run_md5(scale: float = 1.0):
    return {
        k: _run_benchmark("md5", scale=scale, num_switch_cpus=k)
        for k in (1, 2, 4)
    }


def _md5_measured(results) -> Dict[str, float]:
    return {
        "1cpu active speedup": results[1].active_speedup,
        "4cpu active speedup (no pref)": results[4].active_speedup,
        "4cpu active+pref speedup": results[4].active_pref_speedup,
        "2cpu active speedup (no pref)": results[2].active_speedup,
    }


register(Experiment(
    experiment_id="fig17_md5_multicpu",
    title="Figure 17: MD5 with 1/2/4 switch CPUs",
    paper={
        "1cpu active speedup": 0.5,  # "slower than normal"
        "4cpu active speedup (no pref)": 1.50,
        "4cpu active+pref speedup": 1.18,
    },
    run=_run_md5,
    measured=_md5_measured,
))


# ----------------------------------------------------------------------
# Table 2: reduction semantics (functional, not timed)
# ----------------------------------------------------------------------
def _run_table2(scale: float = 1.0):
    from ..apps.reduction import run_reduction_point
    return {
        "reduce-to-one": run_reduction_point(8, REDUCE_TO_ONE, active=True),
        "distributed": run_reduction_point(8, DISTRIBUTED, active=True),
    }


register(Experiment(
    experiment_id="table2",
    title="Table 2: Collective reduction semantics",
    paper={"modes verified": 2},
    run=_run_table2,
    measured=lambda results: {"modes verified": float(len(results))},
))

"""Experiment registry: one entry per paper table/figure.

Each experiment knows how to regenerate its artifact (at a configurable
workload scale) and carries the paper's reported numbers so the harness
can print paper-vs-measured comparisons (recorded in EXPERIMENTS.md).

Scales: the paper's own inputs are ``scale=1.0``; the registry's
``default_scale`` keeps each experiment's wall-clock time reasonable
while preserving behaviour (cache sizes co-scale with database inputs,
exactly the paper's own scaling trick).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass
class Experiment:
    """A reproducible paper artifact."""

    experiment_id: str
    title: str
    #: Paper-quoted values this experiment should reproduce the shape of.
    paper: Dict[str, float]
    #: run(scale) -> result object (BenchmarkResult, rows, ...).
    run: Callable
    #: measured(result) -> {metric: value} aligned with ``paper``.
    measured: Callable
    default_scale: float = 1.0
    notes: str = ""


_REGISTRY: Dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Add an experiment to the registry (id must be unique)."""
    if experiment.experiment_id in _REGISTRY:
        raise ValueError(f"duplicate experiment {experiment.experiment_id}")
    _REGISTRY[experiment.experiment_id] = experiment
    return experiment


def get(experiment_id: str) -> Experiment:
    """Look up one experiment."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(_REGISTRY)}") from None


def all_experiments() -> List[Experiment]:
    """All registered experiments in id order."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def compare(experiment: Experiment, result) -> List[tuple]:
    """(metric, measured, paper) rows for reporting."""
    measured = experiment.measured(result)
    rows = []
    for metric, paper_value in experiment.paper.items():
        rows.append((metric, measured.get(metric, float("nan")), paper_value))
    for metric, value in measured.items():
        if metric not in experiment.paper:
            rows.append((metric, value, None))
    return rows

"""Filter-placement comparison: host vs switch vs device vs two-level.

The paper's Related Work argues the active switch's position lets it
improve *all* traffic types while active I/O devices only help their
own, and that the two compose into "a two-level active I/O system".
This experiment runs the same filtered table scan (the Select kernel's
shape: ~25 % of records pass) with the filter at four places:

* **host** — the normal system: all data crosses the fabric and the
  host filters it;
* **switch** — the paper's system: full data on the storage link, only
  passing records on the host link;
* **device** — the active-disk alternative: only passing records ever
  enter the fabric;
* **two-level** — the device drops half the non-passing records with a
  cheap pre-filter and the switch applies the precise predicate.

All four are disk-bound (filtering is cheap), so the discriminating
metrics are *where* bytes flow and *which* processor pays.
"""

from __future__ import annotations

from typing import Dict, List

from ..cluster.config import ClusterConfig
from ..cluster.system import System
from ..io.active_storage import ActiveStorageNode
from ..workloads import records
from .registry import Experiment, register

#: Cycles per record for the range predicate on each engine.
HOST_FILTER_CYCLES = 8
SWITCH_FILTER_CYCLES = 10
DEVICE_FILTER_CYCLES = 12  # simplest core, more cycles for the same scan

#: Fraction of records passing the precise predicate.
PASS_FRACTION = 0.25
#: Fraction surviving the device's cheap pre-filter in two-level mode.
PREFILTER_PASS = 0.5

_INPUT_BASE = 0x2000_0000


def _build_system(active_switch: bool, active_device: bool):
    config = ClusterConfig(active=active_switch, prefetch_depth=2,
                           database_scaled_caches=True)
    system = System(config)
    if active_device:
        # Swap the passive storage node's internals for an active one,
        # reusing the already-wired TCA adapter name/links.
        storage = ActiveStorageNode(system.env, "storage0", config)
        storage.tca = system.storage.tca  # keep the wired adapter
        system.storage_nodes[0] = storage
    return system


def _scan(system, total_bytes: int, request_bytes: int,
          placement: str) -> None:
    """Drive one filtered scan; blocks until complete."""
    from ..cluster.iostream import ReadStream
    env = system.env
    host = system.host
    per_block_records = request_bytes // records.RECORD_BYTES
    num_blocks = -(-total_bytes // request_bytes)

    def host_filter_stall(base):
        return host.hierarchy.load_stride(base, records.RECORD_BYTES,
                                          per_block_records)

    def driver(env):
        if placement in ("device", "two-level"):
            # Filtered (or pre-filtered) reads straight from the device.
            storage = system.storage
            device_pass = (PASS_FRACTION if placement == "device"
                           else PREFILTER_PASS)
            for index in range(num_blocks):
                yield from host.active_request()
                yield env.timeout(system.request_path_ps())
                out_bytes = int(request_bytes * device_pass)
                yield from storage.serve_filtered_read(
                    index * request_bytes, request_bytes,
                    filter_cycles=per_block_records * DEVICE_FILTER_CYCLES,
                    out_bytes=out_bytes)
                if placement == "two-level":
                    # The switch applies the precise predicate to the
                    # pre-filtered stream.
                    survivors = int(request_bytes * PASS_FRACTION)
                    yield from system.process_on_switch(
                        cycles=(per_block_records * PREFILTER_PASS
                                * SWITCH_FILTER_CYCLES),
                        stall_ps=0)
                    yield from system.switch_to_host_bulk(host, survivors)
                else:
                    yield from system.switch_to_host_bulk(host, out_bytes)
            return

        to_switch = placement == "switch"
        stream = ReadStream(
            system, host, total_bytes=total_bytes,
            request_bytes=request_bytes, depth=2, to_switch=to_switch,
            request_cost="active" if to_switch else "os")
        cursor = _INPUT_BASE
        for index in range(num_blocks):
            arrival = yield from stream.next_block()
            if to_switch:
                yield from system.process_on_switch(
                    cycles=per_block_records * SWITCH_FILTER_CYCLES,
                    stall_ps=0, arrival_end_event=arrival.end_event)
                yield from system.switch_to_host_bulk(
                    host, int(arrival.nbytes * PASS_FRACTION))
            else:
                yield from stream.consume_fully(arrival)
                stall = host_filter_stall(cursor)
                cursor += arrival.nbytes
                yield from host.cpu.work(
                    per_block_records * HOST_FILTER_CYCLES, stall)
            yield from stream.done_with(arrival)

    proc = env.process(driver(env), name=f"scan-{placement}")
    env.run(until=proc)


def compare_filter_placement(scale: float = 1 / 64) -> List[Dict]:
    """Run the scan with the filter at each placement; returns rows."""
    total = int(128 * 1024 * 1024 * scale)
    request = 64 * 1024
    total -= total % request
    total = max(total, 4 * request)

    rows = []
    for placement in ("host", "switch", "device", "two-level"):
        system = _build_system(
            active_switch=placement in ("switch", "two-level"),
            active_device=placement in ("device", "two-level"))
        _scan(system, total, request, placement)
        env_now = system.env.now
        to_switch_link, _ = system.links_for("storage0")
        storage = system.storage
        fabric_bytes = storage.tca.traffic.bytes_out
        rows.append({
            "placement": placement,
            "exec_ms": env_now / 1e9,
            "host_in_bytes": system.host.hca.traffic.bytes_in,
            "fabric_bytes": fabric_bytes,
            "host_busy_frac": system.host.cpu.accounting.busy_ps / env_now,
        })
    return rows


def _measured(rows) -> Dict[str, float]:
    by_placement = {row["placement"]: row for row in rows}
    host = by_placement["host"]
    return {
        "device fabric fraction": (by_placement["device"]["fabric_bytes"]
                                   / host["fabric_bytes"]),
        "switch fabric fraction": (by_placement["switch"]["fabric_bytes"]
                                   / host["fabric_bytes"]),
        "two-level fabric fraction": (
            by_placement["two-level"]["fabric_bytes"]
            / host["fabric_bytes"]),
        "all disk-bound spread": (max(r["exec_ms"] for r in rows)
                                  / min(r["exec_ms"] for r in rows)),
    }


register(Experiment(
    experiment_id="ext_two_level",
    title="Extension: filter placement (host / switch / device / two-level)",
    paper={
        # The paper's qualitative claims, quantified:
        "device fabric fraction": 0.25,   # only survivors enter the SAN
        "switch fabric fraction": 1.00,   # full data reaches the switch
    },
    run=lambda scale=1 / 64: compare_filter_placement(scale),
    measured=_measured,
    default_scale=1 / 64,
    notes=("Not a paper figure: quantifies the Related-Work trade-off "
           "between active switches and active disks, and their "
           "two-level composition."),
))

"""Experiment harness: every paper table and figure, runnable.

Usage::

    from repro.experiments import get, all_experiments, compare

    exp = get("fig09_10_grep")
    result = exp.run(scale=exp.default_scale)
    for metric, measured, paper in compare(exp, result):
        print(metric, measured, paper)

``python -m repro.experiments`` runs everything and prints the full
paper-vs-measured report (the source of EXPERIMENTS.md).
"""

from . import availability  # noqa: F401  (extension experiment)
from . import figures  # noqa: F401  (registration side effects)
from . import multiprogramming  # noqa: F401  (extension experiment)
from . import scale_fabric  # noqa: F401  (extension experiment)
from . import service_slo  # noqa: F401  (extension experiment)
from . import two_level  # noqa: F401  (extension experiment)
from .registry import Experiment, all_experiments, compare, get

__all__ = ["Experiment", "all_experiments", "compare", "get"]

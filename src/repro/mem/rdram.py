"""RDRAM main-memory model.

The paper: "Our simulator accurately models an RDRAM memory system for
both the host and switch.  The maximum bandwidth of both systems is
1.6 GB/s.  The latency of a page hit is 100ns and 122ns for a page miss."

We model per-bank open pages (a page miss closes/opens the sense amps,
hence the extra 22 ns) and account for bandwidth when bulk data streams
through memory (I/O buffers, message payloads).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.units import ns, transfer_ps


@dataclass(frozen=True)
class RdramConfig:
    """Timing and geometry of the RDRAM system."""

    bandwidth_bytes_per_s: float = 1.6e9
    page_hit_ps: int = ns(100)
    page_miss_ps: int = ns(122)
    num_banks: int = 16
    page_size: int = 2048

    def __post_init__(self):
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("memory bandwidth must be positive")
        if self.page_miss_ps < self.page_hit_ps:
            raise ValueError("page miss cannot be faster than page hit")
        if self.num_banks <= 0 or self.page_size <= 0:
            raise ValueError("banks and page size must be positive")


@dataclass
class RdramStats:
    accesses: int = 0
    page_hits: int = 0
    page_misses: int = 0
    bytes_transferred: int = 0

    @property
    def page_hit_rate(self) -> float:
        return self.page_hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.page_hits = self.page_misses = 0
        self.bytes_transferred = 0


class Rdram:
    """Open-page RDRAM: returns latency in picoseconds per access."""

    def __init__(self, config: RdramConfig = RdramConfig()):
        self.config = config
        self.stats = RdramStats()
        self._open_pages = [-1] * config.num_banks
        self._page_shift = config.page_size.bit_length() - 1
        # Burst time is a pure function of nbytes; line fills use only a
        # handful of sizes, so memoise instead of recomputing the float
        # division + rounding on every access.
        self._burst_ps: dict = {}

    def access(self, addr: int, nbytes: int = 128) -> int:
        """Latency of one line fill/writeback at ``addr``."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        page = addr >> self._page_shift
        bank = page % self.config.num_banks
        self.stats.accesses += 1
        self.stats.bytes_transferred += nbytes
        if self._open_pages[bank] == page:
            self.stats.page_hits += 1
            latency = self.config.page_hit_ps
        else:
            self.stats.page_misses += 1
            self._open_pages[bank] = page
            latency = self.config.page_miss_ps
        # Data burst after the access latency.
        burst = self._burst_ps.get(nbytes)
        if burst is None:
            burst = self._burst_ps[nbytes] = transfer_ps(
                nbytes, self.config.bandwidth_bytes_per_s)
        return latency + burst

    def stream(self, nbytes: int) -> int:
        """Bandwidth-limited time for a large sequential transfer."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        self.stats.bytes_transferred += nbytes
        return transfer_ps(nbytes, self.config.bandwidth_bytes_per_s)

    def __repr__(self) -> str:
        return (f"<Rdram {self.config.bandwidth_bytes_per_s / 1e9:g} GB/s, "
                f"page hit rate {self.stats.page_hit_rate:.3f}>")

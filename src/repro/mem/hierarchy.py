"""Cache/TLB/memory hierarchy that turns address streams into stall time.

The hierarchy is a *functional* model: each ``load`` / ``store`` /
``ifetch`` walks the cache levels, updates their state, and returns the
stall time in picoseconds.  The CPU models accumulate those stalls into
the "cache stall" component of the paper's execution-time breakdowns.

Stall semantics follow Section 4 of the paper:

* a load miss stalls the processor until the first double-word returns;
* store (and prefetch) misses do not stall unless too many references
  are outstanding — we approximate this with a configurable overlap
  factor applied to store-miss latency;
* TLB misses cost a page-table walk whose references go *through the
  cache hierarchy* (the "cache effects of TLB misses").

The embedded switch processor uses the same machinery with no L2 and no
overlap (its caches support only one outstanding request).

Range accesses (``load_range`` / ``store_range``) have a batched fast
path that walks a whole contiguous scan in one call: the byte range is
chunked per TLB page (one real TLB access per chunk — the per-line
re-hits only bump the access counter), each chunk's lines go through
:meth:`Cache._access_run` in one pass, and only the missed lines consult
L2/memory, in the same per-line order the scalar path would.  Stall
picoseconds and statistics accumulate in locals and commit once per
call, so results — every counter and every stall sum — are bit-identical
to the per-line path.  The scalar path survives as the reference
implementation behind ``batched=False`` (or the ``REPRO_MEM_PERLINE``
environment variable), which the golden-stats equivalence test flips.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from ..sim.units import Clock
from .cache import HIT, WRITEBACK, Cache, CacheConfig
from .rdram import Rdram, RdramConfig
from .tlb import TLB, TLBConfig


@dataclass(frozen=True)
class HierarchyTiming:
    """Latency knobs for a cache hierarchy, in CPU cycles."""

    #: Extra stall for an L1 miss that hits in L2.
    l2_hit_stall_cycles: int = 10
    #: Fraction of a store-miss latency actually charged as stall
    #: (models the 4-outstanding-miss overlap window; 1.0 = blocking).
    store_overlap_factor: float = 0.25
    #: Memory references performed by a page-table walk on a TLB miss.
    tlb_walk_refs: int = 2
    #: Fixed TLB-miss handler overhead in cycles (trap + refill).
    tlb_refill_cycles: int = 20


class MemoryHierarchy:
    """L1 (+ optional L2) + TLB in front of an RDRAM memory."""

    #: Synthetic address region used for page-table walk references.
    _PAGE_TABLE_BASE = 0x7000_0000

    def __init__(
        self,
        l1d: Cache,
        l1i: Cache,
        memory: Rdram,
        clock: Clock,
        l2: Optional[Cache] = None,
        dtlb: Optional[TLB] = None,
        itlb: Optional[TLB] = None,
        timing: HierarchyTiming = HierarchyTiming(),
        batched: Optional[bool] = None,
    ):
        self.l1d = l1d
        self.l1i = l1i
        self.l2 = l2
        self.dtlb = dtlb
        self.itlb = itlb
        self.memory = memory
        self.clock = clock
        self.timing = timing
        #: Use the batched range fast path.  ``REPRO_MEM_PERLINE=1``
        #: forces the scalar reference path for differential testing.
        if batched is None:
            batched = not os.environ.get("REPRO_MEM_PERLINE")
        self.batched = batched
        # timing and clock are immutable; precompute the L2-hit stall.
        self._l2_hit_ps = clock.cycles(timing.l2_hit_stall_cycles)
        # The strided fast path reports missed addresses aligned down to
        # the L1 line; that is invisible to the lower levels only when
        # every lower-level granularity is a multiple of the L1 line.
        line = l1d.config.line_size
        self._stride_batchable = (
            memory.config.page_size % line == 0
            and (l2 is None or l2.config.line_size % line == 0)
            and (dtlb is None or dtlb.config.page_size % line == 0))
        #: Accumulated stall picoseconds, by cause.
        self.load_stall_ps = 0
        self.store_stall_ps = 0
        self.ifetch_stall_ps = 0
        self.tlb_stall_ps = 0

    # ------------------------------------------------------------------
    # Internal walk
    # ------------------------------------------------------------------
    def _fill(self, l1: Cache, addr: int, write: bool) -> int:
        """Stall ps for an access through ``l1`` (data or instruction)."""
        if l1._access(addr, write) & HIT:
            return 0
        l2 = self.l2
        if l2 is not None:
            code = l2._access(addr, write)
            if code & WRITEBACK:
                # Write-back to memory happens off the critical path.
                self.memory.stream(l2.config.line_size)
            if code & HIT:
                return self._l2_hit_ps
        # Miss to memory: stall until the first double-word arrives.
        return self.memory.access(addr, nbytes=l1.config.line_size)

    def _translate(self, tlb: Optional[TLB], addr: int) -> int:
        """Stall ps for address translation (0 on TLB hit)."""
        if tlb is None or tlb.access(addr):
            return 0
        stall = self.clock.cycles(self.timing.tlb_refill_cycles)
        page = addr >> (tlb.config.page_size.bit_length() - 1)
        for ref in range(self.timing.tlb_walk_refs):
            walk_addr = self._PAGE_TABLE_BASE + (page + ref) * 8
            stall += self._fill(self.l1d, walk_addr, write=False)
        return stall

    # ------------------------------------------------------------------
    # Public access points
    # ------------------------------------------------------------------
    def load(self, addr: int) -> int:
        """Data load; returns stall picoseconds."""
        tlb_stall = self._translate(self.dtlb, addr)
        self.tlb_stall_ps += tlb_stall
        stall = self._fill(self.l1d, addr, write=False)
        self.load_stall_ps += stall
        return tlb_stall + stall

    def store(self, addr: int) -> int:
        """Data store; partially overlapped per the paper's miss window."""
        tlb_stall = self._translate(self.dtlb, addr)
        self.tlb_stall_ps += tlb_stall
        stall = round(self._fill(self.l1d, addr, write=True)
                      * self.timing.store_overlap_factor)
        self.store_stall_ps += stall
        return tlb_stall + stall

    def prefetch(self, addr: int) -> None:
        """Software prefetch: warms the caches, never stalls."""
        if self.dtlb is not None:
            self.dtlb.access(addr)
        self._fill(self.l1d, addr, write=False)

    def ifetch(self, addr: int) -> int:
        """Instruction fetch; returns stall picoseconds."""
        tlb_stall = self._translate(self.itlb, addr)
        self.tlb_stall_ps += tlb_stall
        stall = self._fill(self.l1i, addr, write=False)
        self.ifetch_stall_ps += stall
        return tlb_stall + stall

    def load_range(self, addr: int, nbytes: int) -> int:
        """Sequential loads touching every line of a byte range."""
        if self.batched:
            return self._scan_range(addr, nbytes, write=False)
        line = self.l1d.config.line_size
        stall = 0
        first = addr - (addr % line)
        for line_addr in range(first, addr + nbytes, line):
            stall += self.load(line_addr)
        return stall

    def store_range(self, addr: int, nbytes: int) -> int:
        """Sequential stores touching every line of a byte range."""
        if self.batched:
            return self._scan_range(addr, nbytes, write=True)
        line = self.l1d.config.line_size
        stall = 0
        first = addr - (addr % line)
        for line_addr in range(first, addr + nbytes, line):
            stall += self.store(line_addr)
        return stall

    def load_stride(self, addr: int, stride: int, count: int) -> int:
        """``count`` loads at ``addr, addr+stride, ...`` (record scans)."""
        if self.batched and self._stride_batchable and stride > 0:
            return self._scan_stride(addr, stride, count, write=False)
        stall = 0
        for i in range(count):
            stall += self.load(addr + i * stride)
        return stall

    def store_stride(self, addr: int, stride: int, count: int) -> int:
        """``count`` stores at ``addr, addr+stride, ...``."""
        if self.batched and self._stride_batchable and stride > 0:
            return self._scan_stride(addr, stride, count, write=True)
        stall = 0
        for i in range(count):
            stall += self.store(addr + i * stride)
        return stall

    def _consult_lower(self, missed, write: bool) -> int:
        """L2/memory stall for a batch of missed L1 lines, in order.

        Shared tail of the batched scans; store misses keep per-line
        overlap rounding.
        """
        l2 = self.l2
        memory = self.memory
        line = self.l1d.config.line_size
        overlap = self.timing.store_overlap_factor
        stall = 0
        if l2 is None:
            if write:
                for maddr in missed:
                    stall += round(memory.access(maddr, line) * overlap)
            else:
                for maddr in missed:
                    stall += memory.access(maddr, line)
            return stall
        l2_hit_ps = self._l2_hit_ps
        l2_line = l2.config.line_size
        for maddr in missed:
            code = l2._access(maddr, write=write)
            if code & HIT:
                ps = l2_hit_ps
            else:
                if code & WRITEBACK:
                    # Off the critical path, bandwidth accounted.
                    memory.stream(l2_line)
                ps = memory.access(maddr, line)
            stall += round(ps * overlap) if write else ps
        return stall

    def _scan_stride(self, addr: int, stride: int, count: int,
                     write: bool) -> int:
        """Batched strided scan, bit-identical to the scalar loop."""
        if count <= 0:
            return 0
        l1d = self.l1d
        tlb = self.dtlb
        page_size = tlb.config.page_size if tlb is not None else 0
        tlb_stall = 0
        fill_stall = 0
        pos = addr
        remaining = count
        while remaining:
            if tlb is not None:
                page_end = (pos // page_size + 1) * page_size
                chunk = min(remaining, -(-(page_end - pos) // stride))
                tlb_stall += self._translate(tlb, pos)
                tlb.stats.accesses += chunk - 1
            else:
                chunk = remaining
            missed, _ = l1d._access_stride(pos, stride, chunk, write=write)
            fill_stall += self._consult_lower(missed, write)
            pos += chunk * stride
            remaining -= chunk
        self.tlb_stall_ps += tlb_stall
        if write:
            self.store_stall_ps += fill_stall
        else:
            self.load_stall_ps += fill_stall
        return tlb_stall + fill_stall

    def _scan_range(self, addr: int, nbytes: int, write: bool) -> int:
        """Batched walk of every line in ``[addr, addr+nbytes)``.

        Bit-identical to the scalar loop: the range is chunked per TLB
        page, one real TLB access covers each chunk (the remaining
        same-page accesses are hits that only move an already-MRU entry,
        so they collapse to an access-counter bump), the L1 pass is one
        :meth:`Cache._access_run`, and the missed lines consult L2 and
        memory in ascending line order — the order the scalar path
        produces.  Store misses keep the *per-line* overlap rounding.
        """
        l1d = self.l1d
        line = l1d.config.line_size
        first = addr - (addr % line)
        end = addr + nbytes
        count = (end - first + line - 1) // line if end > first else 0
        if count <= 0:
            return 0
        tlb = self.dtlb
        page_size = tlb.config.page_size if tlb is not None else 0
        tlb_stall = 0
        fill_stall = 0
        pos = first
        remaining = count
        while remaining:
            if tlb is not None:
                page_end = (pos // page_size + 1) * page_size
                chunk = min(remaining, (page_end - pos + line - 1) // line)
                # One real translation covers the chunk; the page-table
                # walk on a miss goes through the caches before the
                # chunk's own L1 accesses, exactly as the scalar path
                # orders it.
                tlb_stall += self._translate(tlb, pos)
                tlb.stats.accesses += chunk - 1
            else:
                chunk = remaining
            missed, _ = l1d._access_run(pos, chunk, write=write)
            fill_stall += self._consult_lower(missed, write)
            pos += chunk * line
            remaining -= chunk
        self.tlb_stall_ps += tlb_stall
        if write:
            self.store_stall_ps += fill_stall
        else:
            self.load_stall_ps += fill_stall
        return tlb_stall + fill_stall

    @property
    def total_stall_ps(self) -> int:
        """All stall time charged so far."""
        return (self.load_stall_ps + self.store_stall_ps
                + self.ifetch_stall_ps + self.tlb_stall_ps)

    def reset_stats(self) -> None:
        """Zero all counters (cache contents are preserved)."""
        self.load_stall_ps = self.store_stall_ps = 0
        self.ifetch_stall_ps = self.tlb_stall_ps = 0
        for cache in (self.l1d, self.l1i, self.l2):
            if cache is not None:
                cache.stats.reset()
        for tlb in (self.dtlb, self.itlb):
            if tlb is not None:
                tlb.stats.reset()
        self.memory.stats.reset()


# ----------------------------------------------------------------------
# Builders for the paper's two hierarchies
# ----------------------------------------------------------------------
def build_host_hierarchy(
    clock: Clock,
    scaled_for_database: bool = False,
    memory: Optional[Rdram] = None,
    timing: HierarchyTiming = HierarchyTiming(),
    extra_scale_divisor: int = 1,
    batched: Optional[bool] = None,
) -> MemoryHierarchy:
    """The paper's host hierarchy.

    32 KB 2-way L1 I/D + 512 KB 2-way L2 with 128 B lines; for the
    database applications (HashJoin, Select) the caches are scaled down
    by 8x: 8 KB L1 data and 64 KB L2 ("keeping the same line sizes and
    associativities").

    ``extra_scale_divisor`` applies the same methodology one step
    further: when an experiment's *input* is scaled down by N for
    simulation speed, dividing the cache sizes by N preserves the
    capacity-miss behaviour (exactly how the paper ran 16 MB/128 MB
    tables to model 128 MB/1 GB ones).
    """
    divisor = extra_scale_divisor
    if divisor < 1 or divisor & (divisor - 1):
        raise ValueError(f"cache scale divisor must be a power of two, got {divisor}")
    if scaled_for_database:
        l1d = Cache(CacheConfig("host-L1D", 8 * 1024 // divisor, 32, 2))
        l2 = Cache(CacheConfig("host-L2", 64 * 1024 // divisor, 128, 2))
    else:
        l1d = Cache(CacheConfig("host-L1D", 32 * 1024 // divisor, 32, 2))
        l2 = Cache(CacheConfig("host-L2", 512 * 1024 // divisor, 128, 2))
    l1i = Cache(CacheConfig("host-L1I", 32 * 1024, 32, 2))
    return MemoryHierarchy(
        l1d=l1d,
        l1i=l1i,
        l2=l2,
        dtlb=TLB(TLBConfig("host-DTLB", entries=64)),
        itlb=TLB(TLBConfig("host-ITLB", entries=64)),
        memory=memory if memory is not None else Rdram(RdramConfig()),
        clock=clock,
        timing=timing,
        batched=batched,
    )


def build_switch_hierarchy(
    clock: Clock,
    memory: Optional[Rdram] = None,
    batched: Optional[bool] = None,
) -> MemoryHierarchy:
    """The embedded switch CPU hierarchy.

    4 KB 2-way I-cache with 64 B lines, 1 KB 2-way D-cache with 32 B
    lines, no L2, one outstanding request (so stores block fully).
    """
    timing = HierarchyTiming(store_overlap_factor=1.0, l2_hit_stall_cycles=0)
    return MemoryHierarchy(
        l1d=Cache(CacheConfig("switch-L1D", 1024, 32, 2)),
        l1i=Cache(CacheConfig("switch-L1I", 4096, 64, 2)),
        l2=None,
        dtlb=None,
        itlb=None,
        memory=memory if memory is not None else Rdram(RdramConfig()),
        clock=clock,
        timing=timing,
        batched=batched,
    )

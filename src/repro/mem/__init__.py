"""Memory subsystem: caches, TLBs, RDRAM, and the stall-time hierarchy."""

from .cache import AccessResult, Cache, CacheConfig, CacheStats
from .hierarchy import (
    HierarchyTiming,
    MemoryHierarchy,
    build_host_hierarchy,
    build_switch_hierarchy,
)
from .rdram import Rdram, RdramConfig, RdramStats
from .tlb import TLB, TLBConfig, TLBStats

__all__ = [
    "AccessResult",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "HierarchyTiming",
    "MemoryHierarchy",
    "build_host_hierarchy",
    "build_switch_hierarchy",
    "Rdram",
    "RdramConfig",
    "RdramStats",
    "TLB",
    "TLBConfig",
    "TLBStats",
]

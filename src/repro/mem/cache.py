"""Set-associative cache model.

A functional (non-timed) cache: :meth:`Cache.access` updates tag state
and reports hit/miss/writeback.  Timing is assigned by
:class:`repro.mem.hierarchy.MemoryHierarchy`, which layers latencies on
top of the hit/miss outcomes.

The model is write-back / write-allocate with true LRU replacement, which
matches the level of detail the paper reports (it quotes only sizes,
associativities and line sizes).

Hot-path representation: each set is one insertion-ordered ``dict``
mapping ``tag -> dirty bit``, LRU first and MRU last, so every access is
O(1) — a membership probe, a ``pop`` + re-insert to touch, and
``next(iter(set))`` to find the victim.  (The original parallel
``tags``/``dirty`` lists paid a Python-level ``list.index`` scan per
access, which dominated the benchmark-grid wall clock.)  The internal
path (:meth:`_access`, :meth:`_access_run`) returns plain ints and
commits statistics in batches; the :class:`AccessResult` dataclass
survives as a thin wrapper on the public :meth:`access`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    line_size: int
    assoc: int

    def __post_init__(self):
        if self.size_bytes <= 0 or self.line_size <= 0 or self.assoc <= 0:
            raise ValueError(f"cache parameters must be positive: {self}")
        if self.size_bytes % (self.line_size * self.assoc):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line_size*assoc = {self.line_size * self.assoc}")
        if self.line_size & (self.line_size - 1):
            raise ValueError(f"{self.name}: line size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.assoc)


@dataclass
class CacheStats:
    """Access counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = 0
        self.evictions = self.writebacks = 0


@dataclass
class AccessResult:
    """Outcome of a single cache access (public-API wrapper).

    The internal hot path never allocates these; they are built only by
    :meth:`Cache.access` from its int-coded result.
    """

    hit: bool
    writeback: bool = False
    evicted_tag: int = field(default=-1)


#: Bit flags of the int-coded internal access result.
HIT = 1
WRITEBACK = 2


class Cache:
    """One level of write-back, write-allocate, LRU set-associative cache."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        num_sets = config.num_sets
        if num_sets & (num_sets - 1):
            raise ValueError(f"{config.name}: number of sets must be a power of two")
        self._set_mask = num_sets - 1
        self._line_shift = config.line_size.bit_length() - 1
        self._tag_shift = self._set_mask.bit_length()
        # Per set: tag -> dirty bit, insertion-ordered (LRU first).
        self._sets: List[dict] = [{} for _ in range(num_sets)]

    def _locate(self, addr: int):
        line = addr >> self._line_shift
        return line & self._set_mask, line >> self._tag_shift

    # ------------------------------------------------------------------
    # Internal int-coded path (no allocation)
    # ------------------------------------------------------------------
    def _access(self, addr: int, write: bool = False) -> int:
        """Access ``addr``; returns ``HIT`` and/or ``WRITEBACK`` flags."""
        line = addr >> self._line_shift
        lines = self._sets[line & self._set_mask]
        tag = line >> self._tag_shift
        stats = self.stats
        stats.accesses += 1
        if tag in lines:
            stats.hits += 1
            # pop + re-insert moves the tag to the MRU position.
            lines[tag] = lines.pop(tag) or write
            return HIT
        stats.misses += 1
        code = 0
        if len(lines) >= self.config.assoc:
            stats.evictions += 1
            if lines.pop(next(iter(lines))):
                stats.writebacks += 1
                code = WRITEBACK
        lines[tag] = write
        return code

    def _access_run(self, line_addr: int, count: int,
                    write: bool = False) -> Tuple[List[int], int]:
        """``count`` sequential line accesses from line-aligned ``line_addr``.

        The batched fast path: sequential lines walk distinct sets, so
        the whole run is dict probes with statistics committed once at
        the end.  Returns ``(missed line addresses, writeback count)``
        — exactly what a lower level needs to fill and clean up.
        """
        sets = self._sets
        set_mask = self._set_mask
        tag_shift = self._tag_shift
        line_shift = self._line_shift
        assoc = self.config.assoc
        missed: List[int] = []
        evictions = 0
        writebacks = 0
        line = line_addr >> line_shift
        for line in range(line, line + count):
            lines = sets[line & set_mask]
            tag = line >> tag_shift
            if tag in lines:
                lines[tag] = lines.pop(tag) or write
            else:
                missed.append(line << line_shift)
                if len(lines) >= assoc:
                    evictions += 1
                    if lines.pop(next(iter(lines))):
                        writebacks += 1
                lines[tag] = write
        stats = self.stats
        stats.accesses += count
        stats.hits += count - len(missed)
        stats.misses += len(missed)
        stats.evictions += evictions
        stats.writebacks += writebacks
        return missed, writebacks

    def _access_stride(self, addr: int, stride: int, count: int,
                       write: bool = False) -> Tuple[List[int], int]:
        """``count`` accesses at ``addr, addr+stride, ...`` in one batch.

        The strided sibling of :meth:`_access_run`, for record scans
        whose stride differs from the line size (so some lines repeat,
        some are skipped).  Returns missed addresses aligned down to
        their line — equivalent for every lower level, which only looks
        at the containing line/page.
        """
        sets = self._sets
        set_mask = self._set_mask
        tag_shift = self._tag_shift
        line_shift = self._line_shift
        assoc = self.config.assoc
        missed: List[int] = []
        evictions = 0
        writebacks = 0
        for i in range(count):
            line = (addr + i * stride) >> line_shift
            lines = sets[line & set_mask]
            tag = line >> tag_shift
            if tag in lines:
                lines[tag] = lines.pop(tag) or write
            else:
                missed.append(line << line_shift)
                if len(lines) >= assoc:
                    evictions += 1
                    if lines.pop(next(iter(lines))):
                        writebacks += 1
                lines[tag] = write
        stats = self.stats
        stats.accesses += count
        stats.hits += count - len(missed)
        stats.misses += len(missed)
        stats.evictions += evictions
        stats.writebacks += writebacks
        return missed, writebacks

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def access(self, addr: int, write: bool = False) -> AccessResult:
        """Access ``addr``; returns hit/miss and any writeback triggered."""
        set_index, tag = self._locate(addr)
        lines = self._sets[set_index]
        evicted_tag = -1
        if tag not in lines and len(lines) >= self.config.assoc:
            evicted_tag = next(iter(lines))
        code = self._access(addr, write=write)
        if code & HIT:
            return AccessResult(hit=True)
        return AccessResult(hit=False, writeback=bool(code & WRITEBACK),
                            evicted_tag=evicted_tag)

    def contains(self, addr: int) -> bool:
        """True if the line holding ``addr`` is resident (no state change)."""
        set_index, tag = self._locate(addr)
        return tag in self._sets[set_index]

    def access_range(self, addr: int, nbytes: int,
                     write: bool = False) -> Tuple[int, int]:
        """Access every line in ``[addr, addr+nbytes)`` in one batched call.

        Returns ``(misses, writebacks)``.  State and statistics evolve
        exactly as the equivalent sequence of :meth:`access` calls.
        """
        line = self.config.line_size
        first = addr - (addr % line)
        count = (addr + nbytes - first + line - 1) // line
        if count <= 0:
            return 0, 0
        missed, writebacks = self._access_run(first, count, write=write)
        return len(missed), writebacks

    def touch_range(self, addr: int, nbytes: int, write: bool = False) -> int:
        """Access every line in ``[addr, addr+nbytes)``; returns miss count."""
        if nbytes <= 0:
            return 0
        return self.access_range(addr, nbytes, write=write)[0]

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines.

        Dirty lines leave through :attr:`CacheStats.writebacks`, the
        same counter eviction-time write-backs use, so total traffic
        accounting stays consistent whether a line dies by eviction or
        by flush.
        """
        dirty_count = sum(sum(1 for d in lines.values() if d)
                          for lines in self._sets)
        for lines in self._sets:
            lines.clear()
        self.stats.writebacks += dirty_count
        return dirty_count

    def __repr__(self) -> str:
        c = self.config
        return (f"<Cache {c.name}: {c.size_bytes} B, {c.assoc}-way, "
                f"{c.line_size} B lines, miss rate {self.stats.miss_rate:.3f}>")

"""Set-associative cache model.

A functional (non-timed) cache: :meth:`Cache.access` updates tag state
and reports hit/miss/writeback.  Timing is assigned by
:class:`repro.mem.hierarchy.MemoryHierarchy`, which layers latencies on
top of the hit/miss outcomes.

The model is write-back / write-allocate with true LRU replacement, which
matches the level of detail the paper reports (it quotes only sizes,
associativities and line sizes).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    line_size: int
    assoc: int

    def __post_init__(self):
        if self.size_bytes <= 0 or self.line_size <= 0 or self.assoc <= 0:
            raise ValueError(f"cache parameters must be positive: {self}")
        if self.size_bytes % (self.line_size * self.assoc):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line_size*assoc = {self.line_size * self.assoc}")
        if self.line_size & (self.line_size - 1):
            raise ValueError(f"{self.name}: line size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.assoc)


@dataclass
class CacheStats:
    """Access counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = 0
        self.evictions = self.writebacks = 0


@dataclass
class AccessResult:
    """Outcome of a single cache access."""

    hit: bool
    writeback: bool = False
    evicted_tag: int = field(default=-1)


class Cache:
    """One level of write-back, write-allocate, LRU set-associative cache."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        num_sets = config.num_sets
        if num_sets & (num_sets - 1):
            raise ValueError(f"{config.name}: number of sets must be a power of two")
        self._set_mask = num_sets - 1
        self._line_shift = config.line_size.bit_length() - 1
        # Per set: parallel lists of tags (most recent last) and dirty bits.
        self._tags = [[] for _ in range(num_sets)]
        self._dirty = [[] for _ in range(num_sets)]

    def _locate(self, addr: int):
        line = addr >> self._line_shift
        return line & self._set_mask, line >> (self._set_mask.bit_length())

    def access(self, addr: int, write: bool = False) -> AccessResult:
        """Access ``addr``; returns hit/miss and any writeback triggered."""
        set_index, tag = self._locate(addr)
        tags = self._tags[set_index]
        dirty = self._dirty[set_index]
        self.stats.accesses += 1
        try:
            way = tags.index(tag)
        except ValueError:
            way = -1
        if way >= 0:
            self.stats.hits += 1
            # Move to MRU position.
            tags.append(tags.pop(way))
            dirty_bit = dirty.pop(way)
            dirty.append(dirty_bit or write)
            return AccessResult(hit=True)

        self.stats.misses += 1
        writeback = False
        evicted_tag = -1
        if len(tags) >= self.config.assoc:
            evicted_tag = tags.pop(0)
            was_dirty = dirty.pop(0)
            self.stats.evictions += 1
            if was_dirty:
                self.stats.writebacks += 1
                writeback = True
        tags.append(tag)
        dirty.append(write)
        return AccessResult(hit=False, writeback=writeback, evicted_tag=evicted_tag)

    def contains(self, addr: int) -> bool:
        """True if the line holding ``addr`` is resident (no state change)."""
        set_index, tag = self._locate(addr)
        return tag in self._tags[set_index]

    def touch_range(self, addr: int, nbytes: int, write: bool = False) -> int:
        """Access every line in ``[addr, addr+nbytes)``; returns miss count."""
        if nbytes <= 0:
            return 0
        line = self.config.line_size
        first = addr - (addr % line)
        misses = 0
        for line_addr in range(first, addr + nbytes, line):
            if not self.access(line_addr, write=write).hit:
                misses += 1
        return misses

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines dropped."""
        dirty_count = sum(sum(1 for d in bits if d) for bits in self._dirty)
        for tags in self._tags:
            tags.clear()
        for bits in self._dirty:
            bits.clear()
        return dirty_count

    def __repr__(self) -> str:
        c = self.config
        return (f"<Cache {c.name}: {c.size_bytes} B, {c.assoc}-way, "
                f"{c.line_size} B lines, miss rate {self.stats.miss_rate:.3f}>")

"""Fully-associative TLB model with LRU replacement.

The paper's host processor has fully-associative 64-entry instruction and
data TLBs; the simulator "accurately models the latency and cache effects
of TLB misses".  We model the hit/miss behaviour here and let the
hierarchy charge the page-walk latency (which itself goes through the
cache model, giving the "cache effects").

Like the caches, the entry store is one insertion-ordered ``dict``
(page -> None, LRU first) so hit, touch, and replacement are all O(1)
instead of a ``list.index`` scan over up to 64 entries per access.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of a fully-associative TLB."""

    name: str
    entries: int = 64
    page_size: int = 4096

    def __post_init__(self):
        if self.entries <= 0:
            raise ValueError(f"{self.name}: entries must be positive")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError(f"{self.name}: page size must be a positive power of two")


@dataclass
class TLBStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.misses = 0


class TLB:
    """Fully-associative, LRU translation lookaside buffer."""

    def __init__(self, config: TLBConfig):
        self.config = config
        self.stats = TLBStats()
        self._page_shift = config.page_size.bit_length() - 1
        # page -> None, insertion-ordered (LRU first, MRU last).
        self._pages: dict = {}

    def access(self, addr: int) -> bool:
        """Translate ``addr``; returns True on hit."""
        page = addr >> self._page_shift
        pages = self._pages
        self.stats.accesses += 1
        if page in pages:
            del pages[page]
            pages[page] = None
            return True
        self.stats.misses += 1
        if len(pages) >= self.config.entries:
            del pages[next(iter(pages))]
        pages[page] = None
        return False

    def flush(self) -> None:
        """Invalidate all entries."""
        self._pages.clear()

    def __repr__(self) -> str:
        c = self.config
        return f"<TLB {c.name}: {c.entries} entries, miss rate {self.stats.miss_rate:.4f}>"

"""Fully-associative TLB model with LRU replacement.

The paper's host processor has fully-associative 64-entry instruction and
data TLBs; the simulator "accurately models the latency and cache effects
of TLB misses".  We model the hit/miss behaviour here and let the
hierarchy charge the page-walk latency (which itself goes through the
cache model, giving the "cache effects").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of a fully-associative TLB."""

    name: str
    entries: int = 64
    page_size: int = 4096

    def __post_init__(self):
        if self.entries <= 0:
            raise ValueError(f"{self.name}: entries must be positive")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError(f"{self.name}: page size must be a positive power of two")


@dataclass
class TLBStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.misses = 0


class TLB:
    """Fully-associative, LRU translation lookaside buffer."""

    def __init__(self, config: TLBConfig):
        self.config = config
        self.stats = TLBStats()
        self._page_shift = config.page_size.bit_length() - 1
        self._pages: list = []

    def access(self, addr: int) -> bool:
        """Translate ``addr``; returns True on hit."""
        page = addr >> self._page_shift
        pages = self._pages
        self.stats.accesses += 1
        try:
            index = pages.index(page)
        except ValueError:
            self.stats.misses += 1
            if len(pages) >= self.config.entries:
                pages.pop(0)
            pages.append(page)
            return False
        pages.append(pages.pop(index))
        return True

    def flush(self) -> None:
        """Invalidate all entries."""
        self._pages.clear()

    def __repr__(self) -> str:
        c = self.config
        return f"<TLB {c.name}: {c.entries} entries, miss rate {self.stats.miss_rate:.4f}>"

"""File sets for the Tar benchmark.

The paper tars a 4 MB set of input files ("tar -cf": create an archive).
We generate a deterministic list of (name, size) pairs plus content
stencils; the tar kernel builds real USTAR headers from them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

#: Paper input size.
PAPER_INPUT_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class FileSpec:
    """One input file for the archive."""

    name: str
    size: int
    mode: int = 0o644
    mtime: int = 1_041_379_200  # 2003-01-01, the paper's year

    def content(self) -> bytes:
        """Deterministic content derived from the name."""
        stencil = (self.name.encode("ascii") + b"\x00") * 8
        reps = self.size // len(stencil) + 1
        return (stencil * reps)[:self.size]


def generate_fileset(total_bytes: int = PAPER_INPUT_BYTES,
                     mean_file_bytes: int = 128 * 1024,
                     seed: int = 5) -> List[FileSpec]:
    """A deterministic set of files summing to ``total_bytes``."""
    if total_bytes <= 0:
        raise ValueError(f"total size must be positive, got {total_bytes}")
    rng = random.Random(seed)
    files: List[FileSpec] = []
    remaining = total_bytes
    index = 0
    while remaining > 0:
        size = min(remaining,
                   max(1024, int(rng.gauss(mean_file_bytes,
                                           mean_file_bytes / 3))))
        files.append(FileSpec(name=f"data/input_{index:04d}.bin", size=size))
        remaining -= size
        index += 1
    return files


def total_size(files: List[FileSpec]) -> int:
    """Sum of the file sizes."""
    return sum(f.size for f in files)

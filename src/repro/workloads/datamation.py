"""Datamation-format records for the Parallel Sort benchmark.

"The data format follows the Datamation benchmark where each record is
100 bytes long with a key of 10 bytes" and keys follow "a unified
[uniform] key distribution".  The sort experiment distributes 16M
records across 4 nodes by key range.
"""

from __future__ import annotations

import random
from typing import List, Sequence

#: Datamation record layout.
RECORD_BYTES = 100
KEY_BYTES = 10

#: Paper problem size: 16M records.
PAPER_NUM_RECORDS = 16 * 1024 * 1024


def generate_keys(num_records: int, seed: int = 17) -> List[bytes]:
    """Uniform 10-byte keys (only keys are materialised)."""
    if num_records <= 0:
        raise ValueError(f"record count must be positive, got {num_records}")
    rng = random.Random(seed)
    return [rng.getrandbits(8 * KEY_BYTES).to_bytes(KEY_BYTES, "big")
            for _ in range(num_records)]


def range_boundaries(num_nodes: int) -> List[bytes]:
    """Upper key bounds splitting the uniform key space into equal ranges."""
    if num_nodes <= 0:
        raise ValueError(f"node count must be positive, got {num_nodes}")
    space = 1 << (8 * KEY_BYTES)
    return [(space * (i + 1) // num_nodes).to_bytes(KEY_BYTES + 1, "big")
            for i in range(num_nodes)]


def assign_node(key: bytes, boundaries: Sequence[bytes]) -> int:
    """Destination node for ``key`` under range partitioning."""
    padded = b"\x00" + key
    for node, bound in enumerate(boundaries):
        if padded < bound:
            return node
    return len(boundaries) - 1


def partition_counts(keys: Sequence[bytes], num_nodes: int) -> List[int]:
    """How many of ``keys`` land on each node."""
    boundaries = range_boundaries(num_nodes)
    counts = [0] * num_nodes
    for key in keys:
        counts[assign_node(key, boundaries)] += 1
    return counts

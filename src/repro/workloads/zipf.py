"""Zipfian key distributions — skewed variants of the paper's workloads.

The paper's sort keys follow "a unified [uniform] key distribution" and
its formula p/(3p-2) assumes balanced ranges.  Real Datamation-style
data is often skewed; a Zipf(s) draw over the key space concentrates
records in few ranges, so a static uniform range partition leaves one
node owning most of the data.  :mod:`repro.experiments.ablations` uses
this to measure how skew erodes the distribution-phase balance for both
the normal and active systems.

The sampler uses the classical inverse-CDF over a truncated harmonic
series, deterministic under a seed.
"""

from __future__ import annotations

import bisect
import random
from typing import List

from .datamation import KEY_BYTES


def zipf_cdf(num_values: int, exponent: float) -> List[float]:
    """Cumulative distribution of Zipf(``exponent``) over ranks
    1..``num_values``."""
    if num_values <= 0:
        raise ValueError("need at least one value")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    weights = [1.0 / (rank ** exponent) for rank in range(1, num_values + 1)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for weight in weights:
        acc += weight
        cdf.append(acc / total)
    return cdf


def generate_zipf_keys(num_records: int, exponent: float = 1.0,
                       num_values: int = 1024,
                       seed: int = 31) -> List[bytes]:
    """10-byte keys whose values follow a Zipf(``exponent``) law.

    ``exponent=0`` degenerates to uniform over the ``num_values``
    distinct keys; larger exponents concentrate mass on low ranks.
    Ranks map to key-space positions via a seeded shuffle so the hot
    keys are scattered (not all in one range by construction).
    """
    if num_records <= 0:
        raise ValueError("need at least one record")
    rng = random.Random(seed)
    cdf = zipf_cdf(num_values, exponent)
    # Scatter ranks across the key space deterministically.
    space = 1 << (8 * KEY_BYTES)
    positions = [space * (i + rng.random()) / num_values
                 for i in range(num_values)]
    rng.shuffle(positions)
    keys = []
    for _ in range(num_records):
        rank = bisect.bisect_left(cdf, rng.random())
        value = min(int(positions[rank]), space - 1)
        keys.append(value.to_bytes(KEY_BYTES, "big"))
    return keys


def partition_imbalance(keys: List[bytes], num_nodes: int) -> float:
    """max/mean records per node under uniform range partitioning.

    1.0 = perfectly balanced; p = everything on one node.
    """
    if num_nodes <= 0:
        raise ValueError("need at least one node")
    counts = [0] * num_nodes
    shift = 8 * KEY_BYTES
    for key in keys:
        counts[(int.from_bytes(key, "big") * num_nodes) >> shift] += 1
    mean = len(keys) / num_nodes
    return max(counts) / mean if mean else 0.0

"""Synthetic MPEG-like video streams.

The paper's MPEG-filter input is a 2 202 640-byte video of I- and
P-frames where "about 63.5% of the total data are P-type frames".  We
generate a byte stream of framed units: an 8-byte header (start code,
frame type, payload length) followed by payload bytes.  The frame mix is
chosen so the P-frame byte fraction matches the target.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

#: Paper input size (bytes).
PAPER_INPUT_BYTES = 2_202_640

#: Paper P-frame byte fraction.
PAPER_P_FRACTION = 0.635

FRAME_HEADER_BYTES = 8
START_CODE = b"\x00\x00\x01"

FRAME_I = ord("I")
FRAME_P = ord("P")
FRAME_B = ord("B")


@dataclass(frozen=True)
class Frame:
    """One video frame."""

    frame_type: int
    offset: int
    total_bytes: int  # header + payload

    @property
    def is_intra(self) -> bool:
        return self.frame_type == FRAME_I


@dataclass
class MpegStream:
    """A generated stream plus its frame index."""

    data: bytes
    frames: List[Frame]

    @property
    def total_bytes(self) -> int:
        return len(self.data)

    def byte_fraction(self, frame_type: int) -> float:
        matching = sum(f.total_bytes for f in self.frames
                       if f.frame_type == frame_type)
        return matching / len(self.data) if self.data else 0.0


def generate_stream(total_bytes: int = PAPER_INPUT_BYTES,
                    p_fraction: float = PAPER_P_FRACTION,
                    mean_frame_bytes: int = 8 * 1024,
                    seed: int = 2003) -> MpegStream:
    """Generate a deterministic I/P stream of ~``total_bytes``.

    Frames alternate following a GOP-like pattern; sizes are drawn so the
    P-type byte share converges to ``p_fraction``.
    """
    if total_bytes < 2 * FRAME_HEADER_BYTES:
        raise ValueError(f"stream too small: {total_bytes}")
    if not 0.0 <= p_fraction < 1.0:
        raise ValueError(f"p_fraction must be in [0, 1), got {p_fraction}")
    rng = random.Random(seed)
    chunks = []
    frames: List[Frame] = []
    offset = 0
    p_bytes = 0
    while offset < total_bytes:
        # Choose the type steering the running P-byte share to target.
        current_fraction = p_bytes / offset if offset else 0.0
        frame_type = FRAME_P if current_fraction < p_fraction else FRAME_I
        size = max(FRAME_HEADER_BYTES + 16,
                   int(rng.gauss(mean_frame_bytes, mean_frame_bytes / 4)))
        size = min(size, total_bytes - offset)
        if size < FRAME_HEADER_BYTES + 1:
            # Absorb the tail into padding on the previous frame.
            break
        payload_len = size - FRAME_HEADER_BYTES
        header = (START_CODE + bytes([frame_type])
                  + payload_len.to_bytes(4, "big"))
        payload = bytes((rng.getrandbits(8) for _ in range(min(payload_len, 64))))
        # Payload content beyond a 64-byte stencil is repetition — the
        # filter only parses headers, so content entropy is irrelevant.
        payload = (payload * (payload_len // len(payload) + 1))[:payload_len]
        chunks.append(header + payload)
        frames.append(Frame(frame_type=frame_type, offset=offset,
                            total_bytes=size))
        if frame_type == FRAME_P:
            p_bytes += size
        offset += size
    return MpegStream(data=b"".join(chunks), frames=frames)


def parse_frames(data: bytes) -> List[Frame]:
    """Re-parse a generated stream from its framing (the filter's job)."""
    frames: List[Frame] = []
    offset = 0
    while offset + FRAME_HEADER_BYTES <= len(data):
        if data[offset:offset + 3] != START_CODE:
            raise ValueError(f"bad start code at offset {offset}")
        frame_type = data[offset + 3]
        payload_len = int.from_bytes(data[offset + 4:offset + 8], "big")
        total = FRAME_HEADER_BYTES + payload_len
        frames.append(Frame(frame_type=frame_type, offset=offset,
                            total_bytes=total))
        offset += total
    return frames

"""Text corpus for the Grep benchmark.

The paper greps one 1 146 880-byte file for the string "Big Red Bear"
and finds exactly 16 matching lines.  The generator produces filler
prose lines and plants the pattern on a configurable number of lines at
deterministic positions.
"""

from __future__ import annotations

import random

#: Paper parameters.
PAPER_FILE_BYTES = 1_146_880
PAPER_PATTERN = "Big Red Bear"
PAPER_MATCH_LINES = 16

_WORDS = (
    "switch active network cluster system disk stream buffer handler "
    "packet message node host processor cache memory data bandwidth "
    "latency request filter search archive record vector"
).split()


def generate_text(total_bytes: int = PAPER_FILE_BYTES,
                  pattern: str = PAPER_PATTERN,
                  match_lines: int = PAPER_MATCH_LINES,
                  mean_line_bytes: int = 64,
                  seed: int = 42) -> bytes:
    """A deterministic text file with exactly ``match_lines`` matches."""
    if total_bytes < (match_lines + 1) * (len(pattern) + 2):
        raise ValueError("file too small for the requested matches")
    rng = random.Random(seed)
    lines = []
    size = 0
    while size < total_bytes:
        words = [rng.choice(_WORDS)
                 for _ in range(max(2, int(rng.gauss(mean_line_bytes / 7, 3))))]
        line = " ".join(words) + "\n"
        lines.append(line)
        size += len(line)
    # Plant the pattern on evenly spaced lines (never adjacent, so each
    # match is on its own line).
    stride = max(1, len(lines) // (match_lines + 1))
    planted = 0
    for i in range(stride, len(lines), stride):
        if planted >= match_lines:
            break
        lines[i] = f"the {pattern} crossed the river\n"
        planted += 1
    if planted < match_lines:
        raise ValueError("could not plant all matches; enlarge the file")
    data = "".join(lines).encode("ascii")
    if len(data) > total_bytes:
        # Trim filler from the end, then restore the final newline.
        data = data[:total_bytes - 1] + b"\n"
    elif len(data) < total_bytes:
        # Planted lines are shorter than the filler they replaced: pad.
        pad = total_bytes - len(data)
        data += b"x" * (pad - 1) + b"\n"
    return data


def count_matching_lines(data: bytes, pattern: str = PAPER_PATTERN) -> int:
    """Reference line-match count (oracle for the grep kernel)."""
    needle = pattern.encode("ascii")
    return sum(1 for line in data.split(b"\n") if needle in line)


def matching_line_bytes(data: bytes, pattern: str = PAPER_PATTERN) -> int:
    """Total bytes of matching lines (what the active handler ships)."""
    needle = pattern.encode("ascii")
    return sum(len(line) + 1 for line in data.split(b"\n") if needle in line)

"""Database tables for the HashJoin and Select benchmarks.

Records are 128 bytes (the paper's record size) with a 4-byte integer
join/selection key at offset 0.  We never materialise the 128 payload
bytes — only keys matter functionally, and the timing model works from
record counts and sizes — but the *key arrays* are real and the kernels
really hash/probe/compare them.

Key distributions are tuned so the paper's bit-vector reduction factor
(0.24: only 24 % of S records survive the filter) and Select selectivity
are reproducible exactly in expectation and measurable in tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

#: Paper record size in bytes.
RECORD_BYTES = 128

#: Paper bit-vector reduction factor for HashJoin.
PAPER_REDUCTION_FACTOR = 0.24

#: Fraction of S records whose range predicate passes in Select
#: (chosen so active I/O traffic is 25 % of normal, as the paper reports).
PAPER_SELECT_SELECTIVITY = 0.25


@dataclass
class Table:
    """A relation: a key array standing in for 128-byte records."""

    name: str
    keys: List[int]

    @property
    def num_records(self) -> int:
        return len(self.keys)

    @property
    def size_bytes(self) -> int:
        return len(self.keys) * RECORD_BYTES


def generate_r_table(size_bytes: int, seed: int = 7) -> Table:
    """The smaller relation R: distinct keys."""
    count = size_bytes // RECORD_BYTES
    if count <= 0:
        raise ValueError(f"R table too small: {size_bytes} bytes")
    rng = random.Random(seed)
    # Distinct keys drawn from a space 8x the table size.
    keys = rng.sample(range(count * 8), count)
    return Table(name="R", keys=keys)


def generate_s_table(size_bytes: int, r_table: Table,
                     pass_fraction: float = PAPER_REDUCTION_FACTOR,
                     seed: int = 11) -> Table:
    """The larger relation S; ``pass_fraction`` of records hit R's filter."""
    count = size_bytes // RECORD_BYTES
    if count <= 0:
        raise ValueError(f"S table too small: {size_bytes} bytes")
    if not 0.0 <= pass_fraction <= 1.0:
        raise ValueError(f"pass fraction must be in [0,1], got {pass_fraction}")
    rng = random.Random(seed)
    r_keys = r_table.keys
    max_r = max(r_keys) + 1
    keys = []
    for _ in range(count):
        if rng.random() < pass_fraction:
            keys.append(rng.choice(r_keys))
        else:
            # Keys guaranteed absent from R's space.
            keys.append(max_r + rng.randrange(1 << 24))
    return Table(name="S", keys=keys)


def generate_select_table(size_bytes: int,
                          selectivity: float = PAPER_SELECT_SELECTIVITY,
                          seed: int = 13) -> Table:
    """A table where ``selectivity`` of records fall in [0, 2**20)."""
    count = size_bytes // RECORD_BYTES
    if count <= 0:
        raise ValueError(f"table too small: {size_bytes} bytes")
    rng = random.Random(seed)
    in_range = 1 << 20
    keys = [rng.randrange(in_range) if rng.random() < selectivity
            else in_range + rng.randrange(1 << 24)
            for _ in range(count)]
    return Table(name="T", keys=keys)


#: The Select benchmark's range predicate bounds.
SELECT_LOW = 0
SELECT_HIGH = 1 << 20


def records_per_block(block_bytes: int) -> int:
    """Whole records carried by one I/O request."""
    return block_bytes // RECORD_BYTES

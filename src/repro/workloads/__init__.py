"""Deterministic synthetic workload generators for the nine benchmarks."""

from . import datamation, files, mpeg, records, text, zipf

__all__ = ["datamation", "files", "mpeg", "records", "text", "zipf"]

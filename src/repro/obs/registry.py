"""MetricsRegistry: named, queryable series with snapshot/diff support.

The simulator already measures plenty — ``TimeWeighted`` integrals,
``BusyTracker`` utilization, per-link ``LinkStats``, per-disk ``DiskStats``
— but each lives on its own component object with its own spelling.  The
registry gives them one namespace: every metric is a *probe*, a zero-arg
callable returning the current value, registered under a dotted name
(``"link.host0->sw0.bytes"``, ``"cpu.sw0.cpu1.busy_ps"``).

Probes are pull-based: registering one costs a dict entry, and nothing is
evaluated until :meth:`MetricsRegistry.snapshot` walks the namespace.  That
keeps the registry free on the simulation hot path — the same
zero-cost-when-idle rule the tracer follows.

Snapshots are plain ``dict``s, so experiments can assert on intermediate
state::

    before = system.metrics.snapshot()
    env.run(until=checkpoint)
    delta = system.metrics.diff(before)
    assert delta["link.host0->sw0.bytes"] <= budget
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Mapping, Optional

Probe = Callable[[], float]


class MetricsCounter:
    """A tiny push-style counter for call sites with no stats object.

    Created via :meth:`MetricsRegistry.counter`; incrementing is one
    attribute add, and the registry reads :attr:`value` at snapshot time.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, initial: float = 0):
        self.name = name
        self.value = initial

    def add(self, amount: float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"MetricsCounter({self.name!r}, value={self.value!r})"


class MetricsRegistry:
    """A namespace of named metric probes with snapshot/diff support."""

    def __init__(self) -> None:
        self._probes: Dict[str, Probe] = {}

    # -- registration --------------------------------------------------

    def register(self, name: str, probe: Probe) -> Probe:
        """Register ``probe`` (a zero-arg callable) under ``name``.

        Re-registering a name replaces the previous probe, so components
        that are rebuilt (e.g. per-case ``System`` construction) stay
        idempotent.
        """
        if not callable(probe):
            raise TypeError(f"probe for {name!r} must be callable")
        self._probes[name] = probe
        return probe

    def counter(self, name: str, initial: float = 0) -> MetricsCounter:
        """Create, register, and return a push-style counter."""
        counter = MetricsCounter(name, initial)
        self.register(name, lambda: counter.value)
        return counter

    def register_stats(self, prefix: str, obj: object,
                       fields: Optional[List[str]] = None) -> None:
        """Register every numeric public attribute of a stats object.

        ``fields`` restricts the attribute list; otherwise all public
        int/float attributes (including properties) are probed.  Each one
        becomes ``f"{prefix}.{field}"``.
        """
        if fields is None:
            fields = [n for n in dir(obj)
                      if not n.startswith("_")
                      and isinstance(getattr(obj, n, None), (int, float))
                      and not isinstance(getattr(obj, n), bool)]
        for name in fields:
            self.register(f"{prefix}.{name}",
                          lambda o=obj, n=name: getattr(o, n))

    def unregister(self, name: str) -> None:
        self._probes.pop(name, None)

    # -- query ---------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._probes)

    def value(self, name: str) -> float:
        """Evaluate one probe now."""
        return self._probes[name]()

    def __contains__(self, name: str) -> bool:
        return name in self._probes

    def __len__(self) -> int:
        return len(self._probes)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._probes))

    # -- snapshot / diff -----------------------------------------------

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, float]:
        """Evaluate every probe (optionally restricted to a dotted prefix)
        and return ``{name: value}`` sorted by name."""
        names = self.names()
        if prefix is not None:
            dotted = prefix + "."
            names = [n for n in names
                     if n == prefix or n.startswith(dotted)]
        return {name: self._probes[name]() for name in names}

    def diff(self, before: Mapping[str, float],
             after: Optional[Mapping[str, float]] = None,
             ) -> Dict[str, float]:
        """Per-metric change between two snapshots.

        ``after`` defaults to a fresh :meth:`snapshot`.  Only metrics whose
        value changed appear; metrics present in just one snapshot are
        treated as starting (or ending) at 0.
        """
        if after is None:
            after = self.snapshot()
        out: Dict[str, float] = {}
        for name in sorted(set(before) | set(after)):
            delta = after.get(name, 0) - before.get(name, 0)
            if delta:
                out[name] = delta
        return out

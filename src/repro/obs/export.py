"""Trace exporters: Chrome ``trace_event`` JSON, CSV, and a validating loader.

The Chrome export targets the JSON *object* format (``{"traceEvents":
[...]}``) understood by Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``.  The mapping from the structured schema:

===========  =====================================================
schema       Chrome event
===========  =====================================================
span         ``ph="X"`` complete event, ``ts``/``dur`` in microseconds
instant      ``ph="i"`` with thread scope (``s="t"``)
counter      ``ph="C"`` with ``args={"value": ...}``
component    ``tid`` (one thread track per component, named via
             ``thread_name`` metadata)
case label   ``pid`` (one process per traced case, named via
             ``process_name`` metadata)
===========  =====================================================

Chrome's ``ts`` field is a float in microseconds, which cannot represent
picosecond integers exactly; the exporter therefore also stores the exact
``ts_ps``/``dur_ps`` integers inside each event's ``args``, and
:func:`load_chrome_trace` reconstructs collectors from those — a
write/load round trip is lossless (verified by ``tests/obs``).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Mapping, Tuple, Union

from .trace import (
    PHASE_COUNTER,
    PHASE_INSTANT,
    PHASE_SPAN,
    SCHEMA_VERSION,
    TraceCollector,
    TraceEvent,
)

_PS_PER_US = 1_000_000

TraceInput = Union[TraceCollector, Mapping[str, TraceCollector]]


def _as_mapping(traces: TraceInput) -> "Dict[str, TraceCollector]":
    if isinstance(traces, TraceCollector):
        return {"trace": traces}
    return dict(traces)


def to_chrome_trace(traces: TraceInput) -> Dict[str, Any]:
    """Convert collector(s) to a Chrome ``trace_event`` JSON document.

    ``traces`` is either one :class:`TraceCollector` or a mapping of case
    label -> collector (as produced by ``repro.run(trace=True)``); each
    label becomes a Perfetto process, each component a named thread track.
    """
    mapping = _as_mapping(traces)
    events: List[Dict[str, Any]] = []
    dropped_total = 0
    for pid, (label, collector) in enumerate(mapping.items()):
        dropped_total += collector.dropped
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
        tids: Dict[str, int] = {}
        for component in collector.components():
            tid = tids.setdefault(component, len(tids))
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": component},
            })
            events.append({
                "ph": "M", "name": "thread_sort_index", "pid": pid,
                "tid": tid, "args": {"sort_index": tid},
            })
        for event in collector:
            out: Dict[str, Any] = {
                "ph": event.phase,
                "name": event.name,
                "cat": event.category,
                "pid": pid,
                "tid": tids[event.component],
                "ts": event.ts_ps / _PS_PER_US,
            }
            args = dict(event.args)
            args["ts_ps"] = event.ts_ps
            if event.phase == PHASE_SPAN:
                out["dur"] = event.dur_ps / _PS_PER_US
                args["dur_ps"] = event.dur_ps
            elif event.phase == PHASE_INSTANT:
                out["s"] = "t"
            out["args"] = args
            events.append(out)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "schema_version": SCHEMA_VERSION,
            "clock": "picoseconds (exact values in args.ts_ps/args.dur_ps)",
            "dropped_events": dropped_total,
        },
    }


def write_chrome_trace(path: str, traces: TraceInput) -> Dict[str, Any]:
    """Serialise collector(s) to ``path`` as Chrome-trace JSON.

    Returns the document that was written.
    """
    document = to_chrome_trace(traces)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=None, separators=(",", ":"))
        fh.write("\n")
    return document


def validate_chrome_trace(document: Any) -> List[str]:
    """Check a parsed document against the exported schema.

    Returns a list of human-readable problems; an empty list means the
    document is a valid Chrome trace as this library emits them (and will
    load in Perfetto).
    """
    errors: List[str] = []
    if not isinstance(document, dict):
        return [f"top level must be an object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    other = document.get("otherData", {})
    version = other.get("schema_version") if isinstance(other, dict) else None
    if version != SCHEMA_VERSION:
        errors.append(f"otherData.schema_version is {version!r}, "
                      f"expected {SCHEMA_VERSION}")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "i", "C", "M"):
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        if phase == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric ts")
        args = event.get("args")
        if not isinstance(args, dict):
            errors.append(f"{where}: missing args object")
            continue
        if not isinstance(args.get("ts_ps"), int):
            errors.append(f"{where}: args.ts_ps must be an integer")
        if phase == "X":
            if not isinstance(event.get("dur"), (int, float)):
                errors.append(f"{where}: span missing numeric dur")
            if not isinstance(args.get("dur_ps"), int):
                errors.append(f"{where}: span args.dur_ps must be an integer")
        if phase == "C" and not isinstance(args.get("value"), (int, float)):
            errors.append(f"{where}: counter missing numeric args.value")
    return errors


def load_chrome_trace(path: str) -> Dict[str, TraceCollector]:
    """Load a Chrome-trace JSON file written by :func:`write_chrome_trace`.

    Validates the document (raising ``ValueError`` with the problem list on
    failure) and reconstructs the exact collectors — integer picosecond
    timestamps come back from ``args.ts_ps``/``args.dur_ps``, not from the
    rounded microsecond ``ts``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    errors = validate_chrome_trace(document)
    if errors:
        raise ValueError("invalid Chrome trace: " + "; ".join(errors[:5]))

    process_names: Dict[int, str] = {}
    thread_names: Dict[Tuple[int, int], str] = {}
    for event in document["traceEvents"]:
        if event["ph"] != "M":
            continue
        if event["name"] == "process_name":
            process_names[event["pid"]] = event["args"]["name"]
        elif event["name"] == "thread_name":
            thread_names[(event["pid"], event["tid"])] = event["args"]["name"]

    out: Dict[str, TraceCollector] = {}
    for event in document["traceEvents"]:
        phase = event["ph"]
        if phase == "M":
            continue
        pid = event["pid"]
        label = process_names.get(pid, f"pid{pid}")
        collector = out.setdefault(label, TraceCollector())
        component = thread_names.get((pid, event["tid"]),
                                     f"tid{event['tid']}")
        args = dict(event["args"])
        ts_ps = args.pop("ts_ps")
        dur_ps = args.pop("dur_ps", 0)
        if phase == PHASE_COUNTER:
            collector.counter(component, event["name"], ts_ps, args["value"])
        elif phase == PHASE_INSTANT:
            collector.instant(component, event["name"], ts_ps, **args)
        else:
            collector.span(component, event["name"], ts_ps, dur_ps, **args)
    dropped = document.get("otherData", {}).get("dropped_events", 0)
    if dropped and len(out) == 1:
        next(iter(out.values())).dropped = dropped
    return out


_CSV_FIELDS = ("phase", "component", "name", "ts_ps", "dur_ps", "args")


def trace_csv(traces: TraceInput) -> str:
    """Render collector(s) as CSV text.

    Columns: ``case, phase, component, name, ts_ps, dur_ps, args`` with
    ``args`` as a compact JSON object.  Rows are in emit order per case.
    """
    mapping = _as_mapping(traces)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(("case",) + _CSV_FIELDS)
    for label, collector in mapping.items():
        for event in collector:
            writer.writerow((
                label, event.phase, event.component, event.name,
                event.ts_ps, event.dur_ps,
                json.dumps(dict(event.args), sort_keys=True),
            ))
    return buf.getvalue()


def write_trace_csv(path: str, traces: TraceInput) -> None:
    """Write :func:`trace_csv` output to ``path``."""
    with open(path, "w", encoding="utf-8", newline="") as fh:
        fh.write(trace_csv(traces))

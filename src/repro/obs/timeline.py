"""Terminal timeline rendering and trace-derived breakdowns.

Two views of the same trace:

* :func:`render_timeline` — an ASCII occupancy strip per component, the
  "where did the time go" picture without leaving the terminal.  ``#``
  marks buckets covered by a span, ``.`` buckets that only saw instants,
  and each row ends with the component's busy fraction.
* :func:`timeline_breakdown` — per-component busy/stall/idle picosecond
  totals recovered from the ``busy_ps``/``stall_ps`` attribution that CPU
  work and handler spans carry.  This is the paper's execution-time
  breakdown recomputed from a trace instead of from end-of-run
  accounting; the two must agree, and the determinism tests check it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .trace import PHASE_COUNTER, PHASE_SPAN, TraceCollector


def _busy_ps(collector: TraceCollector, component: str) -> int:
    """Total span-covered time on a component (overlaps merged)."""
    spans = sorted((e.ts_ps, e.end_ps)
                   for e in collector.select(component=component,
                                             phase=PHASE_SPAN))
    total = 0
    cursor = None
    for start, end in spans:
        if cursor is None or start > cursor:
            total += end - start
            cursor = end
        elif end > cursor:
            total += end - cursor
            cursor = end
    return total


def render_timeline(collector: TraceCollector, width: int = 64,
                    components: Optional[List[str]] = None) -> str:
    """Render an ASCII occupancy timeline, one row per component."""
    start, end = collector.span_ps()
    window = max(end - start, 1)
    if components is None:
        components = collector.components()
    if not components:
        return "(empty trace)"
    label_w = max(len(c) for c in components)
    header = (f"{'':{label_w}}  |{'-' * (width - 2)}|  "
              f"{window / 1e6:.3f} us window, {len(collector)} events")
    lines = [header]
    for component in components:
        cells = [" "] * width
        for event in collector.select(component=component):
            lo = (event.ts_ps - start) * width // window
            hi = (event.end_ps - start) * width // window
            lo = min(max(lo, 0), width - 1)
            hi = min(max(hi, lo), width - 1)
            if event.phase == PHASE_SPAN:
                for i in range(lo, hi + 1):
                    cells[i] = "#"
            elif cells[lo] == " ":
                cells[lo] = "."
        busy = _busy_ps(collector, component) / window
        lines.append(f"{component:{label_w}}  {''.join(cells)}  "
                     f"{busy * 100:5.1f}%")
    return "\n".join(lines)


def timeline_table(collector: TraceCollector) -> str:
    """Per-component event/span statistics as an aligned text table."""
    start, end = collector.span_ps()
    window = max(end - start, 1)
    components = collector.components()
    if not components:
        return "(empty trace)"
    rows = [("component", "events", "spans", "busy_us", "busy%")]
    for component in components:
        events = collector.select(component=component)
        spans = [e for e in events if e.phase == PHASE_SPAN]
        busy = _busy_ps(collector, component)
        rows.append((component, str(len(events)), str(len(spans)),
                     f"{busy / 1e6:.3f}", f"{busy / window * 100:.1f}"))
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[j]) if j == 0
                               else cell.rjust(widths[j])
                               for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def timeline_breakdown(collector: TraceCollector,
                       total_ps: Optional[int] = None,
                       ) -> Dict[str, Dict[str, float]]:
    """Recover per-component busy/stall/idle totals from span attribution.

    Sums the ``busy_ps``/``stall_ps`` args that ``cpu.work`` and
    ``handler`` spans carry.  ``total_ps`` defaults to the trace window;
    idle is whatever the spans do not explain.  Returns ``{component:
    {"busy_ps": ..., "stall_ps": ..., "idle_ps": ..., "total_ps": ...}}``.
    """
    start, end = collector.span_ps()
    if total_ps is None:
        total_ps = end - start
    # A switch CPU carries both "handler" spans and the "cpu.work" spans
    # nested inside them; both are attributed, so summing every span
    # would double-count.  Where handler spans exist they are the
    # authoritative (outermost) attribution for that component.
    handler_components = {e.component
                          for e in collector.select(name="handler",
                                                    phase=PHASE_SPAN)}
    out: Dict[str, Dict[str, float]] = {}
    for event in collector.select(phase=PHASE_SPAN):
        busy = event.get("busy_ps")
        stall = event.get("stall_ps")
        if busy is None and stall is None:
            continue
        if (event.component in handler_components
                and event.name != "handler"):
            continue
        row = out.setdefault(event.component, {
            "busy_ps": 0, "stall_ps": 0, "idle_ps": 0,
            "total_ps": total_ps,
        })
        row["busy_ps"] += busy or 0
        row["stall_ps"] += stall or 0
    for row in out.values():
        row["idle_ps"] = max(
            row["total_ps"] - row["busy_ps"] - row["stall_ps"], 0)
    return out


def counter_series(collector: TraceCollector, name: str,
                   component: Optional[str] = None) -> List[tuple]:
    """Extract one counter series as ``[(ts_ps, value), ...]``."""
    return [(e.ts_ps, e.get("value"))
            for e in collector.select(name=name, component=component,
                                      phase=PHASE_COUNTER)]

"""Structured trace schema: typed events and the in-memory collector.

The schema is deliberately small — three phases, borrowed from the Chrome
``trace_event`` format so the export is a straight mapping:

``"X"`` (span)
    Something with duration: a handler running on a switch CPU, a packet
    on a wire, a disk access.  ``ts_ps`` is the start, ``dur_ps`` the length.
``"i"`` (instant)
    A point event: a dispatch decision, a block arrival, a fault.
``"C"`` (counter)
    A sampled series: event-heap occupancy, queue depths.

Every event carries a ``component`` (the timeline track it belongs to —
``"sw0.cpu0"``, ``"host0"``, ``"disk0.0"``, ``"sim"``) and a ``name`` (the
event type — ``"handler"``, ``"link.xmit"``, ``"disk.read"``).  Names are
dotted, ``<subsystem>.<what>``, and the subsystem prefix becomes the Chrome
category.  Extra fields (packet ids, byte counts, cycle attribution) ride
in ``args`` as a sorted tuple of pairs so events hash and compare cleanly.

All timestamps are integer picoseconds, same as the simulator clock: a
trace is exact, never rounded, and the exporter preserves the integers even
though Chrome's own ``ts`` field is microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

PHASE_SPAN = "X"
PHASE_INSTANT = "i"
PHASE_COUNTER = "C"

_PHASES = (PHASE_SPAN, PHASE_INSTANT, PHASE_COUNTER)

#: Version of the event schema; embedded in exports and checked on load.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace event.

    Immutable and hashable: two identical runs produce equal event
    sequences, which is what the determinism tests assert on.
    """

    phase: str
    component: str
    name: str
    ts_ps: int
    dur_ps: int = 0
    args: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.phase not in _PHASES:
            raise ValueError(
                f"unknown trace phase {self.phase!r}; expected one of "
                f"{_PHASES}")
        if self.ts_ps < 0 or self.dur_ps < 0:
            raise ValueError("trace timestamps must be non-negative")

    @property
    def end_ps(self) -> int:
        """Span end time (== ``ts_ps`` for instants and counters)."""
        return self.ts_ps + self.dur_ps

    @property
    def category(self) -> str:
        """The subsystem prefix of the dotted name (``"link.xmit"`` ->
        ``"link"``); the bare name when there is no dot."""
        head, _, _ = self.name.partition(".")
        return head

    def get(self, key: str, default: Any = None) -> Any:
        """Look up one ``args`` field by name."""
        for k, v in self.args:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (args expanded) for ad-hoc inspection."""
        out: Dict[str, Any] = {
            "phase": self.phase,
            "component": self.component,
            "name": self.name,
            "ts_ps": self.ts_ps,
            "dur_ps": self.dur_ps,
        }
        out.update(dict(self.args))
        return out


def _freeze_args(kwargs: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(kwargs.items()))


@dataclass
class TraceCollector:
    """In-memory sink for structured trace events.

    Attach one to an environment (``env.trace = collector``, or
    ``System.attach_trace`` / ``repro.run(trace=True)`` higher up) and the
    instrumented components start emitting.  ``capacity`` bounds memory the
    same way the legacy ``Tracer`` did: once full, *new* events are dropped
    and counted in :attr:`dropped` — the head of the trace survives, and
    the drop count is folded into ``System.reliability_report()``.
    """

    capacity: Optional[int] = None
    events: List[TraceEvent] = field(default_factory=list)
    dropped: int = 0

    # -- emit ----------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        """Append one event, honouring the capacity bound."""
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)

    def span(self, component: str, name: str, start_ps: int, dur_ps: int,
             **args: Any) -> None:
        """Record a complete span (phase ``"X"``)."""
        self.emit(TraceEvent(PHASE_SPAN, component, name, start_ps, dur_ps,
                             _freeze_args(args)))

    def instant(self, component: str, name: str, ts_ps: int,
                **args: Any) -> None:
        """Record a point event (phase ``"i"``)."""
        self.emit(TraceEvent(PHASE_INSTANT, component, name, ts_ps, 0,
                             _freeze_args(args)))

    def counter(self, component: str, name: str, ts_ps: int,
                value: float) -> None:
        """Record one sample of a counter series (phase ``"C"``)."""
        self.emit(TraceEvent(PHASE_COUNTER, component, name, ts_ps, 0,
                             (("value", value),)))

    # -- query ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def select(self, name: Optional[str] = None,
               component: Optional[str] = None,
               phase: Optional[str] = None) -> List[TraceEvent]:
        """Events matching every given filter (None matches anything)."""
        return [e for e in self.events
                if (name is None or e.name == name)
                and (component is None or e.component == component)
                and (phase is None or e.phase == phase)]

    def count(self, name: Optional[str] = None) -> int:
        if name is None:
            return len(self.events)
        return sum(1 for e in self.events if e.name == name)

    def components(self) -> List[str]:
        """Distinct components in first-seen order (the timeline tracks)."""
        seen: Dict[str, None] = {}
        for e in self.events:
            if e.component not in seen:
                seen[e.component] = None
        return list(seen)

    def names(self) -> List[str]:
        """Distinct event names in first-seen order."""
        seen: Dict[str, None] = {}
        for e in self.events:
            if e.name not in seen:
                seen[e.name] = None
        return list(seen)

    def span_ps(self) -> Tuple[int, int]:
        """(earliest start, latest end) over all events; (0, 0) if empty."""
        if not self.events:
            return (0, 0)
        start = min(e.ts_ps for e in self.events)
        end = max(e.end_ps for e in self.events)
        return (start, end)

    def summary(self) -> Dict[str, int]:
        """Event counts keyed by name, plus ``"dropped"`` when nonzero."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.name] = out.get(e.name, 0) + 1
        if self.dropped:
            out["dropped"] = self.dropped
        return out

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

"""repro.obs — the observability subsystem: structured tracing, exporters,
terminal timelines, and the metrics registry.

This package supersedes the freeform ``repro.sim.trace.Tracer`` (kept as a
deprecated shim).  The pieces:

* :mod:`repro.obs.trace` — the typed event schema (``TraceEvent``) and the
  in-memory sink (``TraceCollector``) with span/instant/counter phases.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (loads in Perfetto
  and ``chrome://tracing``), CSV, plus a validating loader that round-trips
  events losslessly.
* :mod:`repro.obs.timeline` — terminal timeline rendering and per-component
  busy/stall/idle attribution recovered from a trace.
* :mod:`repro.obs.registry` — ``MetricsRegistry``: named, queryable series
  over the scattered ``TimeWeighted``/``BusyTracker``/stats objects, with
  snapshot/diff support.

Tracing is off by default and zero-cost when disabled: every emit site is
gated on ``env.trace is None`` and the DES drain loop is untouched unless a
collector is attached.  See ``docs/observability.md``.
"""

from .trace import (
    PHASE_COUNTER,
    PHASE_INSTANT,
    PHASE_SPAN,
    SCHEMA_VERSION,
    TraceCollector,
    TraceEvent,
)
from .export import (
    load_chrome_trace,
    to_chrome_trace,
    trace_csv,
    validate_chrome_trace,
    write_chrome_trace,
    write_trace_csv,
)
from .registry import MetricsCounter, MetricsRegistry
from .timeline import render_timeline, timeline_breakdown, timeline_table

__all__ = [
    "PHASE_COUNTER",
    "PHASE_INSTANT",
    "PHASE_SPAN",
    "SCHEMA_VERSION",
    "TraceCollector",
    "TraceEvent",
    "load_chrome_trace",
    "to_chrome_trace",
    "trace_csv",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_trace_csv",
    "MetricsCounter",
    "MetricsRegistry",
    "render_timeline",
    "timeline_breakdown",
    "timeline_table",
]

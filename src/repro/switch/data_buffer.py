"""On-chip data buffers — the central staging area for switch processors.

The paper: "Each data buffer is an independently managed chunk of memory
equipped with cache-line based valid bits to allow more parallelism and
pipelined data transfers.  When a line of data is ready, its
corresponding valid bit is set.  Accessing an invalid line in a data
buffer will stall the switch CPU until that line becomes valid."

There are 16 buffers of 512 bytes (one network MTU) each.  Incoming
data streams into a buffer line by line at crossbar bandwidth; a handler
reading ahead of the fill point blocks on the valid bits.  Reads from a
*valid* line never miss — this is how the design eliminates cold misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.core import Environment
from ..sim.resources import Store
from ..sim.units import transfer_ps

#: Paper parameters.
NUM_BUFFERS = 16
BUFFER_BYTES = 512
VALID_LINE_BYTES = 64


@dataclass
class BufferPoolStats:
    allocations: int = 0
    frees: int = 0
    peak_in_use: int = 0


class BufferError(Exception):
    """Misuse of the data-buffer pool."""


class DataBuffer:
    """One 512-byte buffer with per-line valid bits."""

    def __init__(self, env: Environment, buffer_id: int,
                 size: int = BUFFER_BYTES, line: int = VALID_LINE_BYTES):
        self.env = env
        self.buffer_id = buffer_id
        self.size = size
        self.line = line
        self.valid_bytes = 0
        self.payload = None
        self._waiters = []  # (threshold, event)
        #: Bumped by reset(); an in-flight fill from a previous tenancy
        #: stops dead instead of validating the new tenant's lines.
        self._generation = 0

    def reset(self) -> None:
        """Recycle the buffer for a new message."""
        self.valid_bytes = 0
        self.payload = None
        self._waiters.clear()
        self._generation += 1

    def mark_all_valid(self) -> None:
        """Instantly validate the whole buffer (zero-copy local compose)."""
        self.valid_bytes = self.size
        self._wake()

    def _wake(self) -> None:
        ready = [w for w in self._waiters if w[0] <= self.valid_bytes]
        self._waiters = [w for w in self._waiters if w[0] > self.valid_bytes]
        for _, event in ready:
            event.succeed()

    def fill(self, nbytes: int, bandwidth_bytes_per_s: float):
        """Stream ``nbytes`` in, validating one line at a time.

        Generator process: models the crossbar copying the payload into
        the buffer while the CPU may already be reading behind the fill
        point.
        """
        if nbytes > self.size:
            raise BufferError(
                f"fill of {nbytes} B exceeds buffer size {self.size} B")
        line_time = transfer_ps(self.line, bandwidth_bytes_per_s)
        generation = self._generation
        remaining = nbytes
        while remaining > 0:
            chunk = min(self.line, remaining)
            yield self.env.timeout(
                line_time if chunk == self.line
                else transfer_ps(chunk, bandwidth_bytes_per_s))
            if self._generation != generation:
                # The buffer was released and recycled mid-fill (handler
                # crash cleanup): this stream's remaining lines must not
                # corrupt the next tenant's valid bits.
                return
            self.valid_bytes += chunk
            remaining -= chunk
            self._wake()

    def wait_valid(self, upto_bytes: int):
        """Block (stalling the reading CPU) until ``upto_bytes`` are valid."""
        if upto_bytes > self.size:
            raise BufferError(
                f"cannot wait for {upto_bytes} B in a {self.size} B buffer")
        if self.valid_bytes >= upto_bytes:
            return
            yield  # pragma: no cover
        event = self.env.event()
        self._waiters.append((upto_bytes, event))
        yield event

    def __repr__(self) -> str:
        return (f"<DataBuffer {self.buffer_id}: "
                f"{self.valid_bytes}/{self.size} B valid>")


class DataBufferPool:
    """The Data Buffer Administrator (DBA): allocation and release.

    "A data buffer administrator ... aids in buffer allocation and
    de-allocation."  Allocation blocks when all 16 buffers are busy,
    which back-pressures the input ports (and is why streaming handlers
    must release buffers promptly).
    """

    def __init__(self, env: Environment, count: int = NUM_BUFFERS,
                 size: int = BUFFER_BYTES):
        if count < 2:
            raise ValueError(
                "need at least 2 data buffers (one input, one output stream)")
        self.env = env
        self.count = count
        self.stats = BufferPoolStats()
        self._free: Store = Store(env)
        self._buffers = [DataBuffer(env, i, size=size) for i in range(count)]
        for buffer in self._buffers:
            self._free.items.append(buffer)

    @property
    def free_count(self) -> int:
        return len(self._free.items)

    @property
    def in_use(self) -> int:
        return self.count - self.free_count

    def allocate(self):
        """Claim a buffer (generator; blocks when none are free)."""
        buffer = yield self._free.get()
        buffer.reset()
        self.stats.allocations += 1
        self.stats.peak_in_use = max(self.stats.peak_in_use, self.in_use)
        return buffer

    def release(self, buffer: DataBuffer) -> None:
        """Return a buffer to the free pool."""
        if buffer in self._free.items:
            raise BufferError(f"double free of buffer {buffer.buffer_id}")
        self.stats.frees += 1
        self._free.put(buffer)

    def __repr__(self) -> str:
        return f"<DataBufferPool {self.in_use}/{self.count} in use>"

"""The active switch — the paper's core contribution.

Extends the conventional output-queued switch with the unshaded
components of Figure 2:

* 1-4 embedded :class:`SwitchCPU` cores (500 MHz, tiny I/D caches);
* 16 x 512 B on-chip :class:`DataBuffer`\\ s with per-line valid bits,
  managed by the DBA (:class:`DataBufferPool`);
* a per-CPU 16-entry direct-mapped :class:`AddressTranslationBuffer`;
* a :class:`JumpTable` + dispatch unit (:class:`CpuScheduler`) that
  invoke handlers message-driven style from the 6-bit handler ID;
* a :class:`SendUnit` that injects CPU-composed messages through the
  (N+1) x N crossbar.

Any packet whose destination is the switch itself is an active message:
the crossbar steers its payload into a free data buffer (line-by-line,
setting valid bits) while the header goes to the dispatch unit in
parallel — so a handler can begin processing before the copy completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..cpu.switch_cpu import SwitchCPU
from ..net.packet import MTU, Message, Packet
from ..sim.core import Environment
from ..sim.trace import GLOBAL_TRACER, Tracer
from ..sim.units import transfer_ps
from .atb import AddressTranslationBuffer
from .base import BaseSwitch, SwitchConfig
from .data_buffer import DataBufferPool
from .dispatch import CpuScheduler, DispatchError, JumpTable
from .handler import HandlerContext
from .send_unit import SendUnit


@dataclass(frozen=True)
class ActiveSwitchConfig:
    """Parameters of the active additions ("we support up to 4 switch
    processors per active switch")."""

    num_cpus: int = 1
    num_buffers: int = 16
    crossbar_bandwidth_bytes_per_s: float = 1.0e9
    #: Embedded-core clock (paper: 500 MHz, a quarter of the host's).
    cpu_freq_hz: float = 500_000_000.0

    def __post_init__(self):
        if not 1 <= self.num_cpus <= 4:
            raise ValueError("active switch supports 1-4 switch CPUs")
        if self.num_buffers < 2:
            raise ValueError("need at least 2 data buffers (one in, one out)")
        if self.crossbar_bandwidth_bytes_per_s <= 0:
            raise ValueError("crossbar bandwidth must be positive")
        if self.cpu_freq_hz <= 0:
            raise ValueError("switch CPU frequency must be positive")


class ActiveSwitch(BaseSwitch):
    """An 8-port active I/O switch."""

    def __init__(self, env: Environment, name: str,
                 config: SwitchConfig = SwitchConfig(),
                 active_config: ActiveSwitchConfig = ActiveSwitchConfig(),
                 tracer: Optional[Tracer] = None):
        super().__init__(env, name, config)
        self.active_config = active_config
        self.tracer = tracer if tracer is not None else GLOBAL_TRACER
        from ..sim.units import Clock
        self.cpus: List[SwitchCPU] = [
            SwitchCPU(env, cpu_id=i, name=f"{name}-cpu",
                      clock=Clock(active_config.cpu_freq_hz))
            for i in range(active_config.num_cpus)
        ]
        self._atbs: Dict[int, AddressTranslationBuffer] = {
            cpu.cpu_id: AddressTranslationBuffer() for cpu in self.cpus
        }
        self.buffers = DataBufferPool(env, count=active_config.num_buffers)
        self.jump_table = JumpTable()
        self.scheduler = CpuScheduler(env, self.cpus)
        self.send_unit = SendUnit(self)
        #: Embedded-kernel state (pre-allocated handler data; see
        #: HandlerContext.kernel_state).
        self.kernel_state: Dict[str, object] = {}
        self._msg_cpu: Dict[int, SwitchCPU] = {}
        self._mapping_waiters: Dict[Tuple[int, int], list] = {}

    # ------------------------------------------------------------------
    # Handler registration (done by the embedded kernel at boot)
    # ------------------------------------------------------------------
    def register_handler(self, handler_id: int, handler: Callable) -> None:
        """Install ``handler(ctx)`` in the jump table."""
        self.jump_table.register(handler_id, handler)

    # ------------------------------------------------------------------
    # ATB plumbing
    # ------------------------------------------------------------------
    def atb_for(self, cpu: SwitchCPU) -> AddressTranslationBuffer:
        """The ATB belonging to ``cpu``."""
        return self._atbs[cpu.cpu_id]

    def wait_mapping(self, address: int, cpu: SwitchCPU):
        """Block until ``address`` gets mapped into ``cpu``'s ATB."""
        atb = self.atb_for(cpu)
        if atb.is_mapped(address):
            return
            yield  # pragma: no cover
        base = address - address % MTU
        event = self.env.event()
        self._mapping_waiters.setdefault((cpu.cpu_id, base), []).append(event)
        yield event

    def _wait_mappable(self, cpu: SwitchCPU, address: int):
        """Stall until ``address``'s direct-mapped ATB entry is free."""
        atb = self.atb_for(cpu)
        while not atb.can_map(address):
            freed = self.env.event()
            atb.on_release(lambda e=freed: e.succeed()
                           if not e.triggered else None)
            yield freed

    def _map_buffer_blocking(self, cpu: SwitchCPU, address: int, buffer):
        """Map a region, stalling (backpressure) on direct-mapped
        conflicts until the aliasing entry is deallocated.

        Callers that also claim a data buffer must wait via
        :meth:`_wait_mappable` *before* allocating it (deadlock
        discipline); by then this map is normally immediate, but the
        loop covers the race where another stream takes the entry in
        between.
        """
        yield from self._wait_mappable(cpu, address)
        self.atb_for(cpu).map(address, buffer)
        base = address - address % MTU
        for event in self._mapping_waiters.pop((cpu.cpu_id, base), []):
            event.succeed()

    # ------------------------------------------------------------------
    # Active datapath
    # ------------------------------------------------------------------
    def crossbar_transfer_ps(self, nbytes: int) -> int:
        """Time to move ``nbytes`` across the crossbar."""
        return transfer_ps(nbytes, self.active_config.crossbar_bandwidth_bytes_per_s)

    def deliver_local(self, packet: Packet, in_port: int):
        """Accept an active message: buffer the payload, dispatch the
        handler (first packet) or extend the mapped stream (later
        packets)."""
        self.stats.delivered_local += 1
        if packet.active is None:
            raise DispatchError(
                f"{self.name}: packet addressed to switch has no active header")

        # Deadlock discipline: never hold a data buffer while stalled on
        # an ATB conflict — wait for the entry first, then claim the
        # buffer (otherwise two multi-region streams can each hold part
        # of the pool while waiting for the other's entries).
        def stage_payload(cpu, address):
            if packet.payload_bytes <= 0:
                return None
                yield  # pragma: no cover
            atb = self.atb_for(cpu)
            while True:
                yield from self._wait_mappable(cpu, address)
                buffer = yield from self.buffers.allocate()
                if atb.can_map(address):
                    break
                # Lost the entry while waiting for a buffer: never hold
                # a buffer while stalled on the ATB, or two multi-region
                # streams can deadlock the pool.
                self.buffers.release(buffer)
            buffer.payload = packet.payload
            self.env.process(
                buffer.fill(packet.payload_bytes,
                            self.active_config.crossbar_bandwidth_bytes_per_s),
                name=f"{self.name}-fill")
            yield from self._map_buffer_blocking(cpu, address, buffer)
            return buffer

        if packet.seq == 0:
            # Header to the dispatch unit, in parallel with the copy.
            cpu = self.scheduler.pick(packet.active.cpu_id)
            self.tracer.record(self.env.now, "dispatch",
                               switch=self.name,
                               handler_id=packet.active.handler_id,
                               cpu=cpu.cpu_id, src=packet.src)
            self._msg_cpu[packet.message_id] = cpu
            yield from stage_payload(cpu, packet.active.address)
            total = (packet.message_bytes if packet.message_bytes is not None
                     else packet.payload_bytes)
            message = Message(src=packet.src, dst=packet.dst,
                              size_bytes=total,
                              active=packet.active, payload=packet.payload)
            handler = self.jump_table.lookup(packet.active.handler_id)

            def make_generator(chosen_cpu, _message=message, _handler=handler):
                context = HandlerContext(self, chosen_cpu, _message)
                return _handler(context)

            self.scheduler.dispatch_on(cpu, make_generator)
        else:
            cpu = self._msg_cpu.get(packet.message_id)
            if cpu is None:
                raise DispatchError(
                    f"{self.name}: continuation packet for unknown message "
                    f"{packet.message_id}")
            yield from stage_payload(
                cpu, packet.active.address + packet.seq * MTU)
        if packet.last:
            self._msg_cpu.pop(packet.message_id, None)

    def __repr__(self) -> str:
        return (f"<ActiveSwitch {self.name}: {len(self.cpus)} CPUs, "
                f"{self.buffers.in_use}/{self.buffers.count} buffers busy>")

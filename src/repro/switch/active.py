"""The active switch — the paper's core contribution.

Extends the conventional output-queued switch with the unshaded
components of Figure 2:

* 1-4 embedded :class:`SwitchCPU` cores (500 MHz, tiny I/D caches);
* 16 x 512 B on-chip :class:`DataBuffer`\\ s with per-line valid bits,
  managed by the DBA (:class:`DataBufferPool`);
* a per-CPU 16-entry direct-mapped :class:`AddressTranslationBuffer`;
* a :class:`JumpTable` + dispatch unit (:class:`CpuScheduler`) that
  invoke handlers message-driven style from the 6-bit handler ID;
* a :class:`SendUnit` that injects CPU-composed messages through the
  (N+1) x N crossbar.

Any packet whose destination is the switch itself is an active message:
the crossbar steers its payload into a free data buffer (line-by-line,
setting valid bits) while the header goes to the dispatch unit in
parallel — so a handler can begin processing before the copy completes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..cpu.switch_cpu import SwitchCPU
from ..faults.injector import HandlerCrashError
from ..net.packet import MTU, Message, Packet
from ..sim.core import Environment
from ..sim.trace import Tracer
from ..sim.units import transfer_ps
from .atb import AddressTranslationBuffer
from .base import BaseSwitch, SwitchConfig
from .data_buffer import DataBufferPool
from .dispatch import CpuScheduler, DispatchError, JumpTable
from .handler import HandlerContext
from .send_unit import SendUnit


@dataclass(frozen=True)
class ActiveSwitchConfig:
    """Parameters of the active additions ("we support up to 4 switch
    processors per active switch")."""

    num_cpus: int = 1
    num_buffers: int = 16
    crossbar_bandwidth_bytes_per_s: float = 1.0e9
    #: Embedded-core clock (paper: 500 MHz, a quarter of the host's).
    cpu_freq_hz: float = 500_000_000.0

    def __post_init__(self):
        if not 1 <= self.num_cpus <= 4:
            raise ValueError("active switch supports 1-4 switch CPUs")
        if self.num_buffers < 2:
            raise ValueError("need at least 2 data buffers (one in, one out)")
        if self.crossbar_bandwidth_bytes_per_s <= 0:
            raise ValueError("crossbar bandwidth must be positive")
        if self.cpu_freq_hz <= 0:
            raise ValueError("switch CPU frequency must be positive")


@dataclass
class DegradationStats:
    """What the graceful active→normal degradation machinery did."""

    #: Handler invocations that died but were unwound instead of
    #: poisoning the switch.
    contained_crashes: int = 0
    #: Messages whose ATB mapping failed parity at dispatch time.
    atb_corruptions: int = 0
    #: Messages forwarded unprocessed to their fallback destination.
    fallback_messages: int = 0
    fallback_packets: int = 0
    quarantined_handlers: int = 0


#: stage_payload result: the message crashed while this packet staged.
_ABORTED = object()


class ActiveSwitch(BaseSwitch):
    """An 8-port active I/O switch."""

    def __init__(self, env: Environment, name: str,
                 config: SwitchConfig = SwitchConfig(),
                 active_config: ActiveSwitchConfig = ActiveSwitchConfig(),
                 tracer: Optional[Tracer] = None):
        super().__init__(env, name, config)
        self.active_config = active_config
        # Legacy freeform tracer: only records when explicitly wired in.
        # The supported path is the env-attached repro.obs collector.
        self.tracer = tracer
        from ..sim.units import Clock
        self.cpus: List[SwitchCPU] = [
            SwitchCPU(env, cpu_id=i, name=f"{name}-cpu",
                      clock=Clock(active_config.cpu_freq_hz))
            for i in range(active_config.num_cpus)
        ]
        self._atbs: Dict[int, AddressTranslationBuffer] = {
            cpu.cpu_id: AddressTranslationBuffer() for cpu in self.cpus
        }
        self.buffers = DataBufferPool(env, count=active_config.num_buffers)
        self.jump_table = JumpTable()
        self.scheduler = CpuScheduler(env, self.cpus)
        self.send_unit = SendUnit(self)
        #: Embedded-kernel state (pre-allocated handler data; see
        #: HandlerContext.kernel_state).
        self.kernel_state: Dict[str, object] = {}
        self._msg_cpu: Dict[int, SwitchCPU] = {}
        self._mapping_waiters: Dict[Tuple[int, int], list] = {}
        # --- fault-injection / graceful-degradation state -------------
        self.degradation = DegradationStats()
        self._injector = None
        self._flush_hooks: Dict[int, Callable] = {}
        self._handler_health: Dict[int, int] = {}
        #: handler_id -> simulation time it was quarantined.
        self._quarantined: Dict[int, int] = {}
        self._invocations: Dict[int, int] = {}
        #: message_id -> fallback destination for surviving continuations.
        self._fallback_ids: Dict[int, str] = {}
        #: message_ids whose handler invocation crashed mid-stream.
        self._aborted: Set[int] = set()
        #: message_ids whose last packet has been delivered (tracked only
        #: under fault injection, for crash-recovery reassembly).
        self._completed: Set[int] = set()

    # ------------------------------------------------------------------
    # Handler registration (done by the embedded kernel at boot)
    # ------------------------------------------------------------------
    def register_handler(self, handler_id: int, handler: Callable,
                         replace: bool = False) -> None:
        """Install ``handler(ctx)`` in the jump table."""
        self.jump_table.register(handler_id, handler, replace=replace)

    def register_flush(self, handler_id: int, flush: Callable) -> None:
        """Install a trusted drain hook run if ``handler_id`` is quarantined.

        ``flush(ctx)`` is a generator like a handler; it runs on the
        crashing CPU, FIFO behind any invocations queued before the
        quarantine, and typically emits the handler's partial state to
        the fallback destination so host-side code can finish the job.
        """
        self._flush_hooks[handler_id] = flush

    # ------------------------------------------------------------------
    # Fault injection and graceful degradation
    # ------------------------------------------------------------------
    def attach_faults(self, injector) -> None:
        """Subject this switch to ``injector``'s fault plan.

        Also arms crash containment: a dying handler invocation is
        unwound (ATB entries, data buffers, its message's raw payload
        forwarded to the fallback destination) instead of killing the
        dispatch worker.  Without an attached injector, handler
        exceptions propagate exactly as before.
        """
        self._injector = injector
        self.scheduler.set_crash_handler(self._contain_crash)
        self.env.add_context_provider(self._degradation_context)

    def _degradation_context(self) -> dict:
        return {f"switch:{self.name}": (
            f"quarantined={sorted(self._quarantined)}, "
            f"{self.degradation.contained_crashes} contained crashes, "
            f"{self.degradation.fallback_messages} fallback messages")}

    def quarantined(self, handler_id: int) -> bool:
        return handler_id in self._quarantined

    def degraded_time_ps(self) -> int:
        """Total handler-time spent degraded (sum over quarantined
        handlers of time since each was quarantined)."""
        now = self.env.now
        return sum(now - since for since in self._quarantined.values())

    # ------------------------------------------------------------------
    # ATB plumbing
    # ------------------------------------------------------------------
    def atb_for(self, cpu: SwitchCPU) -> AddressTranslationBuffer:
        """The ATB belonging to ``cpu``."""
        return self._atbs[cpu.cpu_id]

    def wait_mapping(self, address: int, cpu: SwitchCPU):
        """Block until ``address`` gets mapped into ``cpu``'s ATB."""
        atb = self.atb_for(cpu)
        if atb.is_mapped(address):
            return
            yield  # pragma: no cover
        base = address - address % MTU
        event = self.env.event()
        self._mapping_waiters.setdefault((cpu.cpu_id, base), []).append(event)
        yield event

    def _wait_mappable(self, cpu: SwitchCPU, address: int):
        """Stall until ``address``'s direct-mapped ATB entry is free."""
        atb = self.atb_for(cpu)
        while not atb.can_map(address):
            freed = self.env.event()
            atb.on_release(lambda e=freed: e.succeed()
                           if not e.triggered else None)
            yield freed

    def _map_buffer_blocking(self, cpu: SwitchCPU, address: int, buffer):
        """Map a region, stalling (backpressure) on direct-mapped
        conflicts until the aliasing entry is deallocated.

        Callers that also claim a data buffer must wait via
        :meth:`_wait_mappable` *before* allocating it (deadlock
        discipline); by then this map is normally immediate, but the
        loop covers the race where another stream takes the entry in
        between.
        """
        yield from self._wait_mappable(cpu, address)
        self.atb_for(cpu).map(address, buffer)
        base = address - address % MTU
        for event in self._mapping_waiters.pop((cpu.cpu_id, base), []):
            event.succeed()

    # ------------------------------------------------------------------
    # Degradation machinery
    # ------------------------------------------------------------------
    def _fallback_forward(self, packet: Packet, first: bool):
        """Degrade to normal switching: forward ``packet`` unprocessed.

        The packet re-enters the conventional cut-through path toward
        the active header's ``fallback_dst`` — the host-side code that
        can compute the result itself, slower but never wrong.
        """
        dst = packet.active.fallback_dst if packet.active is not None else None
        if dst is None:
            dst = self._fallback_ids.get(packet.message_id)
        if dst is None:
            raise DispatchError(
                f"{self.name}: cannot degrade message {packet.message_id} — "
                f"its active header names no fallback_dst")
        if first:
            self.degradation.fallback_messages += 1
            if not packet.last:
                self._fallback_ids[packet.message_id] = dst
        self.degradation.fallback_packets += 1
        if packet.last:
            self._fallback_ids.pop(packet.message_id, None)
        forwarded = replace(packet, dst=dst, active=None, notify=None,
                            corrupted=False, nack=None)
        yield from self.inject(forwarded)

    def _crash_wrapper(self, generator):
        """Run a handler up to its first suspension point, then die —
        the injected crash lands mid-flight, with the invocation's
        stream buffers mapped and nothing committed yet."""
        try:
            first = next(generator)
        except StopIteration:
            raise HandlerCrashError(
                "injected crash (handler had no suspension point)") from None
        yield first
        generator.close()
        raise HandlerCrashError("injected crash at first suspension point")

    def _contain_crash(self, exc, meta, cpu) -> bool:
        """Crash handler installed in the scheduler: unwind one dead
        invocation.  Returns False (propagate) for invocations without
        metadata — e.g. trusted flush hooks."""
        if meta is None:
            return False
        handler_id = meta["handler_id"]
        message: Message = meta["message"]
        message_id = meta["message_id"]
        self.degradation.contained_crashes += 1
        if self.tracer is not None:
            self.tracer.record(self.env.now, "handler-crash",
                               switch=self.name, handler_id=handler_id,
                               cpu=cpu.cpu_id, error=type(exc).__name__)
        trace = self.env.trace
        if trace is not None:
            trace.instant(self.name, "switch.crash", self.env.now,
                          handler_id=handler_id, cpu=cpu.cpu_id,
                          error=type(exc).__name__)
        # Reclaim the crashed message's stream state: unmap its address
        # range, free the buffers (a still-running fill is stopped by
        # the buffer's generation check on reset).
        address = meta["address"]
        end = address + max(message.size_bytes, 1)
        for buffer in self.atb_for(cpu).release_range(address, end):
            self.buffers.release(buffer)
        self._msg_cpu.pop(message_id, None)
        self._aborted.add(message_id)
        completed = message_id in self._completed
        self._completed.discard(message_id)
        fallback = meta["fallback_dst"]
        if fallback is not None:
            # The message's data must still reach the host: its raw
            # first chunk (carrying the functional payload) re-emerges
            # toward the fallback destination, and any continuation
            # packets still in flight are forwarded as they arrive,
            # reassembling under the same message id.
            self.degradation.fallback_messages += 1
            if not completed:
                self._fallback_ids[message_id] = fallback
            self.env.process(
                self._resend_raw(message, fallback, message_id,
                                 last=(completed or message.num_packets == 1)),
                name=f"{self.name}-degrade-resend")
        health = self._handler_health.get(handler_id, 0) + 1
        self._handler_health[handler_id] = health
        threshold = self._injector.plan.handler.quarantine_threshold
        if health >= threshold and handler_id not in self._quarantined:
            self._quarantine(handler_id, cpu)
        return True

    def _resend_raw(self, message: Message, fallback: str, message_id: int,
                    last: bool):
        chunk = min(message.size_bytes, MTU)
        packet = Packet(src=message.src, dst=fallback, payload_bytes=chunk,
                        active=None, payload=message.payload,
                        message_id=message_id, seq=0, last=last,
                        message_bytes=message.size_bytes)
        self.degradation.fallback_packets += 1
        yield from self.inject(packet)

    def _quarantine(self, handler_id: int, cpu: SwitchCPU) -> None:
        """Take a repeatedly crashing handler out of service.

        From now on its messages bypass the dispatch unit entirely and
        fall back to normal cut-through forwarding.  The handler's
        registered flush hook (trusted embedded-kernel code) runs on the
        same CPU, FIFO behind already-queued pre-quarantine invocations,
        to drain whatever partial state the handler had accumulated.
        """
        self._quarantined[handler_id] = self.env.now
        self.degradation.quarantined_handlers += 1
        if self.tracer is not None:
            self.tracer.record(self.env.now, "quarantine", switch=self.name,
                               handler_id=handler_id,
                               crashes=self._handler_health[handler_id])
        trace = self.env.trace
        if trace is not None:
            trace.instant(self.name, "switch.quarantine", self.env.now,
                          handler_id=handler_id,
                          crashes=self._handler_health[handler_id])
        flush = self._flush_hooks.get(handler_id)
        if flush is not None:
            message = Message(src=self.name, dst=self.name, size_bytes=0)

            def make_flush(chosen_cpu, _flush=flush, _message=message):
                return _flush(HandlerContext(self, chosen_cpu, _message))

            self.scheduler.dispatch_on(cpu, make_flush)

    # ------------------------------------------------------------------
    # Active datapath
    # ------------------------------------------------------------------
    def crossbar_transfer_ps(self, nbytes: int) -> int:
        """Time to move ``nbytes`` across the crossbar."""
        return transfer_ps(nbytes, self.active_config.crossbar_bandwidth_bytes_per_s)

    def deliver_local(self, packet: Packet, in_port: int):
        """Accept an active message: buffer the payload, dispatch the
        handler (first packet) or extend the mapped stream (later
        packets)."""
        self.stats.delivered_local += 1
        if packet.active is None:
            raise DispatchError(
                f"{self.name}: packet addressed to switch has no active header")

        # Deadlock discipline: never hold a data buffer while stalled on
        # an ATB conflict — wait for the entry first, then claim the
        # buffer (otherwise two multi-region streams can each hold part
        # of the pool while waiting for the other's entries).
        def stage_payload(cpu, address):
            if packet.payload_bytes <= 0:
                return None
                yield  # pragma: no cover
            atb = self.atb_for(cpu)
            while True:
                if packet.message_id in self._aborted:
                    return _ABORTED
                yield from self._wait_mappable(cpu, address)
                buffer = yield from self.buffers.allocate()
                if packet.message_id in self._aborted:
                    # The handler crashed while we waited: nothing left
                    # to stage into.
                    self.buffers.release(buffer)
                    return _ABORTED
                if atb.can_map(address):
                    break
                # Lost the entry while waiting for a buffer: never hold
                # a buffer while stalled on the ATB, or two multi-region
                # streams can deadlock the pool.
                self.buffers.release(buffer)
            buffer.payload = packet.payload
            self.env.process(
                buffer.fill(packet.payload_bytes,
                            self.active_config.crossbar_bandwidth_bytes_per_s),
                name=f"{self.name}-fill")
            yield from self._map_buffer_blocking(cpu, address, buffer)
            if packet.message_id in self._aborted:
                # Crash landed during the map: undo it before the dead
                # mapping leaks the buffer.
                for stale in atb.release_range(address, address + 1):
                    self.buffers.release(stale)
                return _ABORTED
            return buffer

        if packet.seq == 0:
            handler_id = packet.active.handler_id
            crash_this = False
            meta = None
            if self._injector is not None:
                if handler_id in self._quarantined:
                    yield from self._fallback_forward(packet, first=True)
                    return
                plan = self._injector.plan.handler
                if (plan.atb_corruption_rate > 0
                        and self._injector.atb_corruption(self.name)):
                    # The dispatch unit read a parity-corrupted ATB
                    # entry: the mapping cannot be trusted, so the
                    # message is delivered unprocessed.  Counted apart
                    # from crashes — it is the ATB's fault, not the
                    # handler's, so it never feeds quarantine.
                    self.degradation.atb_corruptions += 1
                    yield from self._fallback_forward(packet, first=True)
                    return
                if plan.enabled:
                    invocation = self._invocations.get(handler_id, 0)
                    self._invocations[handler_id] = invocation + 1
                    crash_this = self._injector.handler_crash(
                        self.name, handler_id, invocation)
            # Header to the dispatch unit, in parallel with the copy.
            cpu = self.scheduler.pick(packet.active.cpu_id)
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.record(self.env.now, "dispatch",
                                   switch=self.name,
                                   handler_id=handler_id,
                                   cpu=cpu.cpu_id, src=packet.src)
            trace = self.env.trace
            if trace is not None:
                trace.instant(self.name, "switch.dispatch", self.env.now,
                              handler_id=handler_id, cpu=cpu.cpu_id,
                              src=packet.src, msg=packet.message_id)
            self._msg_cpu[packet.message_id] = cpu
            yield from stage_payload(cpu, packet.active.address)
            total = (packet.message_bytes if packet.message_bytes is not None
                     else packet.payload_bytes)
            message = Message(src=packet.src, dst=packet.dst,
                              size_bytes=total,
                              active=packet.active, payload=packet.payload)
            handler = self.jump_table.lookup(handler_id)
            # Built unconditionally: the crash handler (when armed) and
            # the dispatch unit's handler-span attribution both read it.
            meta = {"handler_id": handler_id,
                    "message": message,
                    "message_id": packet.message_id,
                    "address": packet.active.address,
                    "fallback_dst": packet.active.fallback_dst}

            def make_generator(chosen_cpu, _message=message,
                               _handler=handler, _crash=crash_this):
                context = HandlerContext(self, chosen_cpu, _message)
                generator = _handler(context)
                return self._crash_wrapper(generator) if _crash else generator

            self.scheduler.dispatch_on(cpu, make_generator, meta=meta)
        else:
            if packet.message_id in self._fallback_ids:
                yield from self._fallback_forward(packet, first=False)
                return
            cpu = self._msg_cpu.get(packet.message_id)
            if cpu is None:
                if packet.message_id in self._aborted:
                    # Crashed message with no fallback route: the
                    # remaining continuations have nowhere to go.
                    return
                raise DispatchError(
                    f"{self.name}: continuation packet for unknown message "
                    f"{packet.message_id}")
            staged = yield from stage_payload(
                cpu, packet.active.address + packet.seq * MTU)
            if staged is _ABORTED:
                if packet.message_id in self._fallback_ids:
                    yield from self._fallback_forward(packet, first=False)
                return
        if packet.last:
            self._msg_cpu.pop(packet.message_id, None)
            if self._injector is not None:
                self._completed.add(packet.message_id)

    def __repr__(self) -> str:
        return (f"<ActiveSwitch {self.name}: {len(self.cpus)} CPUs, "
                f"{self.buffers.in_use}/{self.buffers.count} buffers busy>")

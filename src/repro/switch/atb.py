"""Address translation buffer (ATB).

The ATB creates "the illusion of a flat memory for switch programmers":
handlers address stream data with ordinary physical addresses, and the
ATB maps an address to a ``(bufId, offset)`` pair when the data is
resident in one of the 16 on-chip buffers.  Each switch CPU has its own
direct-mapped, 16-entry ATB (one entry per data buffer).

The ATB also assists de-allocation: given an end address, it finds every
buffer whose mapped addresses lie entirely below that address so the DBA
can free them — the ``Deallocate_Buffer`` macro of the programming
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .data_buffer import BUFFER_BYTES, DataBuffer

#: Paper parameter: one entry per data buffer.
NUM_ENTRIES = 16


class ATBError(Exception):
    """Misuse or conflict in the address translation buffer."""


@dataclass
class ATBEntry:
    """One mapping from a buffer-aligned address region to a buffer."""

    base_address: int
    buffer: DataBuffer


@dataclass
class ATBStats:
    translations: int = 0
    misses: int = 0
    conflicts: int = 0


class AddressTranslationBuffer:
    """Direct-mapped address -> (buffer, offset) translation."""

    def __init__(self, num_entries: int = NUM_ENTRIES,
                 region_bytes: int = BUFFER_BYTES):
        if num_entries <= 0:
            raise ValueError("ATB needs at least one entry")
        if region_bytes <= 0 or region_bytes & (region_bytes - 1):
            raise ValueError("region size must be a positive power of two")
        self.num_entries = num_entries
        self.region_bytes = region_bytes
        self.stats = ATBStats()
        self._region_shift = region_bytes.bit_length() - 1
        self._entries: List[Optional[ATBEntry]] = [None] * num_entries
        self._release_waiters: List = []

    def _index(self, address: int) -> int:
        return (address >> self._region_shift) % self.num_entries

    def _base(self, address: int) -> int:
        return (address >> self._region_shift) << self._region_shift

    # ------------------------------------------------------------------
    # Mapping (done by the Dispatch unit on message arrival)
    # ------------------------------------------------------------------
    def map(self, address: int, buffer: DataBuffer) -> None:
        """Install a mapping for the region containing ``address``.

        The dispatch unit "maps the buffer ID holding the message into a
        corresponding entry in the ATB according to the destination
        address field in the header."
        """
        base = self._base(address)
        index = self._index(address)
        current = self._entries[index]
        if current is not None:
            self.stats.conflicts += 1
            raise ATBError(
                f"ATB entry {index} already maps {current.base_address:#x}; "
                f"cannot map {base:#x} (handler must deallocate first)")
        self._entries[index] = ATBEntry(base_address=base, buffer=buffer)

    # ------------------------------------------------------------------
    # Translation (every handler buffer access)
    # ------------------------------------------------------------------
    def translate(self, address: int) -> Tuple[DataBuffer, int]:
        """Return ``(buffer, offset)`` for ``address``."""
        self.stats.translations += 1
        entry = self._entries[self._index(address)]
        if entry is None or entry.base_address != self._base(address):
            self.stats.misses += 1
            raise ATBError(f"no ATB mapping for address {address:#x}")
        return entry.buffer, address - entry.base_address

    def lookup(self, address: int) -> Optional[Tuple[DataBuffer, int]]:
        """Like :meth:`translate` but returns None instead of raising."""
        self.stats.translations += 1
        entry = self._entries[self._index(address)]
        if entry is None or entry.base_address != self._base(address):
            self.stats.misses += 1
            return None
        return entry.buffer, address - entry.base_address

    def is_mapped(self, address: int) -> bool:
        return self.lookup(address) is not None

    # ------------------------------------------------------------------
    # De-allocation support
    # ------------------------------------------------------------------
    def release_below(self, end_address: int) -> List[DataBuffer]:
        """Unmap and return all buffers mapped entirely below ``end_address``.

        "The hardware will take care of releasing data buffers holding
        valid mapped addresses less than that end address."
        """
        released = []
        for index, entry in enumerate(self._entries):
            if entry is None:
                continue
            if entry.base_address + self.region_bytes <= end_address:
                released.append(entry.buffer)
                self._entries[index] = None
        if released:
            self._notify_release()
        return released

    def release_range(self, start_address: int, end_address: int) -> List[DataBuffer]:
        """Unmap and return buffers whose region overlaps ``[start, end)``.

        Crash containment uses this to reclaim exactly the crashed
        message's stream mappings without disturbing other messages
        interleaved on the same CPU.
        """
        released = []
        for index, entry in enumerate(self._entries):
            if entry is None:
                continue
            if (entry.base_address < end_address
                    and entry.base_address + self.region_bytes > start_address):
                released.append(entry.buffer)
                self._entries[index] = None
        if released:
            self._notify_release()
        return released

    def on_release(self, callback) -> None:
        """Register a one-shot callback fired when entries free up.

        The dispatch path uses this to *wait out* a direct-mapped
        conflict (stalling the input port — backpressure) instead of
        failing: hardware holds the packet until the aliasing entry is
        deallocated.
        """
        self._release_waiters.append(callback)

    def _notify_release(self) -> None:
        waiters, self._release_waiters = self._release_waiters, []
        for callback in waiters:
            callback()

    def mapped_count(self) -> int:
        """Number of live entries."""
        return sum(1 for entry in self._entries if entry is not None)

    def clear(self) -> List[DataBuffer]:
        """Unmap everything (end of handler); returns the buffers."""
        buffers = [e.buffer for e in self._entries if e is not None]
        self._entries = [None] * self.num_entries
        if buffers:
            self._notify_release()
        return buffers

    def can_map(self, address: int) -> bool:
        """True if mapping ``address`` would not conflict."""
        return self._entries[self._index(address)] is None

    def __repr__(self) -> str:
        return f"<ATB {self.mapped_count()}/{self.num_entries} mapped>"

"""Handler execution context — the active switch programming model.

A handler is written against this context the way the paper's handlers
are written against memory-mapped data buffers:

* ``ctx.arg`` / ``ctx.address`` — the arguments and base address carried
  by the invoking active message (``ReadArg(arg)`` in the paper's
  pseudo-code);
* ``ctx.read(addr, n)`` — memory-mapped stream access: the ATB
  translates the address to a (buffer, offset) pair and the CPU stalls
  on the per-line valid bits if the data has not streamed in yet;
* ``ctx.compute(cycles)`` — handler computation on the switch CPU;
* ``ctx.local_load/store/scan`` — references to switch local memory
  (through the CPU's 1 KB data cache — e.g. HashJoin's bit-vector);
* ``ctx.send(dst, n)`` — compose and send a message via the send unit;
* ``ctx.deallocate(end_addr)`` — the ``Deallocate_Buffer`` macro.
"""

from __future__ import annotations

from typing import Optional

from ..cpu.switch_cpu import RELEASE_BUFFER_CYCLES, SwitchCPU
from ..net.packet import ActiveHeader, Message


class HandlerContext:
    """Everything a handler invocation can touch."""

    def __init__(self, switch, cpu: SwitchCPU, message: Message):
        self.switch = switch
        self.env = switch.env
        self.cpu = cpu
        self.message = message
        #: Argument payload delivered with the invoking message.
        self.arg = message.payload
        #: Base address the message's data was mapped at by the ATB.
        self.address = message.active.address if message.active else 0
        self._released = False

    # ------------------------------------------------------------------
    # Stream data access (memory-mapped buffers)
    # ------------------------------------------------------------------
    def read(self, addr: int, nbytes: int):
        """Read ``nbytes`` at ``addr`` from the mapped data buffers.

        Stalls the switch CPU until the bytes are valid.  Per the
        programming model, instruction costs of consuming the data are
        charged by the handler via :meth:`compute`; this method models
        only the data-dependency wait.
        """
        atb = self.switch.atb_for(self.cpu)
        offset_done = 0
        while offset_done < nbytes:
            current = addr + offset_done
            mapping = atb.lookup(current)
            if mapping is None:
                yield from self.switch.wait_mapping(current, self.cpu)
                mapping = atb.lookup(current)
            buffer, offset = mapping
            chunk = min(nbytes - offset_done, buffer.size - offset)
            start = self.env.now
            yield from buffer.wait_valid(offset + chunk)
            self.cpu.accounting.add_stall(self.env.now - start)
            offset_done += chunk

    def payload_at(self, addr: int):
        """Functional payload carried by the message mapped at ``addr``."""
        mapping = self.switch.atb_for(self.cpu).lookup(addr)
        return mapping[0].payload if mapping else None

    # ------------------------------------------------------------------
    # Computation and local memory
    # ------------------------------------------------------------------
    def compute(self, cycles: float, stall_ps: int = 0):
        """Run handler computation on this CPU."""
        yield from self.cpu.work(busy_cycles=cycles, stall_ps=stall_ps)

    def local_load(self, addr: int):
        """One load from switch local memory (may miss in the 1 KB D$)."""
        stall = self.cpu.cache_cost(addr, write=False)
        yield from self.cpu.work(busy_cycles=1, stall_ps=stall)

    def local_store(self, addr: int):
        """One store to switch local memory."""
        stall = self.cpu.cache_cost(addr, write=True)
        yield from self.cpu.work(busy_cycles=1, stall_ps=stall)

    def local_scan(self, addr: int, nbytes: int, write: bool = False):
        """Sequential local-memory access over a byte range."""
        stall = self.cpu.scan_cost(addr, nbytes, write=write)
        lines = -(-nbytes // self.cpu.hierarchy.l1d.config.line_size)
        yield from self.cpu.work(busy_cycles=lines, stall_ps=stall)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst: str, size_bytes: int,
             active: Optional[ActiveHeader] = None, payload=None):
        """Compose and send a message via the send unit."""
        yield from self.switch.send_unit.send(
            self.cpu, dst, size_bytes, active=active, payload=payload)

    # ------------------------------------------------------------------
    # Buffer management
    # ------------------------------------------------------------------
    def deallocate(self, end_address: int):
        """``Deallocate_Buffer``: free all buffers mapped below
        ``end_address``."""
        yield from self.cpu.work(busy_cycles=RELEASE_BUFFER_CYCLES)
        atb = self.switch.atb_for(self.cpu)
        for buffer in atb.release_below(end_address):
            self.switch.buffers.release(buffer)
        self._released = True

    def deallocate_range(self, start_address: int, end_address: int):
        """Free exactly the buffers mapped in ``[start, end)``.

        :meth:`deallocate` frees *everything* below ``end_address`` —
        right for a single in-order stream, but destructive when
        concurrent senders stage at per-sender slot addresses and
        retransmissions reorder their arrival: a high slot's handler
        would free a lower slot staged late, stranding that slot's
        handler on a mapping that never reappears.  Slotted handlers
        must release only their own region.
        """
        yield from self.cpu.work(busy_cycles=RELEASE_BUFFER_CYCLES)
        atb = self.switch.atb_for(self.cpu)
        for buffer in atb.release_range(start_address, end_address):
            self.switch.buffers.release(buffer)
        self._released = True

    def kernel_state(self, key: str, default=None):
        """Read a value from the switch's embedded-kernel state.

        Handlers "are not allowed to allocate memory freely"; the small
        run-time kernel provides named state (e.g. a reduction
        accumulator) allocated at registration time.
        """
        return self.switch.kernel_state.get(key, default)

    def set_kernel_state(self, key: str, value) -> None:
        """Write embedded-kernel state."""
        self.switch.kernel_state[key] = value

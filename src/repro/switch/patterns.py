"""Reusable handler patterns.

Section 2.2 of the paper observes that every handler shares one
skeleton — the memory-mapped streaming loop of its pseudo-code — and
"Only the ProcessData function is different for different handlers".
:func:`stream_loop` is that skeleton; the factory functions below build
complete handlers for the three recurring shapes:

* :func:`filter_handler` — forward a selected subset (Grep, Select,
  HashJoin's S scan, MPEG's frame filter);
* :func:`redirect_handler` — pass the stream through untouched to
  another node (Tar, device-to-device copies);
* :func:`aggregate_handler` — combine many messages into kernel state
  and emit one result (collective reductions).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..net.packet import MTU
from .handler import HandlerContext


def _round_up(value: int, quantum: int = MTU) -> int:
    return -(-value // quantum) * quantum


def stream_loop(ctx: HandlerContext,
                process_data: Optional[Callable] = None,
                mtu: int = MTU):
    """The paper's canonical handler loop.

    Mirrors the Section 2.2 pseudo-code: walk ``file_len`` in MTU-sized
    blocks, ``ProcessData`` each one, and ``Deallocate_Buffer`` behind
    the read cursor so buffers recycle as the stream advances.

    ``process_data(ctx, offset, nbytes)``, if given, must be a
    generator (it may compute, probe local memory, or send).
    """
    file_len = ctx.message.size_bytes
    offset = 0
    while offset < file_len:
        chunk = min(mtu, file_len - offset)
        yield from ctx.read(ctx.address + offset, chunk)
        if process_data is not None:
            yield from process_data(ctx, offset, chunk)
        offset += chunk
        # Free every buffer entirely behind the cursor.
        yield from ctx.deallocate(ctx.address + (offset // mtu) * mtu)
    # Release the final (possibly partial) region.
    yield from ctx.deallocate(ctx.address + _round_up(file_len, mtu))


def filter_handler(dst: str, cycles_per_byte: float,
                   selector: Callable):
    """A handler that scans the stream and forwards a selected subset.

    ``selector(payload) -> (out_bytes, out_payload)`` runs once per
    message on the functional payload; the timing side charges
    ``cycles_per_byte`` over the scanned bytes and ships ``out_bytes``
    to ``dst``.
    """
    def handler(ctx: HandlerContext):
        def process(ctx, offset, chunk):
            yield from ctx.compute(cycles=chunk * cycles_per_byte)

        yield from stream_loop(ctx, process)
        out_bytes, out_payload = selector(ctx.arg)
        if out_bytes > 0:
            yield from ctx.send(dst, out_bytes, payload=out_payload)

    return handler


def redirect_handler(dst: str, cycles_per_block: float = 20):
    """A handler that forwards the stream untouched (Tar-style).

    The send unit moves the data straight from the buffers; the CPU
    only orchestrates, at ``cycles_per_block`` per MTU.
    """
    def handler(ctx: HandlerContext):
        file_len = ctx.message.size_bytes

        def process(ctx, offset, chunk):
            yield from ctx.compute(cycles=cycles_per_block)

        # Forward first (zero-copy out of the same buffers), then walk
        # the stream for the timing/deallocation bookkeeping.
        yield from ctx.send(dst, file_len, payload=ctx.arg)
        yield from stream_loop(ctx, process)

    return handler


def aggregate_handler(state_key: str, combine: Callable,
                      expected_key: str, count_key: str,
                      finish: Callable):
    """A handler that folds each message into kernel state.

    ``combine(state, payload) -> state`` runs per message;
    when ``count`` reaches the value at ``expected_key``,
    ``finish(ctx, state)`` (a generator) emits the result.  The state
    lives in the embedded kernel's pre-allocated storage, per the
    paper's no-free-allocation rule.
    """
    def handler(ctx: HandlerContext):
        yield from stream_loop(ctx)
        state = combine(ctx.kernel_state(state_key), ctx.arg)
        ctx.set_kernel_state(state_key, state)
        done = ctx.kernel_state(count_key, 0) + 1
        ctx.set_kernel_state(count_key, done)
        if done >= ctx.kernel_state(expected_key):
            yield from finish(ctx, state)

    return handler

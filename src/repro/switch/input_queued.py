"""Input-queued switch — the architecture the paper's design rejects.

The paper bases its switch on "a central output queue scheme similar to
that in the IBM Switch-3".  The classical alternative queues packets at
the *inputs*, which suffers head-of-line (HOL) blocking: a packet stuck
behind one destined to a busy output stalls even when its own output is
free, capping throughput at ~58.6 % under uniform traffic (Karol et
al.).  :class:`InputQueuedSwitch` implements that alternative so the
ablation bench can show what the output-queued choice buys.

The input FIFO has finite depth; when it fills, link credits throttle
the sender (same loss-free discipline as the base switch).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.link import Link
from ..net.packet import Packet
from ..sim.core import Environment
from ..sim.resources import Resource, Store
from .base import PortNotConnected, RoutingToSwitchError, SwitchConfig


@dataclass(frozen=True)
class InputQueuedConfig:
    """Parameters of the input-queued variant."""

    #: Packets buffered per input port.
    input_queue_packets: int = 4

    def __post_init__(self):
        if self.input_queue_packets < 1:
            raise ValueError("input queue must hold at least one packet")


class InputQueuedSwitch:
    """An N-port switch with per-input FIFOs and HOL blocking.

    One packet crosses the crossbar to an output at a time per output;
    an input's *head* packet must win its output before the next packet
    on that input can even be considered — the defining HOL constraint.
    """

    def __init__(self, env: Environment, name: str,
                 config: SwitchConfig = SwitchConfig(),
                 iq_config: InputQueuedConfig = InputQueuedConfig()):
        self.env = env
        self.name = name
        self.config = config
        self.iq_config = iq_config
        from ..net.routing import RoutingTable
        from .base import SwitchStats
        self.routing = RoutingTable(name)
        self.stats = SwitchStats()
        self._tx_links = [None] * config.num_ports
        self._input_queues = [
            Store(env, capacity=iq_config.input_queue_packets,
                  name=f"{name}.in{port}")
            for port in range(config.num_ports)
        ]
        # One grant at a time per output (the crossbar column).
        self._output_grants = [Resource(env, capacity=1,
                                        name=f"{name}.out{port}")
                               for port in range(config.num_ports)]
        for port in range(config.num_ports):
            env.process(self._head_of_line(port), name=f"{name}-hol{port}",
                        daemon=True)

    # ------------------------------------------------------------------
    # Wiring (same interface as BaseSwitch)
    # ------------------------------------------------------------------
    def connect(self, port: int, tx_link: Link, rx_link: Link) -> None:
        if not 0 <= port < self.config.num_ports:
            raise ValueError(f"{self.name}: port {port} out of range")
        if self._tx_links[port] is not None:
            raise ValueError(f"{self.name}: port {port} already connected")
        self._tx_links[port] = tx_link
        self.env.process(self._reader(port, rx_link),
                         name=f"{self.name}-rx{port}", daemon=True)

    def _reader(self, port: int, rx_link: Link):
        queue = self._input_queues[port]
        while True:
            packet = yield from rx_link.receive()
            # Blocks (and thus withholds credits) when the FIFO is full.
            yield queue.put(packet)

    # ------------------------------------------------------------------
    # The HOL-blocked service loop
    # ------------------------------------------------------------------
    def _head_of_line(self, port: int):
        queue = self._input_queues[port]
        while True:
            packet = yield queue.get()
            if packet.dst == self.name:
                self.stats.dropped += 1
                raise RoutingToSwitchError(
                    f"{self.name}: input-queued switch has no active path")
            out_port = self.routing.lookup(packet.dst)
            with self._output_grants[out_port].request() as grant:
                # HOL blocking: this input serves nothing else while its
                # head waits for the output.
                yield grant
                yield self.env.timeout(self.config.routing_latency_ps)
                link = self._tx_links[out_port]
                if link is None:
                    raise PortNotConnected(
                        f"{self.name}: packet routed to unconnected port "
                        f"{out_port}")
                yield from link.send(packet)
                self.stats.forwarded += 1

    def __repr__(self) -> str:
        return (f"<InputQueuedSwitch {self.name}: "
                f"{self.stats.forwarded} forwarded>")

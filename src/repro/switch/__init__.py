"""Switch architecture: the conventional switch and the active switch."""

from .atb import ATBError, AddressTranslationBuffer
from .active import ActiveSwitch, ActiveSwitchConfig, DegradationStats
from .base import BaseSwitch, RoutingToSwitchError, SwitchConfig
from .data_buffer import (
    BUFFER_BYTES,
    NUM_BUFFERS,
    VALID_LINE_BYTES,
    BufferError,
    DataBuffer,
    DataBufferPool,
)
from .dispatch import CpuScheduler, DispatchError, JumpTable
from .handler import HandlerContext
from .input_queued import InputQueuedConfig, InputQueuedSwitch
from .patterns import (
    aggregate_handler,
    filter_handler,
    redirect_handler,
    stream_loop,
)
from .send_unit import SendUnit

__all__ = [
    "ATBError",
    "AddressTranslationBuffer",
    "ActiveSwitch",
    "ActiveSwitchConfig",
    "DegradationStats",
    "BaseSwitch",
    "RoutingToSwitchError",
    "SwitchConfig",
    "BUFFER_BYTES",
    "NUM_BUFFERS",
    "VALID_LINE_BYTES",
    "BufferError",
    "DataBuffer",
    "DataBufferPool",
    "CpuScheduler",
    "DispatchError",
    "JumpTable",
    "HandlerContext",
    "InputQueuedConfig",
    "InputQueuedSwitch",
    "SendUnit",
    "aggregate_handler",
    "filter_handler",
    "redirect_handler",
    "stream_loop",
]

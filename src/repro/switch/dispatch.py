"""Dispatch unit and jump table.

"The Dispatch unit extracts the PC according to the handler ID in the
header and schedules the handler on a free switch processor.  The
Dispatch unit also maps the buffer ID holding the message into a
corresponding entry in the ATB according to the destination address
field in the header."

The jump table stores the starting program counter of each handler,
indexed by the 6-bit handler ID; here a "program counter" is a Python
generator function ``handler(ctx) -> generator``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..net.packet import MAX_HANDLER_ID
from ..sim.core import Environment
from ..sim.resources import Store
from ..sim.units import ns


class DispatchError(Exception):
    """Unknown handler ID or bad dispatch request."""


class JumpTable:
    """handler ID -> handler entry point."""

    def __init__(self, size: int = MAX_HANDLER_ID + 1):
        self.size = size
        self._handlers: Dict[int, Callable] = {}

    def register(self, handler_id: int, handler: Callable,
                 replace: bool = False) -> None:
        """Install ``handler`` at ``handler_id``.

        Double registration is a kernel bug and raises, unless
        ``replace=True`` — used by collective retry, which re-installs
        fresh per-epoch handlers over the previous attempt's.
        """
        if not 0 <= handler_id < self.size:
            raise DispatchError(
                f"handler ID {handler_id} outside the 6-bit field")
        if handler_id in self._handlers and not replace:
            raise DispatchError(f"handler ID {handler_id} already registered")
        self._handlers[handler_id] = handler

    def lookup(self, handler_id: int) -> Callable:
        """Fetch the handler entry point."""
        try:
            return self._handlers[handler_id]
        except KeyError:
            raise DispatchError(f"no handler registered for ID {handler_id}") from None

    def __contains__(self, handler_id: int) -> bool:
        return handler_id in self._handlers

    def __len__(self) -> int:
        return len(self._handlers)


@dataclass
class DispatchStats:
    dispatched: int = 0
    queued_waits: int = 0
    #: Handler invocations that raised but were contained by the
    #: switch's crash handler instead of killing the worker.
    contained_crashes: int = 0


class CpuScheduler:
    """Schedules handler invocations onto the embedded switch CPUs.

    Each CPU runs a worker loop draining its own task queue.  Dispatches
    without a CPU-ID preference go to the shortest queue (a free CPU has
    an empty one); the MD5 multi-processor experiment pins chains to
    CPUs via the header's switch-CPU-ID field.
    """

    #: Hardware dispatch latency (header parse + jump-table read).
    DISPATCH_LATENCY_PS = ns(4)

    def __init__(self, env: Environment, cpus: List):
        if not cpus:
            raise ValueError("need at least one switch CPU")
        self.env = env
        self.cpus = cpus
        self.stats = DispatchStats()
        self._queues: List[Store] = [Store(env) for _ in cpus]
        self._pending: List[int] = [0] * len(cpus)
        self._crash_handler: Optional[Callable] = None
        for index, cpu in enumerate(cpus):
            env.process(self._worker(index, cpu), name=f"dispatch-{cpu.name}",
                        daemon=True)

    def set_crash_handler(self, handler: Callable) -> None:
        """Install crash containment: ``handler(exc, meta, cpu)``.

        Called when a handler invocation raises.  Return True to contain
        the crash (the worker survives and its completion event fires
        with ``None``); return False to let the exception propagate —
        the pre-containment behaviour, which kills the worker and
        surfaces the error at ``env.run``.
        """
        self._crash_handler = handler

    def _worker(self, index: int, cpu):
        queue = self._queues[index]
        while True:
            task = yield queue.get()
            generator, done, meta = task
            cpu.active = True
            trace = self.env.trace
            if trace is not None:
                start_ps = self.env.now
                acct = getattr(cpu, "accounting", None)
                busy0 = acct.busy_ps if acct is not None else 0
                stall0 = acct.stall_ps if acct is not None else 0
            try:
                result = yield self.env.process(generator, name=f"{cpu.name}-handler")
            except Exception as exc:
                if (self._crash_handler is None
                        or not self._crash_handler(exc, meta, cpu)):
                    raise
                self.stats.contained_crashes += 1
                result = None
            finally:
                cpu.active = False
                self._pending[index] -= 1
                if trace is not None:
                    # Per-handler cycle attribution: the accounting delta
                    # over the invocation is what *this* handler cost.
                    # Only scalar metadata goes into the trace (meta may
                    # carry live objects for the crash handler).
                    args = ({k: v for k, v in meta.items()
                             if isinstance(v, (int, float, str))}
                            if isinstance(meta, dict) else {})
                    if acct is not None:
                        args["busy_ps"] = acct.busy_ps - busy0
                        args["stall_ps"] = acct.stall_ps - stall0
                    trace.span(cpu.name, "handler", start_ps,
                               self.env.now - start_ps, **args)
            if done is not None:
                done.succeed(result)

    def pick(self, cpu_id: Optional[int] = None):
        """Choose the CPU a handler will run on.

        A header carrying a switch-CPU ID (the MD5 multi-processor
        experiment) pins the choice; otherwise the least-loaded core —
        a free CPU has an empty queue — is selected.
        """
        if cpu_id is not None:
            if not 0 <= cpu_id < len(self.cpus):
                raise DispatchError(
                    f"cpu_id {cpu_id} out of range (switch has {len(self.cpus)})")
            return self.cpus[cpu_id]
        index = min(range(len(self.cpus)), key=lambda i: self._pending[i])
        return self.cpus[index]

    def dispatch_on(self, cpu, make_generator: Callable, meta=None):
        """Schedule a handler on ``cpu``; returns its completion event.

        ``make_generator(cpu)`` builds the handler generator bound to the
        chosen CPU (the context needs to know which CPU's ATB and caches
        it uses).  ``meta`` is opaque invocation context handed to the
        crash handler if this invocation dies (which message/handler the
        cleanup must unwind).
        """
        index = self.cpus.index(cpu)
        if self._pending[index] > 0:
            self.stats.queued_waits += 1
        self._pending[index] += 1
        self.stats.dispatched += 1
        done = self.env.event()

        def launch():
            yield self.env.timeout(self.DISPATCH_LATENCY_PS)
            yield self._queues[index].put((make_generator(cpu), done, meta))

        self.env.process(launch(), name="dispatch-launch")
        return done

    def dispatch(self, make_generator: Callable, cpu_id: Optional[int] = None,
                 meta=None):
        """Pick a CPU and schedule a handler on it in one step."""
        return self.dispatch_on(self.pick(cpu_id), make_generator, meta=meta)

    @property
    def busy_count(self) -> int:
        """CPUs currently running a handler."""
        return sum(1 for cpu in self.cpus if cpu.active)

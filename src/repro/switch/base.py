"""Conventional SAN switch: central output queue, cut-through routing.

The shaded part of the paper's Figure 2 — a normal switch in the style
of the IBM Switch-3: packets arrive on input ports, a routing-table
lookup plus crossbar traversal costs the 100 ns routing latency, and
packets queue at the output port for transmission.

The active switch (:mod:`repro.switch.active`) subclasses this and adds
the unshaded components; packets whose destination is the switch itself
are handed to :meth:`deliver_local`, which the base switch treats as an
error (a conventional switch is transparent to users).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..net.link import Link, LinkTransmissionError
from ..net.packet import Packet
from ..net.routing import RoutingError, RoutingTable
from ..sim.core import Environment
from ..sim.resources import Store
from ..sim.units import ns


@dataclass(frozen=True)
class SwitchConfig:
    """Architectural parameters of the (non-active) switch."""

    num_ports: int = 8
    routing_latency_ps: int = ns(100)
    #: Central output queue capacity, in packets per output port.
    output_queue_packets: int = 64

    def __post_init__(self):
        if self.num_ports < 2:
            raise ValueError("a switch needs at least 2 ports")
        if self.routing_latency_ps < 0:
            raise ValueError("routing latency cannot be negative")
        if self.output_queue_packets < 1:
            raise ValueError("output queue must hold at least one packet")


@dataclass
class SwitchStats:
    forwarded: int = 0
    delivered_local: int = 0
    dropped: int = 0
    #: Ports failed over after their tx link was declared dead.
    ports_failed: int = 0
    #: Packets abandoned by a transmitter on a dead port.
    tx_abandoned: int = 0


class PortNotConnected(Exception):
    """Raised when routing selects a port with no link attached."""


class BaseSwitch:
    """An N-port output-queued switch."""

    def __init__(self, env: Environment, name: str,
                 config: SwitchConfig = SwitchConfig()):
        self.env = env
        self.name = name
        self.config = config
        self.stats = SwitchStats()
        self.routing = RoutingTable(name)
        self._tx_links: List[Optional[Link]] = [None] * config.num_ports
        self._output_queues: List[Store] = [
            Store(env, capacity=config.output_queue_packets)
            for _ in range(config.num_ports)
        ]
        for port in range(config.num_ports):
            env.process(self._transmitter(port), name=f"{name}-tx{port}",
                        daemon=True)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(self, port: int, tx_link: Link, rx_link: Link) -> None:
        """Attach a duplex pair of links to ``port``."""
        if not 0 <= port < self.config.num_ports:
            raise ValueError(f"{self.name}: port {port} out of range")
        if self._tx_links[port] is not None:
            raise ValueError(f"{self.name}: port {port} already connected")
        self._tx_links[port] = tx_link
        tx_link.add_down_listener(lambda: self._port_down(port, tx_link))
        self.env.process(self._reader(port, rx_link),
                         name=f"{self.name}-rx{port}", daemon=True)

    def connected_ports(self) -> List[int]:
        """Ports with a link attached."""
        return [p for p, link in enumerate(self._tx_links) if link is not None]

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _reader(self, port: int, rx_link: Link):
        # Routing is inline: an input port is a FIFO, so a packet that
        # cannot enter its (full) output queue blocks the port, credits
        # run out, and backpressure propagates to the sender — packets
        # are never dropped or buffered beyond the modelled queues.
        while True:
            packet = yield from rx_link.receive()
            yield from self._route(packet, port)

    def _route(self, packet: Packet, in_port: int):
        # Routing-table lookup + crossbar traversal.  The (src, dst)
        # flow key pins every packet of a flow to one ECMP member, so
        # multipath cores never reorder a message's packets.
        yield self.env.timeout(self.config.routing_latency_ps)
        if packet.dst == self.name:
            yield from self.deliver_local(packet, in_port)
            return
        try:
            out_port = self.routing.lookup(packet.dst,
                                           flow_key=(packet.src, packet.dst))
        except RoutingError:
            # On a healthy fabric this is a wiring bug and must stay
            # loud.  With failed-over ports it is expected degradation:
            # the packet has nowhere to go, so it is dropped here and
            # end-to-end recovery (the collective retry) takes over —
            # killing the reader would wedge the port forever.
            if not self.routing.down_ports:
                raise
            self.stats.dropped += 1
            trace = self.env.trace
            if trace is not None:
                trace.instant(self.name, "packet.no_route", self.env.now,
                              dst=packet.dst, msg=packet.message_id)
            return
        self.stats.forwarded += 1
        yield self._output_queues[out_port].put(packet)

    def _port_down(self, port: int, link: Link) -> None:
        """The tx link on ``port`` was declared dead: fail over.

        Fired by the link's down listener (first retry-budget
        exhaustion) or by a heartbeat monitor that noticed a dead
        neighbor.  The routing table stops offering the port — ECMP
        flows re-hash onto survivors — and the event is traced so
        detection latency is measurable.
        """
        if not self.routing.mark_down(port):
            return
        self.stats.ports_failed += 1
        trace = self.env.trace
        if trace is not None:
            trace.instant(self.name, "port.down", self.env.now,
                          port=port, link=link.name)

    def port_restore(self, port: int) -> None:
        """Readmit a repaired port (management plane, after revival)."""
        self.routing.restore(port)

    def _transmitter(self, port: int):
        queue = self._output_queues[port]
        while True:
            packet = yield queue.get()
            link = self._tx_links[port]
            if link is None:
                raise PortNotConnected(
                    f"{self.name}: routed packet to unconnected port {port}")
            try:
                yield from link.send(packet)
            except LinkTransmissionError:
                # The packet is gone (the link declared the port down and
                # recycled its buffer); the transmitter must survive to
                # serve the port if it is ever repaired.  End-to-end
                # recovery is the collective's retry loop, not ours.
                self.stats.tx_abandoned += 1

    def inject(self, packet: Packet, out_port: Optional[int] = None):
        """Queue a locally originated packet for transmission.

        Used by the active switch's send unit (the extra crossbar port:
        the paper expands the crossbar from N x N to (N+1) x N).
        """
        port = (self.routing.lookup(packet.dst,
                                    flow_key=(packet.src, packet.dst))
                if out_port is None else out_port)
        yield self._output_queues[port].put(packet)

    def deliver_local(self, packet: Packet, in_port: int):
        """A packet addressed to the switch itself."""
        self.stats.dropped += 1
        raise RoutingToSwitchError(
            f"{self.name}: conventional switch cannot accept packet "
            f"addressed to itself (handler {packet.active})")
        yield  # pragma: no cover - makes this a generator

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name}: "
                f"{self.config.num_ports} ports, {self.stats.forwarded} forwarded>")


class RoutingToSwitchError(Exception):
    """A non-active switch received an active (switch-addressed) packet."""

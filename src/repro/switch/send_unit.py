"""Send unit: composes and launches switch-originated messages.

"In most cases, the switch CPU needs to allocate a data buffer to
compose a new outgoing message.  It sends the header of this message to
the Send unit, which informs the Crossbar to schedule the message to its
destination."  The crossbar is logically (N+1) x N: the data buffers are
the extra input port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cpu.switch_cpu import SEND_BUFFER_CYCLES, SwitchCPU
from ..net.packet import MTU, ActiveHeader, Message


@dataclass
class SendUnitStats:
    messages: int = 0
    packets: int = 0
    bytes: int = 0


class SendUnit:
    """Per-switch message composition and injection engine."""

    def __init__(self, switch):
        self.switch = switch
        self.env = switch.env
        self.stats = SendUnitStats()

    def send(self, cpu: SwitchCPU, dst: str, size_bytes: int,
             active: Optional[ActiveHeader] = None, payload=None,
             out_port: Optional[int] = None):
        """Compose and transmit a message from ``cpu``.

        Generator to be yielded from a handler: per packet it charges
        the send-instruction cycles, claims a compose buffer, injects
        the packet into the central output queue, and recycles the
        buffer once the packet leaves on the wire.
        """
        message = Message(src=self.switch.name, dst=dst,
                          size_bytes=size_bytes, active=active,
                          payload=payload)
        self.stats.messages += 1
        self.stats.bytes += size_bytes
        start_ps = self.env.now
        npackets = 0
        for packet in message.packetize():
            yield from cpu.work(busy_cycles=SEND_BUFFER_CYCLES)
            buffer = yield from self.switch.buffers.allocate()
            buffer.mark_all_valid()  # composed in place by the handler
            packet.notify = self.env.event()
            self.stats.packets += 1
            npackets += 1
            yield from self.switch.inject(packet, out_port=out_port)
            self.env.process(self._recycle(packet, buffer), name="send-recycle")
        trace = self.env.trace
        if trace is not None:
            trace.span(self.switch.name, "switch.send", start_ps,
                       self.env.now - start_ps, dst=dst, bytes=size_bytes,
                       packets=npackets)

    def _recycle(self, packet, buffer):
        yield packet.notify
        self.switch.buffers.release(buffer)

    def occupancy_ps(self, size_bytes: int) -> int:
        """Analytic wire-side cost for bulk sends (block pipeline)."""
        if size_bytes <= 0:
            return 0
        packets = -(-size_bytes // MTU)
        header_bytes = 16 * packets
        return self.switch.crossbar_transfer_ps(size_bytes + header_bytes)

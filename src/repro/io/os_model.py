"""Operating-system I/O overhead model.

This is the one place the paper's simulator charges fixed empirical
latencies instead of simulating: "We account for I/O-related operating
system overhead by charging 30us of fixed cost per request and 0.27us/KB
for each unbuffered disk request", validated against the Windows 2000
disk-I/O measurements of Chung et al. (MS-TR-2000-55).

The charge lands on the *host CPU busy time* — it is work the host
actually performs (system-call path, interrupt handling, buffer
management), which is exactly why the Tar benchmark wins by bypassing
the host.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.units import us


@dataclass(frozen=True)
class OsCostConfig:
    """Fixed I/O software costs (host side)."""

    #: Per-request fixed cost (syscall + driver + interrupt).
    fixed_per_request_ps: int = us(30)
    #: Per-KB cost of an unbuffered disk request.
    per_kb_ps: int = us(0.27)

    def __post_init__(self):
        if self.fixed_per_request_ps < 0 or self.per_kb_ps < 0:
            raise ValueError("OS costs cannot be negative")


class OsCostModel:
    """Computes host-side software cost of I/O requests."""

    def __init__(self, config: OsCostConfig = OsCostConfig()):
        self.config = config
        self.requests = 0
        self.total_ps = 0

    def request_cost_ps(self, nbytes: int) -> int:
        """Host busy time for one disk request of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative request size {nbytes}")
        cost = (self.config.fixed_per_request_ps
                + self.config.per_kb_ps * nbytes // 1024)
        self.requests += 1
        self.total_ps += cost
        return cost

    def __repr__(self) -> str:
        return f"<OsCostModel {self.requests} requests, {self.total_ps} ps>"

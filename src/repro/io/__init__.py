"""I/O subsystem: disks, SCSI bus, target adapter, OS cost model."""

from .disk import Disk, DiskArray, DiskConfig, DiskError, DiskStats
from .os_model import OsCostConfig, OsCostModel
from .scsi import ScsiBus, ScsiConfig, ScsiError, ScsiStats
from .tca import TCA, TcaConfig

__all__ = [
    "Disk",
    "DiskArray",
    "DiskConfig",
    "DiskError",
    "DiskStats",
    "OsCostConfig",
    "OsCostModel",
    "ScsiBus",
    "ScsiConfig",
    "ScsiError",
    "ScsiStats",
    "TCA",
    "TcaConfig",
]

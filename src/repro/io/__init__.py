"""I/O subsystem: disks, SCSI bus, target adapter, OS cost model."""

from .disk import Disk, DiskArray, DiskConfig, DiskStats
from .os_model import OsCostConfig, OsCostModel
from .scsi import ScsiBus, ScsiConfig, ScsiStats
from .tca import TCA, TcaConfig

__all__ = [
    "Disk",
    "DiskArray",
    "DiskConfig",
    "DiskStats",
    "OsCostConfig",
    "OsCostModel",
    "ScsiBus",
    "ScsiConfig",
    "ScsiStats",
    "TCA",
    "TcaConfig",
]

"""Active storage devices — the related-work comparison point.

The paper positions active *switches* against active *disks*
(Acharya/Riedel/Keeton): devices with their own embedded processor that
filter data before it enters the fabric.  It also notes the two
compose: "If active I/O devices do become prevalent, they can also be
used within our active switch system, creating a two-level active I/O
system."

:class:`ActiveStorageNode` extends the storage node with an embedded
device processor (active-disk proposals used cores slower than switch
CPUs — we default to 200 MHz) and a filtered-read operation: records
are scanned on the device as they come off the platters, and only
passing records are shipped onto the SAN.  The device CPU processes in
line with the disk stream, so a filtered read takes
``max(disk time, filter time)`` plus start-up.

This enables the filter-placement comparison (host vs switch vs device
vs two-level) in :mod:`repro.experiments.two_level`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.switch_cpu import SwitchCPU
from ..sim.core import Environment
from ..sim.units import Clock
from .disk import DiskArray
from .scsi import ScsiBus
from .tca import TCA, TcaConfig


@dataclass(frozen=True)
class ActiveStorageConfig:
    """Parameters of the device's embedded processor."""

    #: Active-disk proposals assumed drive-class embedded cores.
    cpu_freq_hz: float = 200_000_000.0
    #: Extra firmware cost per filtered request (setup of the scan).
    filter_setup_ps: int = 2_000_000  # 2 us

    def __post_init__(self):
        if self.cpu_freq_hz <= 0:
            raise ValueError("device CPU frequency must be positive")
        if self.filter_setup_ps < 0:
            raise ValueError("filter setup cost cannot be negative")


class ActiveStorageNode:
    """A storage target with an embedded filtering processor.

    Mirrors :class:`repro.cluster.node.StorageNode`'s interface
    (``serve_read`` / ``serve_write``) and adds
    :meth:`serve_filtered_read`.
    """

    def __init__(self, env: Environment, name: str, cluster_config,
                 active_config: ActiveStorageConfig = ActiveStorageConfig()):
        self.env = env
        self.name = name
        self.config = cluster_config
        self.active_config = active_config
        self.tca = TCA(env, name, config=cluster_config.tca)
        self.scsi = ScsiBus(env, f"{name}-scsi", config=cluster_config.scsi)
        self.disks = DiskArray(env, f"{name}-disks",
                               num_disks=cluster_config.num_disks,
                               config=cluster_config.disk)
        self.cpu = SwitchCPU(env, cpu_id=0, name=f"{name}-cpu",
                             clock=Clock(active_config.cpu_freq_hz))
        #: Bytes shipped onto the fabric after device-side filtering.
        self.filtered_bytes_out = 0
        self.unfiltered_bytes_read = 0

    # ------------------------------------------------------------------
    # Plain passthrough (same as StorageNode)
    # ------------------------------------------------------------------
    def serve_read(self, offset: int, nbytes: int, started=None):
        """Unfiltered read: identical to the passive storage node."""
        yield from self.tca.process_request()
        yield self.env.timeout(self.scsi.config.transaction_overhead_ps)
        self.scsi.stats.transactions += 1
        self.scsi.stats.bytes += nbytes
        yield from self.disks.read(offset, nbytes, started=started)
        self.tca.traffic.bytes_out += nbytes

    def serve_write(self, offset: int, nbytes: int):
        """Unfiltered write: identical to the passive storage node."""
        yield from self.tca.process_request()
        yield self.env.timeout(self.scsi.config.transaction_overhead_ps)
        self.scsi.stats.transactions += 1
        self.scsi.stats.bytes += nbytes
        yield from self.disks.write(offset, nbytes)
        self.tca.traffic.bytes_in += nbytes

    # ------------------------------------------------------------------
    # Device-side filtering
    # ------------------------------------------------------------------
    def serve_filtered_read(self, offset: int, nbytes: int,
                            filter_cycles: float, out_bytes: int,
                            started=None):
        """Read ``nbytes``, filter on the device CPU, ship ``out_bytes``.

        The device CPU scans records in line with the platter stream:
        completion is ``max(disk transfer, filter compute)`` after the
        request/positioning overheads (the same overlap structure as
        switch handlers, minus the fabric hop).
        """
        if out_bytes < 0 or out_bytes > nbytes:
            raise ValueError(
                f"filtered output {out_bytes} outside [0, {nbytes}]")
        yield from self.tca.process_request()
        yield self.env.timeout(self.active_config.filter_setup_ps)
        yield self.env.timeout(self.scsi.config.transaction_overhead_ps)
        self.scsi.stats.transactions += 1
        self.scsi.stats.bytes += nbytes

        disk_done = self.env.process(
            self.disks.read(offset, nbytes, started=started),
            name=f"{self.name}-filtered-read")
        compute_ps = self.cpu.clock.cycles(filter_cycles)
        self.cpu.accounting.add_busy(compute_ps)
        yield self.env.timeout(compute_ps)
        if not disk_done.processed:
            wait_start = self.env.now
            yield disk_done
            self.cpu.accounting.add_stall(self.env.now - wait_start)

        self.unfiltered_bytes_read += nbytes
        self.filtered_bytes_out += out_bytes
        self.tca.traffic.bytes_out += out_bytes

    def __repr__(self) -> str:
        return (f"<ActiveStorageNode {self.name}: "
                f"{self.unfiltered_bytes_read} B read, "
                f"{self.filtered_bytes_out} B shipped>")

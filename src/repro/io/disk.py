"""Disk model: seek time, rotation speed, peak bandwidth.

"The disk model includes three timing related parameters: seek time,
rotation speed and peak bandwidth.  For all the experiments in this
paper, we use two disks with a total peak bandwidth of 100 MB/s and we
assume a sequential access pattern because most of our applications deal
with large files."

:class:`Disk` is one spindle; :class:`DiskArray` stripes a logical
stream across several disks, giving the paper's 2 x 50 MB/s = 100 MB/s
aggregate.  Sequential requests pay positioning (seek + half-rotation)
only when the head moves away from the previous request's end.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.sampling import BusyTracker
from ..sim.core import Environment
from ..sim.resources import Resource
from ..sim.units import SEC, ms, transfer_ps


class DiskError(Exception):
    """A request kept failing after the firmware's bounded retries."""


@dataclass(frozen=True)
class DiskConfig:
    """One spindle's timing parameters."""

    seek_ps: int = ms(5.0)
    rpm: int = 10_000
    bandwidth_bytes_per_s: float = 50e6

    def __post_init__(self):
        if self.seek_ps < 0:
            raise ValueError("seek time cannot be negative")
        if self.rpm <= 0:
            raise ValueError("rotation speed must be positive")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("disk bandwidth must be positive")

    @property
    def half_rotation_ps(self) -> int:
        """Average rotational latency: half a revolution."""
        return round(SEC * 60 / self.rpm / 2)


@dataclass
class DiskStats:
    requests: int = 0
    sequential_requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    positioning_ps: int = 0
    transfer_ps_total: int = 0
    #: Injected transient media errors observed by this spindle.
    transient_errors: int = 0
    #: Firmware retry attempts actually issued (≤ transient_errors; an
    #: exhausted request errors without a matching retry).
    retries: int = 0


class Disk:
    """One disk spindle with a single request queue (the arm)."""

    def __init__(self, env: Environment, name: str,
                 config: DiskConfig = DiskConfig()):
        self.env = env
        self.name = name
        self.config = config
        self.stats = DiskStats()
        self.arm = Resource(env, capacity=1, name=f"{name}.arm")
        self.busy = BusyTracker(env)
        self._head_position = -1  # byte offset after the last transfer
        #: When the arm finishes its last analytically-scheduled request
        #: (the burst path's stand-in for the ``arm`` Resource queue).
        self._arm_free_ps = 0
        self._injector = None
        env.add_context_provider(self._failure_context)

    def _failure_context(self) -> dict:
        return {f"disk:{self.name}": (
            f"{self.stats.requests} reqs, "
            f"{self.stats.transient_errors} transient errors, "
            f"{'busy' if self.busy.busy else 'idle'}, "
            f"{len(self.arm.queue)} queued on arm")}

    def attach_faults(self, injector) -> None:
        """Subject this spindle to ``injector``'s fault plan."""
        self._injector = injector

    def position_head(self, offset: int) -> None:
        """Pre-position the head (models OS read-ahead having already
        seeked, or a file contiguous with prior activity)."""
        self._head_position = offset

    def _access(self, offset: int, nbytes: int, write: bool, started):
        """Shared read/write mechanics with bounded transient-error retries.

        Without an attached fault plan the control flow (and therefore
        the timing) is exactly the pre-reliability position-then-stream
        sequence.  An injected transient error surfaces mid-transfer
        (roughly half the data has moved before the bad sector); the
        firmware recalibrates — an exponentially backed-off delay that
        also invalidates the head position, so the retry pays
        positioning again — and replays the request, up to
        ``max_retries`` times before raising :class:`DiskError`.
        """
        with self.arm.request() as grant:
            yield grant
            self.busy.enter()
            start_ps = self.env.now
            try:
                self.stats.requests += 1
                attempt = 0
                while True:
                    if offset == self._head_position:
                        self.stats.sequential_requests += 1
                    else:
                        positioning = (self.config.seek_ps
                                       + self.config.half_rotation_ps)
                        self.stats.positioning_ps += positioning
                        yield self.env.timeout(positioning)
                    if started is not None and not started.triggered:
                        started.succeed()
                    transfer = transfer_ps(nbytes,
                                           self.config.bandwidth_bytes_per_s)
                    faulted = (self._injector is not None
                               and self._injector.plan.disk.enabled
                               and self._injector.disk_error(self.name, write))
                    if not faulted:
                        self.stats.transfer_ps_total += transfer
                        if write:
                            self.stats.bytes_written += nbytes
                        else:
                            self.stats.bytes_read += nbytes
                        yield self.env.timeout(transfer)
                        self._head_position = offset + nbytes
                        trace = self.env.trace
                        if trace is not None:
                            trace.span(
                                self.name,
                                "disk.write" if write else "disk.read",
                                start_ps, self.env.now - start_ps,
                                offset=offset, bytes=nbytes,
                                retries=attempt)
                        return
                    self.stats.transient_errors += 1
                    yield self.env.timeout(transfer // 2)
                    self._head_position = -1
                    faults = self._injector.plan.disk
                    if attempt >= faults.max_retries:
                        raise DiskError(
                            f"{self.name}: {'write' if write else 'read'} of "
                            f"{nbytes} B at {offset} failed after "
                            f"{faults.max_retries} retries")
                    self.stats.retries += 1
                    yield self.env.timeout(
                        faults.retry_backoff_ps * (2 ** attempt))
                    attempt += 1
            finally:
                self.busy.exit()

    def access_burst(self, at_ps: int, offset: int, nbytes: int,
                     write: bool):
        """Analytic mirror of :meth:`_access` for the fault-free burst
        path: same arm FIFO, positioning rule, stats, and busy signal,
        with zero kernel events.

        ``at_ps`` is when the request reaches the arm queue; callers
        must issue requests in nondecreasing ``at_ps`` order (the burst
        engine guarantees this — every issuer runs at real simulated
        time), which makes the scalar free-at state exactly the FIFO
        ``arm`` Resource.  Returns ``(data_start_ps, done_ps)``: when
        the head is positioned and data begins to flow, and when the
        last byte moves.  Never used under a fault plan — transient
        errors need the event-driven retry loop.
        """
        start = at_ps if at_ps > self._arm_free_ps else self._arm_free_ps
        self.stats.requests += 1
        if offset == self._head_position:
            self.stats.sequential_requests += 1
            data_start = start
        else:
            positioning = self.config.seek_ps + self.config.half_rotation_ps
            self.stats.positioning_ps += positioning
            data_start = start + positioning
        transfer = transfer_ps(nbytes, self.config.bandwidth_bytes_per_s)
        self.stats.transfer_ps_total += transfer
        if write:
            self.stats.bytes_written += nbytes
        else:
            self.stats.bytes_read += nbytes
        done = data_start + transfer
        self._head_position = offset + nbytes
        self.busy.credit(done - start)
        self._arm_free_ps = done
        return data_start, done

    def read(self, offset: int, nbytes: int, started=None):
        """Read ``nbytes`` at ``offset``; generator completes when the
        last byte leaves the platter.

        ``started``, if given, is an event triggered once the head is in
        position and data begins to flow — the moment a cut-through
        stream's first bytes leave for the fabric.
        """
        if nbytes <= 0:
            raise ValueError(f"read size must be positive, got {nbytes}")
        yield from self._access(offset, nbytes, write=False, started=started)

    def write(self, offset: int, nbytes: int, started=None):
        """Write ``nbytes`` at ``offset``; same mechanics as read (the
        paper's disk model is symmetric: position, then stream)."""
        if nbytes <= 0:
            raise ValueError(f"write size must be positive, got {nbytes}")
        yield from self._access(offset, nbytes, write=True, started=started)

    def __repr__(self) -> str:
        return f"<Disk {self.name}: {self.stats.bytes_read} B read>"


class DiskArray:
    """Several spindles striped into one logical sequential device.

    A logical read of B bytes is split evenly across the disks, which
    transfer in parallel — aggregate bandwidth is the sum of the
    spindles', i.e. the paper's 100 MB/s for two 50 MB/s disks.
    """

    def __init__(self, env: Environment, name: str = "disks",
                 num_disks: int = 2, config: DiskConfig = DiskConfig()):
        if num_disks < 1:
            raise ValueError("need at least one disk")
        self.env = env
        self.name = name
        self.config = config
        self.disks = [Disk(env, f"{name}-{i}", config) for i in range(num_disks)]

    def attach_faults(self, injector) -> None:
        """Subject every spindle to ``injector``'s fault plan."""
        for disk in self.disks:
            disk.attach_faults(injector)

    @property
    def transient_errors(self) -> int:
        return sum(d.stats.transient_errors for d in self.disks)

    @property
    def retries(self) -> int:
        return sum(d.stats.retries for d in self.disks)

    @property
    def aggregate_bandwidth(self) -> float:
        """Peak bytes/s across all spindles."""
        return self.config.bandwidth_bytes_per_s * len(self.disks)

    def position_heads(self, offset: int) -> None:
        """Pre-position every spindle (see Disk.position_head)."""
        for disk in self.disks:
            disk.position_head(offset // len(self.disks))

    @property
    def bytes_read(self) -> int:
        return sum(d.stats.bytes_read for d in self.disks)

    def read(self, offset: int, nbytes: int, started=None):
        """Striped read; completes when every spindle's share is done.

        ``started`` fires when the first spindle begins transferring.
        """
        if nbytes <= 0:
            raise ValueError(f"read size must be positive, got {nbytes}")
        share = -(-nbytes // len(self.disks))
        events = []
        remaining = nbytes
        for index, disk in enumerate(self.disks):
            chunk = min(share, remaining)
            if chunk <= 0:
                break
            events.append(self.env.process(
                disk.read(offset // len(self.disks), chunk,
                          started=started if index == 0 else None),
                name=f"{disk.name}-read"))
            remaining -= chunk
        yield self.env.all_of(events)

    def _access_burst(self, at_ps: int, offset: int, nbytes: int,
                      write: bool):
        """Shared striped-access math for the burst path."""
        share = -(-nbytes // len(self.disks))
        remaining = nbytes
        started = done = None
        for index, disk in enumerate(self.disks):
            chunk = min(share, remaining)
            if chunk <= 0:
                break
            data_start, disk_done = disk.access_burst(
                at_ps, offset // len(self.disks), chunk, write)
            if index == 0:
                started = data_start
            if done is None or disk_done > done:
                done = disk_done
            remaining -= chunk
        return started, done

    def read_burst(self, at_ps: int, offset: int, nbytes: int):
        """Analytic striped read (see :meth:`Disk.access_burst`).

        Returns ``(started_ps, done_ps)``: when the first spindle's
        data begins to flow, and when the last spindle finishes.
        """
        if nbytes <= 0:
            raise ValueError(f"read size must be positive, got {nbytes}")
        return self._access_burst(at_ps, offset, nbytes, write=False)

    def write_burst(self, at_ps: int, offset: int, nbytes: int):
        """Analytic striped write; returns ``(started_ps, done_ps)``."""
        if nbytes <= 0:
            raise ValueError(f"write size must be positive, got {nbytes}")
        return self._access_burst(at_ps, offset, nbytes, write=True)

    def write(self, offset: int, nbytes: int, started=None):
        """Striped write; completes when every spindle's share is done."""
        if nbytes <= 0:
            raise ValueError(f"write size must be positive, got {nbytes}")
        share = -(-nbytes // len(self.disks))
        events = []
        remaining = nbytes
        for index, disk in enumerate(self.disks):
            chunk = min(share, remaining)
            if chunk <= 0:
                break
            events.append(self.env.process(
                disk.write(offset // len(self.disks), chunk,
                           started=started if index == 0 else None),
                name=f"{disk.name}-write"))
            remaining -= chunk
        yield self.env.all_of(events)

    @property
    def bytes_written(self) -> int:
        return sum(d.stats.bytes_written for d in self.disks)

    def utilization(self) -> float:
        """Mean spindle busy fraction since simulation start."""
        if not self.disks:
            return 0.0
        return sum(d.busy.utilization() for d in self.disks) / len(self.disks)

    def transfer_ps(self, nbytes: int) -> int:
        """Analytic aggregate transfer time for a sequential stream."""
        return transfer_ps(nbytes, self.aggregate_bandwidth)

    def __repr__(self) -> str:
        return (f"<DiskArray {self.name}: {len(self.disks)} disks, "
                f"{self.aggregate_bandwidth / 1e6:g} MB/s>")

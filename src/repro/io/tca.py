"""Target channel adapter: the storage node's network interface.

The TCA bridges the SCSI bus to the SAN: it accepts read/write requests
from the fabric, drives the disks over SCSI, and streams the data back
as MTU packets.  Unlike the HCA it has no host CPU to charge — its
per-request processing is fixed firmware time.

Reliability: the TCA inherits the adapter's ACK/NACK retransmission
behaviour (its tx link retransmits dropped/corrupted data packets with
timeout + exponential backoff), and it reports request progress to the
kernel's failure diagnostics so a chaotic run that wedges mid-stream
shows how far the storage side got.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.hca import ChannelAdapter, HcaConfig
from ..sim.core import Environment
from ..sim.units import us


@dataclass(frozen=True)
class TcaConfig:
    """Firmware costs of the target adapter."""

    #: Request parsing + SCSI command setup.
    request_processing_ps: int = us(2.0)
    #: Per-packet segmentation cost when streaming data out.
    per_packet_ps: int = us(0.05)

    def __post_init__(self):
        if self.request_processing_ps < 0 or self.per_packet_ps < 0:
            raise ValueError("TCA costs cannot be negative")


class TCA(ChannelAdapter):
    """Storage-side adapter."""

    def __init__(self, env: Environment, node_id: str,
                 config: TcaConfig = TcaConfig()):
        # The generic adapter machinery reuses HcaConfig for packet costs.
        super().__init__(env, node_id,
                         HcaConfig(send_overhead_ps=0, recv_poll_ps=0,
                                   per_packet_ps=config.per_packet_ps))
        self.tca_config = config
        self.requests_processed = 0
        env.add_context_provider(self._failure_context)

    def _failure_context(self) -> dict:
        status = {"requests": self.requests_processed}
        status.update({key: value for key, value in self.reliability().items()
                       if value})
        return {f"tca:{self.node_id}": str(status)}

    def process_request(self):
        """Firmware time to accept and decode one I/O request."""
        yield self.env.timeout(self.tca_config.request_processing_ps)
        self.requests_processed += 1

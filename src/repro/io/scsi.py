"""Ultra-320 SCSI bus model.

"The SCSI bus models the overhead of arbitration and selection
transactions and has a peak throughput of 320 MB/s."  Every transaction
pays arbitration + selection before data moves; the bus is a shared
medium, so concurrent requests serialize on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.core import Environment
from ..sim.resources import Resource
from ..sim.units import transfer_ps, us


class ScsiError(Exception):
    """A bus transaction kept failing parity after bounded retries."""


@dataclass(frozen=True)
class ScsiConfig:
    """Ultra-320 bus parameters."""

    bandwidth_bytes_per_s: float = 320e6
    arbitration_ps: int = us(1.0)
    selection_ps: int = us(0.5)

    def __post_init__(self):
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bus bandwidth must be positive")
        if self.arbitration_ps < 0 or self.selection_ps < 0:
            raise ValueError("bus overheads cannot be negative")

    @property
    def transaction_overhead_ps(self) -> int:
        return self.arbitration_ps + self.selection_ps


@dataclass
class ScsiStats:
    transactions: int = 0
    bytes: int = 0
    busy_ps: int = 0
    #: Injected parity/arbitration errors; each wasted one full
    #: transaction's worth of bus time before the replay.
    parity_errors: int = 0
    retries: int = 0


class ScsiBus:
    """A shared ultra-320 bus between the TCA and the disks."""

    def __init__(self, env: Environment, name: str = "scsi",
                 config: ScsiConfig = ScsiConfig()):
        self.env = env
        self.name = name
        self.config = config
        self.stats = ScsiStats()
        self._bus = Resource(env, capacity=1, name=f"{name}.bus")
        self._injector = None
        env.add_context_provider(self._failure_context)

    def attach_faults(self, injector) -> None:
        """Subject this bus to ``injector``'s fault plan."""
        self._injector = injector

    def _failure_context(self) -> dict:
        return {f"scsi:{self.name}": (
            f"{self.stats.transactions} transactions, "
            f"{self.stats.parity_errors} parity errors, "
            f"{len(self._bus.queue)} queued on bus")}

    def transaction(self, nbytes: int):
        """One bus transaction moving ``nbytes``.

        An injected parity error is detected at the end of the data
        phase, so it wastes the whole transaction's bus time before the
        initiator replays it — up to ``max_retries`` times, after which
        :class:`ScsiError` surfaces to the caller.
        """
        if nbytes < 0:
            raise ValueError(f"negative transaction size {nbytes}")
        with self._bus.request() as grant:
            yield grant
            attempt = 0
            while True:
                duration = (self.config.transaction_overhead_ps
                            + transfer_ps(nbytes,
                                          self.config.bandwidth_bytes_per_s))
                faulted = (self._injector is not None
                           and self._injector.plan.scsi.enabled
                           and self._injector.scsi_error(self.name))
                if not faulted:
                    self.stats.transactions += 1
                    self.stats.bytes += nbytes
                    self.stats.busy_ps += duration
                    yield self.env.timeout(duration)
                    return
                self.stats.parity_errors += 1
                self.stats.busy_ps += duration
                yield self.env.timeout(duration)
                faults = self._injector.plan.scsi
                if attempt >= faults.max_retries:
                    raise ScsiError(
                        f"{self.name}: transaction of {nbytes} B failed "
                        f"parity after {faults.max_retries} retries")
                self.stats.retries += 1
                attempt += 1

    def occupancy_ps(self, nbytes: int) -> int:
        """Analytic cost of one transaction (no contention)."""
        return (self.config.transaction_overhead_ps
                + transfer_ps(nbytes, self.config.bandwidth_bytes_per_s))

    def __repr__(self) -> str:
        return f"<ScsiBus {self.name}: {self.stats.transactions} transactions>"

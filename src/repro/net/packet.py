"""Packet and message formats for the SAN.

The paper uses the InfiniBand Raw packet format with a 128-bit header.
For active messages the header embeds a 64-bit *active header* carrying a
6-bit handler ID, a 32-bit address field (the physical address the data
buffer will be mapped to by the ATB), and — for multi-core switches — a
switch-CPU ID (Section 5, "Multiple Switch Processors").

The MTU is 512 bytes: larger payloads are carried by multiple packets of
one logical :class:`Message`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Network maximum transfer unit (payload bytes per packet).
MTU = 512

#: 128-bit packet header.
HEADER_BYTES = 16

#: Handler ID field width: 6 bits -> up to 64 handlers.
MAX_HANDLER_ID = (1 << 6) - 1

#: Address field width: 32 bits.
MAX_ADDRESS = (1 << 32) - 1

_message_ids = itertools.count()


@dataclass(frozen=True)
class ActiveHeader:
    """The 64-bit active portion of a packet header."""

    handler_id: int
    address: int
    cpu_id: Optional[int] = None
    #: Degradation route: when the switch cannot (or will no longer) run
    #: the handler, the packet is forwarded unprocessed to this node via
    #: normal cut-through switching — slower, never wrong.
    fallback_dst: Optional[str] = None

    def __post_init__(self):
        if not 0 <= self.handler_id <= MAX_HANDLER_ID:
            raise ValueError(
                f"handler_id {self.handler_id} exceeds the 6-bit field")
        if not 0 <= self.address <= MAX_ADDRESS:
            raise ValueError(
                f"address {self.address:#x} exceeds the 32-bit field")
        if self.cpu_id is not None and not 0 <= self.cpu_id < 4:
            raise ValueError(f"cpu_id {self.cpu_id} out of range (0-3)")


@dataclass
class Packet:
    """One wire packet.

    ``payload_bytes`` is the simulated size; ``payload`` optionally
    carries real data for the functional kernels (the timing model never
    looks inside it).
    """

    src: str
    dst: str
    payload_bytes: int
    active: Optional[ActiveHeader] = None
    payload: Any = None
    message_id: int = field(default_factory=lambda: next(_message_ids))
    seq: int = 0
    last: bool = True
    #: Total payload bytes of the logical message this packet belongs to
    #: (carried in the header so a handler invoked by the first packet
    #: knows the full stream length, like the paper's file_len argument).
    message_bytes: Optional[int] = None
    #: Optional event triggered when the packet finishes its last wire hop
    #: (used by the send unit to recycle compose buffers).  Triggered at
    #: most once, and only for a successfully delivered copy — a dropped
    #: or corrupted transmission keeps the compose buffer pinned for the
    #: retransmission.
    notify: Any = None
    #: Set by a faulty link: the packet was delivered with a failing CRC.
    #: The receiving port discards it and fires :attr:`nack`.
    corrupted: bool = False
    #: On a corrupted copy: event the receiving port fires so the sender
    #: retransmits immediately instead of waiting out its ACK timeout.
    nack: Any = None

    def __post_init__(self):
        if self.payload_bytes < 0:
            raise ValueError(f"negative payload size {self.payload_bytes}")
        if self.payload_bytes > MTU:
            raise ValueError(
                f"payload {self.payload_bytes} exceeds MTU {MTU}; "
                "use Message.packetize")

    @property
    def wire_bytes(self) -> int:
        """Bytes on the wire including the 128-bit header."""
        return self.payload_bytes + HEADER_BYTES

    @property
    def is_active(self) -> bool:
        """True when the packet targets a switch handler."""
        return self.active is not None


@dataclass
class Message:
    """A logical message, possibly larger than one MTU."""

    src: str
    dst: str
    size_bytes: int
    active: Optional[ActiveHeader] = None
    payload: Any = None

    def __post_init__(self):
        if self.size_bytes < 0:
            raise ValueError(f"negative message size {self.size_bytes}")

    @property
    def num_packets(self) -> int:
        """Packets needed to carry this message."""
        if self.size_bytes == 0:
            return 1  # a bare header/control packet
        return -(-self.size_bytes // MTU)

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire, headers included."""
        return self.size_bytes + self.num_packets * HEADER_BYTES

    def packetize(self) -> list:
        """Split into MTU-sized :class:`Packet` objects."""
        message_id = next(_message_ids)
        packets = []
        remaining = self.size_bytes
        count = self.num_packets
        for seq in range(count):
            chunk = min(MTU, remaining) if remaining else 0
            remaining -= chunk
            packets.append(Packet(
                src=self.src,
                dst=self.dst,
                payload_bytes=chunk,
                active=self.active,
                payload=self.payload if seq == 0 else None,
                message_id=message_id,
                seq=seq,
                last=(seq == count - 1),
                message_bytes=self.size_bytes,
            ))
        return packets

"""Routing tables for the SAN fabric.

The paper's switch keeps an on-chip routing table mapping destinations
to output ports, and uses virtual cut-through routing with a 100 ns
per-switch routing latency.  We implement destination-based routing:
each switch owns a :class:`RoutingTable` from node ID to output port.

Multi-stage fabrics add two refinements:

* **default ports** — a leaf/edge switch routes any unknown destination
  up its uplink (the tree's "when in doubt, go up" rule); the top of
  the fabric has no default, so a truly unroutable destination fails
  loudly instead of looping;
* **ECMP groups** — a Clos core offers several equal-cost up-ports for
  the same destination.  :meth:`add_group` registers the port set and
  :meth:`lookup` picks one by hashing the *flow key* (source,
  destination), so a flow's packets stay in order on one path while
  distinct flows spread across the core.  The hash is CRC-32 — stable
  across processes and runs, keeping simulations bit-reproducible.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple


class RoutingError(Exception):
    """Raised when a destination has no route."""


def flow_hash(*parts: object) -> int:
    """Deterministic, process-independent hash of a flow identifier.

    Python's builtin ``hash`` is salted per process; CRC-32 over the
    joined parts is stable, so ECMP path choices (and therefore whole
    simulations) reproduce bit for bit.
    """
    key = "\x00".join(str(part) for part in parts)
    return zlib.crc32(key.encode("utf-8"))


class RoutingTable:
    """Destination -> output-port map for one switch."""

    def __init__(self, switch_name: str):
        self.switch_name = switch_name
        self._routes: Dict[str, int] = {}
        #: ECMP: destination -> candidate up-ports (sorted, deduplicated).
        self._groups: Dict[str, Tuple[int, ...]] = {}
        self._default_port: Optional[int] = None
        #: Ports declared dead (fail-stop); lookups never select them.
        self._down: Set[int] = set()
        #: destination -> *surviving* ECMP members.  Aliases ``_groups``
        #: while nothing is down, so the failure-free lookup path is the
        #: exact pre-failover code; rebuilt once per mark_down/restore
        #: so per-packet lookups stay O(1) during an outage.
        self._live_groups: Dict[str, Tuple[int, ...]] = self._groups

    def add(self, destination: str, port: int) -> None:
        """Route traffic for ``destination`` to ``port``."""
        if port < 0:
            raise ValueError(f"port must be non-negative, got {port}")
        self._routes[destination] = port
        self._groups.pop(destination, None)
        if self._down:
            self._rebuild_live()

    def add_many(self, destinations: Iterable[str], port: int) -> None:
        """Route several destinations out the same port (uplinks)."""
        for destination in destinations:
            self.add(destination, port)

    def add_group(self, destination: str, ports: Sequence[int]) -> None:
        """Offer several equal-cost ports for ``destination`` (ECMP).

        A single-port group collapses to a plain route.  Lookups pick a
        member by flow hash; :meth:`ports_for` exposes the full set.
        """
        unique = tuple(sorted(set(ports)))
        if not unique:
            raise ValueError(f"ECMP group for {destination!r} needs ports")
        if any(port < 0 for port in unique):
            raise ValueError(f"ports must be non-negative, got {ports}")
        if len(unique) == 1:
            self.add(destination, unique[0])
            return
        self._routes.pop(destination, None)
        self._groups[destination] = unique
        if self._down:
            self._rebuild_live()

    def add_group_many(self, destinations: Iterable[str],
                       ports: Sequence[int]) -> None:
        """Register the same ECMP group for several destinations."""
        for destination in destinations:
            self.add_group(destination, ports)

    def set_default(self, port: int) -> None:
        """Fallback port for unknown destinations (e.g. the uplink)."""
        if port < 0:
            raise ValueError(f"port must be non-negative, got {port}")
        self._default_port = port

    @property
    def default_port(self) -> Optional[int]:
        return self._default_port

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def mark_down(self, port: int) -> bool:
        """Exclude ``port`` from every lookup (fail-stop failover).

        ECMP groups re-hash onto their surviving members; plain routes
        and a down default raise :class:`RoutingError` at lookup time —
        traffic fails loudly instead of feeding a dead wire.  Returns
        ``True`` when the port was newly marked.
        """
        if port in self._down:
            return False
        self._down.add(port)
        self._rebuild_live()
        return True

    def restore(self, port: int) -> bool:
        """Readmit a previously :meth:`mark_down`-ed port.  Returns
        ``True`` when the port was actually down."""
        if port not in self._down:
            return False
        self._down.discard(port)
        self._rebuild_live()
        return True

    @property
    def down_ports(self) -> Tuple[int, ...]:
        """Currently excluded ports, sorted."""
        return tuple(sorted(self._down))

    def _rebuild_live(self) -> None:
        if not self._down:
            self._live_groups = self._groups
            return
        self._live_groups = {
            destination: tuple(p for p in group if p not in self._down)
            for destination, group in self._groups.items()}

    def lookup(self, destination: str, flow_key: Optional[object] = None
               ) -> int:
        """Output port for ``destination``.

        ``flow_key`` selects among ECMP candidates (hashed, stable); it
        defaults to the destination itself, so single-path tables behave
        exactly as before.  Ports excluded by :meth:`mark_down` are
        never returned: ECMP flows re-hash across the survivors, and a
        destination whose only route is down raises
        :class:`RoutingError`.
        """
        port = self._routes.get(destination)
        if port is not None:
            if port in self._down:
                raise RoutingError(
                    f"{self.switch_name}: only route to {destination!r} "
                    f"is down port {port}")
            return port
        if self._live_groups:
            group = self._live_groups.get(destination)
            if group is not None:
                if not group:
                    raise RoutingError(
                        f"{self.switch_name}: every ECMP port to "
                        f"{destination!r} is down")
                index = flow_hash(destination if flow_key is None
                                  else flow_key) % len(group)
                return group[index]
        if self._default_port is None:
            raise RoutingError(
                f"{self.switch_name}: no route to {destination!r}")
        if self._default_port in self._down:
            raise RoutingError(
                f"{self.switch_name}: default port {self._default_port} "
                f"to {destination!r} is down")
        return self._default_port

    def ports_for(self, destination: str) -> Tuple[int, ...]:
        """Every *live* port ``destination`` may be routed to (explicit
        routes and surviving ECMP members; the default port only when
        nothing explicit exists).  Empty when the destination is
        unroutable — including when every candidate port is down, which
        is how static validation sees a partition."""
        port = self._routes.get(destination)
        if port is not None:
            return () if port in self._down else (port,)
        group = self._live_groups.get(destination)
        if group is not None:
            return group
        if self._default_port is not None and \
                self._default_port not in self._down:
            return (self._default_port,)
        return ()

    def has_route(self, destination: str,
                  include_default: bool = False) -> bool:
        """Is ``destination`` routed here?

        With ``include_default=False`` (the default) only *explicit*
        routes count — the question multi-switch fabrics ask ("is this
        host actually attached below me?").  ``include_default=True``
        additionally accepts the default port, i.e. "would a packet for
        this destination leave this switch at all".
        """
        if destination in self._routes or destination in self._groups:
            return True
        return include_default and self._default_port is not None

    def __contains__(self, destination: str) -> bool:
        """Explicit routes only.

        A default port does **not** make every destination "contained":
        in a multi-switch fabric ``dest in table`` must mean "this
        switch specifically knows ``dest``", or the check is useless the
        moment an uplink default exists.  Use
        ``has_route(dest, include_default=True)`` for the old
        any-port-will-do semantics.
        """
        return destination in self._routes or destination in self._groups

    def __len__(self) -> int:
        return len(self._routes) + len(self._groups)

    def __repr__(self) -> str:
        return (f"<RoutingTable {self.switch_name}: {len(self._routes)} routes, "
                f"{len(self._groups)} ECMP groups, "
                f"default={self._default_port}>")

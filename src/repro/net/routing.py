"""Routing tables for the SAN fabric.

The paper's switch keeps an on-chip routing table mapping destinations
to output ports, and uses virtual cut-through routing with a 100 ns
per-switch routing latency.  We implement destination-based routing:
each switch owns a :class:`RoutingTable` from node ID to output port.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional


class RoutingError(Exception):
    """Raised when a destination has no route."""


class RoutingTable:
    """Destination -> output-port map for one switch."""

    def __init__(self, switch_name: str):
        self.switch_name = switch_name
        self._routes: Dict[str, int] = {}
        self._default_port: Optional[int] = None

    def add(self, destination: str, port: int) -> None:
        """Route traffic for ``destination`` to ``port``."""
        if port < 0:
            raise ValueError(f"port must be non-negative, got {port}")
        self._routes[destination] = port

    def add_many(self, destinations: Iterable[str], port: int) -> None:
        """Route several destinations out the same port (uplinks)."""
        for destination in destinations:
            self.add(destination, port)

    def set_default(self, port: int) -> None:
        """Fallback port for unknown destinations (e.g. the uplink)."""
        if port < 0:
            raise ValueError(f"port must be non-negative, got {port}")
        self._default_port = port

    def lookup(self, destination: str) -> int:
        """Output port for ``destination``."""
        port = self._routes.get(destination, self._default_port)
        if port is None:
            raise RoutingError(
                f"{self.switch_name}: no route to {destination!r}")
        return port

    def __contains__(self, destination: str) -> bool:
        return destination in self._routes or self._default_port is not None

    def __len__(self) -> int:
        return len(self._routes)

    def __repr__(self) -> str:
        return (f"<RoutingTable {self.switch_name}: {len(self._routes)} routes, "
                f"default={self._default_port}>")

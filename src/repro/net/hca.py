"""Host channel adapter (HCA) with a queue-pair interface.

The paper's network interface is "an InfiniBand HCA connected directly
to the memory controller" implementing "a queue pair interface with the
user program".  Sends are user-level (no kernel crossing): the host
builds a descriptor and rings a doorbell; receives are **polled** (the
reduction experiments explicitly use polling, which favours the normal
case).

The HCA also keeps the *host I/O traffic* counters — total bytes in and
out of the host — which is the third metric in every figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.core import Environment
from ..sim.resources import Store
from ..sim.units import us
from .link import Link, LinkTransmissionError
from .packet import ActiveHeader, Message, Packet


class AdapterSendError(Exception):
    """A message could not be delivered even after link-level retries."""


@dataclass(frozen=True)
class HcaConfig:
    """Software/hardware costs of the queue-pair interface."""

    #: Host busy time to post a send descriptor and ring the doorbell.
    send_overhead_ps: int = us(1.5)
    #: Host busy time to poll a completion and consume a message.
    recv_poll_ps: int = us(1.0)
    #: HCA hardware per-packet processing (DMA setup, CRC...).
    per_packet_ps: int = us(0.1)
    #: Receive discipline: "polling" (spin on the completion queue — the
    #: paper's choice, which "favors the normal case") or "interrupt"
    #: (per-message interrupt + context switch, costed below).
    receive_mode: str = "polling"
    #: Host busy time per interrupt-driven receive (trap, handler,
    #: scheduler round trip).
    interrupt_cost_ps: int = us(12)

    def __post_init__(self):
        if min(self.send_overhead_ps, self.recv_poll_ps, self.per_packet_ps,
               self.interrupt_cost_ps) < 0:
            raise ValueError("HCA overheads cannot be negative")
        if self.receive_mode not in ("polling", "interrupt"):
            raise ValueError(
                f"unknown receive mode {self.receive_mode!r}")


@dataclass
class TrafficStats:
    """Bytes crossing this adapter (the host I/O traffic metric)."""

    bytes_in: int = 0
    bytes_out: int = 0
    messages_in: int = 0
    messages_out: int = 0
    #: Messages abandoned after the link exhausted its retransmissions.
    send_failures: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_in + self.bytes_out


class ChannelAdapter:
    """Base adapter: packetization, reassembly, and traffic counting."""

    def __init__(self, env: Environment, node_id: str,
                 config: HcaConfig = HcaConfig()):
        self.env = env
        self.node_id = node_id
        self.config = config
        self.traffic = TrafficStats()
        #: Reassembled inbound messages awaiting the consumer.
        self.recv_queue: Store = Store(env)
        #: Optional bounded admission queue (``repro.traffic``): when a
        #: service layer multiplexes open-loop request streams through
        #: this adapter, the queue lives here so its shed-load counters
        #: surface through :meth:`reliability` like any other loss.
        self.admission = None
        self._tx_link: Optional[Link] = None
        self._rx_link: Optional[Link] = None
        self._partial: Dict[int, list] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, tx_link: Link, rx_link: Link) -> None:
        """Connect to the fabric and start draining the receive side."""
        self._tx_link = tx_link
        self._rx_link = rx_link
        self.env.process(self._rx_loop(rx_link), name=f"{self.node_id}-rx",
                         daemon=True)

    def attach_admission(self, queue) -> None:
        """Install a ``repro.traffic.AdmissionQueue`` on this adapter."""
        self.admission = queue

    def _rx_loop(self, rx_link: Link):
        while True:
            packet = yield from rx_link.receive()
            yield self.env.timeout(self.config.per_packet_ps)
            self._accept(packet)

    def _accept(self, packet: Packet) -> None:
        # Reassembly is safe under faults: the link layer delivers each
        # packet exactly once and in order (corrupted copies are
        # CRC-discarded at the receiving port and retransmitted before
        # the next packet of the message can serialize).
        self.traffic.bytes_in += packet.payload_bytes
        parts = self._partial.setdefault(packet.message_id, [])
        parts.append(packet)
        if packet.last:
            del self._partial[packet.message_id]
            message = Message(
                src=packet.src,
                dst=packet.dst,
                size_bytes=sum(p.payload_bytes for p in parts),
                active=parts[0].active,
                payload=parts[0].payload,
            )
            self.traffic.messages_in += 1
            self.recv_queue.put(message)

    # ------------------------------------------------------------------
    # Send path (per-packet)
    # ------------------------------------------------------------------
    def transmit(self, message: Message):
        """Push a message onto the wire packet by packet."""
        if self._tx_link is None:
            raise RuntimeError(f"{self.node_id}: adapter not attached")
        self.traffic.bytes_out += message.size_bytes
        self.traffic.messages_out += 1
        for packet in message.packetize():
            yield self.env.timeout(self.config.per_packet_ps)
            try:
                yield from self._tx_link.send(packet)
            except LinkTransmissionError as exc:
                self.traffic.send_failures += 1
                raise AdapterSendError(
                    f"{self.node_id}: message to {message.dst} "
                    f"({message.size_bytes} B) aborted at packet "
                    f"{packet.seq}") from exc

    def reliability(self) -> Dict[str, int]:
        """Fault/recovery counters of this adapter's two link directions."""
        snapshot: Dict[str, int] = {"send_failures": self.traffic.send_failures}
        if self.admission is not None:
            snapshot["admission_offered"] = self.admission.offered
            snapshot["admission_dropped"] = self.admission.dropped
        for prefix, link in (("tx", self._tx_link), ("rx", self._rx_link)):
            if link is None:
                continue
            stats = link.stats
            snapshot[f"{prefix}_retransmits"] = stats.retransmits
            snapshot[f"{prefix}_dropped"] = stats.packets_dropped
            snapshot[f"{prefix}_corrupted"] = stats.packets_corrupted
        return snapshot

    # ------------------------------------------------------------------
    # Bulk accounting (block-level I/O pipeline)
    # ------------------------------------------------------------------
    def account_bulk_in(self, nbytes: int) -> None:
        """Record inbound bulk bytes moved by the block pipeline."""
        self.traffic.bytes_in += nbytes

    def account_bulk_out(self, nbytes: int) -> None:
        """Record outbound bulk bytes moved by the block pipeline."""
        self.traffic.bytes_out += nbytes

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.node_id}: "
                f"in={self.traffic.bytes_in} out={self.traffic.bytes_out}>")


class HCA(ChannelAdapter):
    """Host-side adapter: send/receive cost the *host CPU* time.

    ``send`` and ``poll_receive`` are generators meant to be driven from
    the host application's process; they charge the host's accounting.
    """

    def __init__(self, env: Environment, node_id: str, host_cpu,
                 config: HcaConfig = HcaConfig()):
        super().__init__(env, node_id, config)
        self.host_cpu = host_cpu

    def send(self, dst: str, size_bytes: int,
             active: Optional[ActiveHeader] = None, payload=None):
        """Post a send: charges host overhead, then streams packets."""
        yield from self.host_cpu.busy(self.config.send_overhead_ps)
        message = Message(src=self.node_id, dst=dst, size_bytes=size_bytes,
                          active=active, payload=payload)
        yield from self.transmit(message)

    def poll_receive(self):
        """Receive the next message (blocks until one arrives).

        Under "polling" the cost is the completion-queue poll; under
        "interrupt" every message pays the interrupt/context-switch
        path instead (the alternative the paper's experiments avoid
        because it would favor the active system even more).
        """
        message = yield self.recv_queue.get()
        if self.config.receive_mode == "interrupt":
            yield from self.host_cpu.busy(self.config.interrupt_cost_ps)
        else:
            yield from self.host_cpu.busy(self.config.recv_poll_ps)
        return message

"""SAN links with credit-based flow control.

Each link direction sustains 1 GB/s (the paper's switch supports 1 GB/s
bidirectional per port) and uses credit-based flow control: a sender
consumes one credit per packet and the receiver returns the credit when
it drains the packet from the link's delivery queue.

Two granularities are offered:

* :meth:`Link.send` — full per-packet discrete-event transmission, used
  for small active messages (reductions, request headers);
* :meth:`Link.occupancy_ps` — analytic serialization time for bulk
  streams, used by the block-level I/O pipeline where simulating every
  one of ~250 000 MTU packets would be wasted effort (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.sampling import BusyTracker
from ..sim.core import Environment
from ..sim.resources import Container, Resource, Store
from ..sim.units import ns, transfer_ps
from .packet import Packet


@dataclass(frozen=True)
class LinkConfig:
    """Physical parameters of one link direction."""

    bandwidth_bytes_per_s: float = 1.0e9
    propagation_ps: int = ns(20)
    credits: int = 8

    def __post_init__(self):
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.propagation_ps < 0:
            raise ValueError("propagation delay cannot be negative")
        if self.credits < 1:
            raise ValueError("need at least one credit")


@dataclass
class LinkStats:
    packets: int = 0
    bytes: int = 0


class Link:
    """One unidirectional link delivering packets into a FIFO."""

    def __init__(self, env: Environment, name: str,
                 config: LinkConfig = LinkConfig()):
        self.env = env
        self.name = name
        self.config = config
        self.stats = LinkStats()
        #: Delivered packets awaiting the receiver.
        self.delivered: Store = Store(env, name=f"{name}.delivered")
        self._credits = Container(env, capacity=config.credits,
                                  init=config.credits,
                                  name=f"{name}.credits")
        self._wire = Resource(env, capacity=1, name=f"{name}.wire")
        self.busy = BusyTracker(env)

    # ------------------------------------------------------------------
    # Packet-level path
    # ------------------------------------------------------------------
    def send(self, packet: Packet):
        """Transmit one packet.

        The generator completes once the packet has left the wire (so a
        sender can pipeline back-to-back packets); propagation and
        delivery continue asynchronously.
        """
        yield self._credits.get(1)
        with self._wire.request() as grant:
            yield grant
            self.busy.enter()
            try:
                yield self.env.timeout(self.serialization_ps(packet.wire_bytes))
            finally:
                self.busy.exit()
        self.stats.packets += 1
        self.stats.bytes += packet.wire_bytes
        if packet.notify is not None and not packet.notify.triggered:
            packet.notify.succeed()
        self.env.process(self._deliver(packet), name=f"{self.name}-deliver")

    def _deliver(self, packet: Packet):
        yield self.env.timeout(self.config.propagation_ps)
        yield self.delivered.put(packet)

    def receive(self):
        """Take the next delivered packet and return its credit."""
        packet = yield self.delivered.get()
        yield self._credits.put(1)
        return packet

    # ------------------------------------------------------------------
    # Analytic path for bulk streams
    # ------------------------------------------------------------------
    def serialization_ps(self, nbytes: int) -> int:
        """Wire time for ``nbytes`` at link bandwidth."""
        return transfer_ps(nbytes, self.config.bandwidth_bytes_per_s)

    def occupancy_ps(self, payload_bytes: int, mtu: int = 512,
                     header_bytes: int = 16) -> int:
        """Wire time for a bulk payload including per-packet headers."""
        if payload_bytes <= 0:
            return 0
        packets = -(-payload_bytes // mtu)
        return self.serialization_ps(payload_bytes + packets * header_bytes)

    def acquire(self) -> Resource:
        """The wire resource, for bulk transfers that hold the link."""
        return self._wire

    def utilization(self) -> float:
        """Measured wire busy fraction (packet-path traffic only)."""
        return self.busy.utilization()

    def __repr__(self) -> str:
        return (f"<Link {self.name}: {self.config.bandwidth_bytes_per_s / 1e9:g} GB/s, "
                f"{self.stats.packets} pkts>")


class DuplexLink:
    """A full-duplex link: two independent directions."""

    def __init__(self, env: Environment, a: str, b: str,
                 config: LinkConfig = LinkConfig()):
        self.a_to_b = Link(env, f"{a}->{b}", config)
        self.b_to_a = Link(env, f"{b}->{a}", config)

    def direction(self, from_a: bool) -> Link:
        return self.a_to_b if from_a else self.b_to_a

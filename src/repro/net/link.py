"""SAN links with credit-based flow control.

Each link direction sustains 1 GB/s (the paper's switch supports 1 GB/s
bidirectional per port) and uses credit-based flow control: a sender
consumes one credit per packet and the receiver returns the credit when
it drains the packet from the link's delivery queue.

Two granularities are offered:

* :meth:`Link.send` — full per-packet discrete-event transmission, used
  for small active messages (reductions, request headers);
* :meth:`Link.occupancy_ps` — analytic serialization time for bulk
  streams, used by the block-level I/O pipeline where simulating every
  one of ~250 000 MTU packets would be wasted effort (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional

from ..metrics.sampling import BusyTracker
from ..sim.core import Environment
from ..sim.resources import Container, Resource, Store
from ..sim.units import ns, transfer_ps
from .packet import Packet


class LinkTransmissionError(Exception):
    """A packet exhausted its retransmission budget."""


#: Retry policy used for a fail-stopped link when no fault plan is
#: attached (a link can die by explicit `fail()` without an injector).
#: Constructed lazily to avoid an import cycle with repro.faults.
_FALLBACK_POLICY = None


def _fallback_policy():
    global _FALLBACK_POLICY
    if _FALLBACK_POLICY is None:
        from ..faults.plan import LinkFaults
        _FALLBACK_POLICY = LinkFaults()
    return _FALLBACK_POLICY


@dataclass(frozen=True)
class LinkConfig:
    """Physical parameters of one link direction."""

    bandwidth_bytes_per_s: float = 1.0e9
    propagation_ps: int = ns(20)
    credits: int = 8

    def __post_init__(self):
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.propagation_ps < 0:
            raise ValueError("propagation delay cannot be negative")
        if self.credits < 1:
            raise ValueError("need at least one credit")


@dataclass
class LinkStats:
    """Per-direction traffic counters, split by outcome.

    ``sent`` counts serialization attempts (retransmissions included);
    ``delivered`` counts packets drained intact by the receiver; drops
    and CRC discards account for the difference.  When the receiver has
    drained everything, ``packets_sent == packets_delivered +
    packets_dropped + packets_corrupted`` — the chaos suite's
    conservation property.
    """

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    packets_corrupted: int = 0
    #: Extra attempts caused by drops/corruptions (first tries excluded).
    retransmits: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    #: Backed-off ACK-timeout waits clamped to ``max_backoff_ps``.
    capped_backoffs: int = 0
    #: Packets abandoned after the full retry budget (fail-stop signal).
    packets_abandoned: int = 0

    # Pre-reliability aliases: "the" packet/byte count of a link is what
    # it actually delivered.
    @property
    def packets(self) -> int:
        return self.packets_delivered

    @property
    def bytes(self) -> int:
        return self.bytes_delivered


class Link:
    """One unidirectional link delivering packets into a FIFO."""

    def __init__(self, env: Environment, name: str,
                 config: LinkConfig = LinkConfig()):
        self.env = env
        self.name = name
        self.config = config
        self.stats = LinkStats()
        #: Delivered packets awaiting the receiver.
        self.delivered: Store = Store(env, name=f"{name}.delivered")
        self._credits = Container(env, capacity=config.credits,
                                  init=config.credits,
                                  name=f"{name}.credits")
        self._wire = Resource(env, capacity=1, name=f"{name}.wire")
        #: When the wire finishes its last analytically-reserved bulk
        #: hold — the burst path's stand-in for queueing on ``_wire``
        #: (see System._reserve_wires and repro.sim.burst).
        self.bulk_free_ps = 0
        self.busy = BusyTracker(env)
        #: Credits currently consumed by in-flight packets; every code
        #: path that gets/puts a credit updates this, so conservation is
        #: checkable at any instant (see :meth:`assert_credit_conservation`).
        self._credits_outstanding = 0
        self._injector = None
        #: Fail-stop state: simulation time the wire went dead (ground
        #: truth; nobody on the data path reads this directly — senders
        #: *discover* it via ACK-timeout escalation).
        self._down_since: Optional[int] = None
        #: When the sender side *declared* this link dead (a packet
        #: exhausted its retry budget); detection latency is the gap to
        #: ``_down_since``.
        self.declared_down_at: Optional[int] = None
        self._down_listeners: List[Callable[[], None]] = []

    def attach_faults(self, injector) -> None:
        """Subject this link to ``injector``'s fault plan (idempotent)."""
        self._injector = injector

    # ------------------------------------------------------------------
    # Fail-stop state
    # ------------------------------------------------------------------
    @property
    def is_down(self) -> bool:
        """Ground truth: is the wire currently dead?"""
        return self._down_since is not None

    def fail(self) -> None:
        """Fail-stop this link direction: every copy sent from now on
        vanishes in the fabric (the sender sees only ACK silence)."""
        if self._down_since is None:
            self._down_since = self.env.now

    def revive(self) -> None:
        """Bring a fail-stopped wire back.  Sender-side declarations are
        *not* reset — a revived path must be re-validated by the
        management plane (``Fabric.revive_*`` restores routing)."""
        self._down_since = None

    def add_down_listener(self, listener: Callable[[], None]) -> None:
        """Call ``listener`` when the sender declares this link dead
        (first retry-budget exhaustion).  The owning switch port uses
        this to fail over its routing table."""
        self._down_listeners.append(listener)

    def _declare_down(self) -> None:
        if self.declared_down_at is not None:
            return
        self.declared_down_at = self.env.now
        trace = self.env.trace
        if trace is not None:
            trace.instant(self.name, "link.down_declared", self.env.now,
                          down_since=(self._down_since
                                      if self._down_since is not None
                                      else -1))
        for listener in self._down_listeners:
            listener()

    # ------------------------------------------------------------------
    # Packet-level path
    # ------------------------------------------------------------------
    def send(self, packet: Packet):
        """Transmit one packet reliably.

        The generator completes once the packet has *successfully* left
        the wire (so a sender can pipeline back-to-back packets);
        propagation and delivery continue asynchronously.  Under an
        attached fault plan a dropped copy is retransmitted after an
        exponentially backed-off ACK timeout, and a corrupted copy is
        retransmitted as soon as the receiving port's CRC check NACKs
        it.  Raises :class:`LinkTransmissionError` when a packet
        exhausts ``max_retries``.
        """
        injector = self._injector
        faults = injector.plan.link if injector is not None else None
        yield self._credits.get(1)
        self._credits_outstanding += 1
        attempt = 0
        while True:
            with self._wire.request() as grant:
                yield grant
                self.busy.enter()
                start_ps = self.env.now
                try:
                    yield self.env.timeout(
                        self.serialization_ps(packet.wire_bytes))
                finally:
                    self.busy.exit()
            self.stats.packets_sent += 1
            self.stats.bytes_sent += packet.wire_bytes
            if self._down_since is not None:
                # Fail-stop: the copy vanishes regardless of any fault
                # plan — the sender only ever observes ACK silence.  No
                # injector draw, so transient streams stay aligned.
                outcome = "down"
            else:
                outcome = ("ok" if faults is None or not faults.enabled
                           else injector.link_outcome(self.name))
            trace = self.env.trace
            if trace is not None:
                trace.span(self.name, "link.xmit", start_ps,
                           self.env.now - start_ps, msg=packet.message_id,
                           seq=packet.seq, bytes=packet.wire_bytes,
                           outcome=outcome, attempt=attempt)
            if outcome == "ok":
                # The compose buffer is recycled exactly once, and only
                # now: a dropped/corrupted copy still needs the buffer
                # for its retransmission.
                if packet.notify is not None and not packet.notify.triggered:
                    packet.notify.succeed()
                self.env.process(self._deliver(packet),
                                 name=f"{self.name}-deliver")
                return
            # A dead wire needs a retry policy even without a fault plan.
            policy = faults if faults is not None else _fallback_policy()
            if attempt >= policy.max_retries:
                # The last copy still goes in its outcome bucket so that
                # sent == delivered + dropped + corrupted holds even for
                # packets that exhaust their retries.
                if outcome == "corrupt":
                    self.stats.packets_corrupted += 1
                else:
                    self.stats.packets_dropped += 1
                self.stats.packets_abandoned += 1
                self._credits_outstanding -= 1
                yield self._credits.put(1)
                # Recycle the compose buffer: there will be no further
                # retransmission to pin it for.
                if packet.notify is not None and not packet.notify.triggered:
                    packet.notify.succeed()
                # ACK-timeout escalation: a packet that stayed silent
                # through the whole budget declares the port dead.
                self._declare_down()
                raise LinkTransmissionError(
                    f"{self.name}: packet msg={packet.message_id} "
                    f"seq={packet.seq} still {outcome} after "
                    f"{policy.max_retries} retries")
            self.stats.retransmits += 1
            if outcome in ("drop", "down"):
                # The copy vanished in the fabric: its credit must come
                # back *here* — nobody downstream will ever return it.
                self.stats.packets_dropped += 1
                self._credits_outstanding -= 1
                yield self._credits.put(1)
                backoff_ps = int(
                    policy.ack_timeout_ps * policy.backoff_factor ** attempt)
                if policy.max_backoff_ps is not None \
                        and backoff_ps > policy.max_backoff_ps:
                    backoff_ps = policy.max_backoff_ps
                    self.stats.capped_backoffs += 1
                yield self.env.timeout(backoff_ps)
                yield self._credits.get(1)
                self._credits_outstanding += 1
            else:  # corrupt: the copy arrives, fails CRC, and is NACKed.
                nack = self.env.event()
                mangled = replace(packet, corrupted=True, nack=nack,
                                  notify=None)
                self.env.process(self._deliver(mangled),
                                 name=f"{self.name}-deliver-corrupt")
                yield nack
                # NACK turnaround: control packet propagating back.
                yield self.env.timeout(self.config.propagation_ps)
                yield self._credits.get(1)
                self._credits_outstanding += 1
            attempt += 1

    def _deliver(self, packet: Packet):
        yield self.env.timeout(self.config.propagation_ps)
        yield self.delivered.put(packet)

    def receive(self):
        """Take the next intact packet and return its credit.

        Corrupted copies are discarded here — the port's CRC check —
        after returning their credit and firing the NACK that triggers
        the sender's retransmission, so callers only ever see packets
        that passed the CRC.
        """
        while True:
            packet = yield self.delivered.get()
            self._credits_outstanding -= 1
            yield self._credits.put(1)
            if packet.corrupted:
                self.stats.packets_corrupted += 1
                if packet.nack is not None and not packet.nack.triggered:
                    packet.nack.succeed()
                continue
            self.stats.packets_delivered += 1
            self.stats.bytes_delivered += packet.wire_bytes
            trace = self.env.trace
            if trace is not None:
                trace.instant(self.name, "link.deliver", self.env.now,
                              msg=packet.message_id, seq=packet.seq,
                              bytes=packet.wire_bytes)
            return packet

    def assert_credit_conservation(self) -> None:
        """Every credit is either free or held by one in-flight packet."""
        free = self._credits.level
        outstanding = self._credits_outstanding
        if outstanding < 0 or free + outstanding != self.config.credits:
            raise AssertionError(
                f"{self.name}: credit conservation violated — "
                f"{free} free + {outstanding} outstanding != "
                f"{self.config.credits} total")

    # ------------------------------------------------------------------
    # Analytic path for bulk streams
    # ------------------------------------------------------------------
    def serialization_ps(self, nbytes: int) -> int:
        """Wire time for ``nbytes`` at link bandwidth."""
        return transfer_ps(nbytes, self.config.bandwidth_bytes_per_s)

    def occupancy_ps(self, payload_bytes: int, mtu: int = 512,
                     header_bytes: int = 16) -> int:
        """Wire time for a bulk payload including per-packet headers."""
        if payload_bytes <= 0:
            return 0
        packets = -(-payload_bytes // mtu)
        return self.serialization_ps(payload_bytes + packets * header_bytes)

    def acquire(self) -> Resource:
        """The wire resource, for bulk transfers that hold the link."""
        return self._wire

    def utilization(self) -> float:
        """Measured wire busy fraction (packet-path traffic only)."""
        return self.busy.utilization()

    def __repr__(self) -> str:
        return (f"<Link {self.name}: {self.config.bandwidth_bytes_per_s / 1e9:g} GB/s, "
                f"{self.stats.packets} pkts>")


class DuplexLink:
    """A full-duplex link: two independent directions."""

    def __init__(self, env: Environment, a: str, b: str,
                 config: LinkConfig = LinkConfig()):
        self.a_to_b = Link(env, f"{a}->{b}", config)
        self.b_to_a = Link(env, f"{b}->{a}", config)

    def attach_faults(self, injector) -> None:
        self.a_to_b.attach_faults(injector)
        self.b_to_a.attach_faults(injector)

    def direction(self, from_a: bool) -> Link:
        return self.a_to_b if from_a else self.b_to_a

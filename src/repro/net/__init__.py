"""System-area network: packets, links, routing, channel adapters."""

from .hca import AdapterSendError, HCA, ChannelAdapter, HcaConfig, TrafficStats
from .link import DuplexLink, Link, LinkConfig, LinkStats, LinkTransmissionError
from .packet import (
    HEADER_BYTES,
    MAX_ADDRESS,
    MAX_HANDLER_ID,
    MTU,
    ActiveHeader,
    Message,
    Packet,
)
from .routing import RoutingError, RoutingTable

__all__ = [
    "AdapterSendError",
    "HCA",
    "ChannelAdapter",
    "HcaConfig",
    "TrafficStats",
    "DuplexLink",
    "Link",
    "LinkConfig",
    "LinkStats",
    "LinkTransmissionError",
    "HEADER_BYTES",
    "MAX_ADDRESS",
    "MAX_HANDLER_ID",
    "MTU",
    "ActiveHeader",
    "Message",
    "Packet",
    "RoutingError",
    "RoutingTable",
]

"""Benchmark application framework.

Every paper benchmark is expressed as a set of :class:`BlockWork` items
— one per I/O request — carrying both the *functional* outcome of that
block (match counts, filtered sizes, output bytes) and the *cost model*
inputs (busy cycles plus cache-driving callables).  The framework then
runs the four configurations:

normal        host does everything, synchronous disk reads
normal+pref   host does everything, two outstanding reads
active        handler on the switch + host portion, synchronous
active+pref   handler + host portion, two outstanding reads

The active pipeline has three coupled stages — producer (disk stream),
switch consumer (handler per block), host consumer (host portion) —
connected by queues, with the stream's token protocol bounding the
number of blocks in flight.

Cost-model conventions (used by every app module):

* ``host_cycles`` etc. are *busy* cycles at 2 GHz; cache stalls come
  from the ``*_stall_fn`` callables, which drive the real cache/TLB
  hierarchy with the block's reference pattern at simulation time (so
  cache state evolves in execution order);
* handler cycles are charged at the 500 MHz switch clock; data-buffer
  reads never miss (the paper's design point), so handler stalls come
  only from switch *local-memory* references (e.g. HashJoin's
  bit-vector) and from waiting on valid bits when the handler outruns
  the stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..cluster.config import ClusterConfig
from ..cluster.iostream import ReadStream
from ..cluster.system import System
from ..cpu.accounting import Breakdown
from ..metrics.results import BenchmarkResult, CaseResult
from ..sim.burst import fluid_requested
from ..sim.resources import Store

#: Cache-driving callable: gets the memory hierarchy, returns stall ps.
StallFn = Callable[[object], int]


@dataclass
class BlockWork:
    """Per-I/O-request work description."""

    nbytes: int
    #: Normal case: host does the whole job.
    host_cycles: float = 0.0
    host_stall_fn: Optional[StallFn] = None
    #: Active case: the switch handler's share.
    handler_cycles: float = 0.0
    handler_stall_fn: Optional[StallFn] = None
    #: Bytes the handler forwards to the host (filtered data).
    out_bytes: int = 0
    #: Active case: the host's share.
    active_host_cycles: float = 0.0
    active_host_stall_fn: Optional[StallFn] = None


def _stall(fn: Optional[StallFn], hierarchy) -> int:
    return fn(hierarchy) if fn is not None else 0


class _StallSampler:
    """Fluid-mode stall evaluation (``REPRO_SIM_FLUID=1``).

    Driving the cache/TLB hierarchy with every block's reference
    pattern dominates steady-state stream phases, yet after the caches
    warm up each block's stall is nearly identical.  Fluid mode keeps
    the *transitions* exact — the first/last :attr:`WARM` blocks of
    every stream, plus every :attr:`STRIDE`-th block as a periodic
    resample — and reuses the last measured stall for the blocks in
    between, per stall channel (host / handler / active-host).  Busy
    cycles are never approximated; only the cache-stall component is
    sampled, which is what bounds the error (pinned by
    tests/sim/test_fluid_mode.py, documented in docs/scaling.md).

    Disabled (the default) it is a transparent pass-through, so the
    exact paths share one call site.
    """

    WARM = 8
    STRIDE = 16

    def __init__(self, num_blocks: int, enabled: Optional[bool] = None):
        self.enabled = fluid_requested() if enabled is None else enabled
        self.num_blocks = num_blocks
        self._last: Dict[str, int] = {}

    def stall(self, channel: str, index: int,
              fn: Optional[StallFn], hierarchy) -> int:
        if fn is None:
            return 0
        if not self.enabled:
            return fn(hierarchy)
        if (index < self.WARM or index >= self.num_blocks - self.WARM
                or index % self.STRIDE == 0 or channel not in self._last):
            value = fn(hierarchy)
            self._last[channel] = value
            return value
        return self._last[channel]


class StreamApp:
    """Base class for the single-stream I/O benchmarks.

    Subclasses set :attr:`name`, :attr:`request_bytes`, optionally
    :attr:`database_scaled`, and implement :meth:`prepare` to fill
    :attr:`blocks` from the (scaled) workload.
    """

    name: str = "stream-app"
    request_bytes: int = 64 * 1024
    database_scaled: bool = False
    cache_scale_divisor: int = 1
    num_switch_cpus: int = 1

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.blocks: List[BlockWork] = []
        self.prepare()
        if not self.blocks:
            raise ValueError(f"{self.name}: prepare() produced no blocks")

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Generate the workload and fill ``self.blocks``."""
        raise NotImplementedError

    def cluster_config(self) -> ClusterConfig:
        """The base cluster configuration for this benchmark."""
        return ClusterConfig(
            database_scaled_caches=self.database_scaled,
            cache_scale_divisor=self.cache_scale_divisor,
            num_switch_cpus=self.num_switch_cpus,
        )

    @property
    def total_bytes(self) -> int:
        return sum(b.nbytes for b in self.blocks)

    # ------------------------------------------------------------------
    # Normal pipeline
    # ------------------------------------------------------------------
    def run_normal(self, system: System, depth: int):
        """normal / normal+pref: everything on the host."""
        host = system.host
        stream = ReadStream(system, host, total_bytes=self.total_bytes,
                            request_bytes=self.request_bytes, depth=depth,
                            to_switch=False, request_cost="os")
        sampler = _StallSampler(len(self.blocks))
        for index, work in enumerate(self.blocks):
            arrival = yield from stream.next_block()
            yield from stream.consume_fully(arrival)
            stall = sampler.stall("host", index,
                                  work.host_stall_fn, host.hierarchy)
            yield from host.cpu.work(work.host_cycles, stall)
            yield from stream.done_with(arrival)

    # ------------------------------------------------------------------
    # Active pipeline
    # ------------------------------------------------------------------
    def run_active(self, system: System, depth: int):
        """active / active+pref: switch handler + host portion."""
        host = system.host
        env = system.env
        stream = ReadStream(system, host, total_bytes=self.total_bytes,
                            request_bytes=self.request_bytes, depth=depth,
                            to_switch=True, request_cost="active")
        ready_for_host: Store = Store(env)
        sampler = _StallSampler(len(self.blocks))

        def switch_stage(env):
            # The stream token returns when the handler has consumed the
            # block (its data buffers are free again); the host stage
            # drains the filtered output downstream.  This is what keeps
            # "both the host and switch CPU busy" in BOTH active cases —
            # the prefetch depth only bounds outstanding *disk* requests.
            for index, work in enumerate(self.blocks):
                arrival = yield from stream.next_block()
                cpu_peek = system.switch_cpu_peek()
                stall = sampler.stall("handler", index,
                                      work.handler_stall_fn,
                                      cpu_peek.hierarchy)
                yield from system.process_on_switch(
                    work.handler_cycles, stall,
                    arrival_end_event=arrival.end_event,
                    arrival_end_ps=arrival.end_ps)
                if work.out_bytes > 0:
                    yield from system.switch_to_host_bulk(host, work.out_bytes)
                yield ready_for_host.put((index, work))
                yield from stream.done_with(arrival)

        def host_stage(env):
            for _ in self.blocks:
                index, work = yield ready_for_host.get()
                stall = sampler.stall("active-host", index,
                                      work.active_host_stall_fn,
                                      host.hierarchy)
                yield from host.cpu.work(work.active_host_cycles, stall)

        switch_proc = env.process(switch_stage(env), name=f"{self.name}-switch")
        host_proc = env.process(host_stage(env), name=f"{self.name}-host")
        yield env.all_of([switch_proc, host_proc])

    # ------------------------------------------------------------------
    # Entry point for one configuration
    # ------------------------------------------------------------------
    def run_case(self, config: ClusterConfig,
                 trace=None, metrics_sink: Optional[dict] = None
                 ) -> CaseResult:
        """Run one configuration.

        ``trace`` is an optional ``repro.obs.TraceCollector``; when given,
        every instrumented component emits structured events into it for
        the duration of the case.  ``metrics_sink`` is an optional dict
        that receives the system's full ``MetricsRegistry`` snapshot after
        the run — the cache/TLB/memory counters behind the bench harness
        and the golden-equivalence tests.  The returned
        :class:`CaseResult` is identical either way — observers never
        feed back into results.
        """
        system = System(config)
        if trace is not None:
            system.attach_trace(trace)
        # Failure context: a wedged run's DeadlockError/WatchdogError
        # names the benchmark and configuration it happened in.
        system.env.add_context(app=self.name, config=config.case_label)
        if config.active:
            runner = self.run_active(system, config.prefetch_depth)
        else:
            runner = self.run_normal(system, config.prefetch_depth)
        proc = system.env.process(runner, name=f"{self.name}-{config.case_label}")
        system.env.run(until=proc)
        if metrics_sink is not None:
            metrics_sink.update(system.metrics.snapshot())
        return finalize_case(system, config.case_label)


def finalize_case(system: System, label: str) -> CaseResult:
    """Collect breakdowns and traffic after a run completed."""
    exec_ps = system.env.now
    host = system.host
    switch_breakdowns: List[Breakdown] = []
    if system.config.active:
        switch_breakdowns = [cpu.accounting.finalize(exec_ps)
                             for cpu in system.switch.cpus]
    extra = system.reliability_report()
    if fluid_requested():
        # Provenance: approximate-mode results must never be mistaken
        # for (or cached as) exact ones.
        extra["fluid_mode"] = 1.0
    return CaseResult(
        label=label,
        exec_ps=exec_ps,
        host=host.cpu.accounting.finalize(exec_ps),
        switch_cpus=switch_breakdowns,
        host_bytes_in=host.hca.traffic.bytes_in,
        host_bytes_out=host.hca.traffic.bytes_out,
        # Empty on a perfect fabric, so fault-free results are
        # byte-identical to the pre-reliability ones.
        extra=extra,
    )


def run_four_cases(app_factory: Callable[[], StreamApp],
                   name: Optional[str] = None) -> BenchmarkResult:
    """Deprecated alias of :func:`repro.run`.

    .. deprecated:: 1.1
       Use ``repro.run(app, ...)`` — it accepts the same factory
       callables, and registered names/classes additionally get
       parallel execution and result caching.
    """
    import warnings
    warnings.warn(
        "run_four_cases() is deprecated; use repro.run(app, ...) — it "
        "returns the same result object and adds parallel/cached "
        "execution for registered apps",
        DeprecationWarning, stacklevel=2)
    from ..runner.api import run
    return run(app_factory, name=name)

"""The paper's nine benchmark applications."""

from .base import BlockWork, StreamApp, finalize_case, run_four_cases
from .grep import GrepApp, LiteralMatcher
from .hashjoin import HashJoinApp
from .md5 import Md5App, md5_digest, md5_interleaved
from .mpeg_filter import MpegFilterApp
from .reduction import (
    DISTRIBUTED,
    REDUCE_TO_ALL,
    REDUCE_TO_ONE,
    reduction_sweep,
    run_reduction_point,
)
from .select import SelectApp
from .sort import SortApp
from .tar import TarApp, build_archive, parse_archive, ustar_header

__all__ = [
    "BlockWork",
    "StreamApp",
    "finalize_case",
    "run_four_cases",
    "GrepApp",
    "LiteralMatcher",
    "HashJoinApp",
    "Md5App",
    "md5_digest",
    "md5_interleaved",
    "MpegFilterApp",
    "DISTRIBUTED",
    "REDUCE_TO_ALL",
    "REDUCE_TO_ONE",
    "reduction_sweep",
    "run_reduction_point",
    "SelectApp",
    "SortApp",
    "TarApp",
    "build_archive",
    "parse_archive",
    "ustar_header",
]

"""MPEG-filter benchmark (paper Section 5, Figures 3/4).

Two filtering tasks on a 2 202 640-byte I/P video stream: *frame
filtering* (drop all non-I frames — header checking plus a start-code
scan over the bitstream) and *color reduction* (decode each I frame,
reduce to mono, re-encode — compute-intensive).  The active system runs
the frame filter on the switch and color reduction on the host, "a
balanced computing pipeline"; about 63.5 % of the bytes (P frames) never
reach the host.

Cost model:

* frame filter: ~55 cycles/byte on the host — a start-code scan over
  every byte plus header checks plus copying surviving frames.  The
  switch handler runs the scan at 0.45x the host's cycle count: the ATB
  gives it aligned, flat addressing of the stream and the send unit
  forwards surviving frames directly from the data buffers, eliminating
  the host's software copy (the paper's key hardware assists);
* color reduction: ~440 cycles per I-frame byte (software decode +
  requantize + re-encode, 2003-era codec).
"""

from __future__ import annotations

from ..workloads import mpeg
from .base import BlockWork, StreamApp

#: Host cycles per scanned byte for the frame filter.
FILTER_HOST_CYCLES_PER_BYTE = 55.0
#: Switch handler cycle ratio vs host for the same filter (ATB framing +
#: send-unit forwarding remove the copy and alignment work).
SWITCH_FILTER_EFFICIENCY = 0.45
#: Host cycles per I-frame byte for color reduction.
REDUCE_CYCLES_PER_BYTE = 440.0
#: Per-frame header bookkeeping cycles.
FRAME_HEADER_CYCLES = 80

_INPUT_BASE = 0x2000_0000
_OUTPUT_BASE = 0x6000_0000


class MpegFilterApp(StreamApp):
    """MPEG-filter under the four configurations."""

    name = "mpeg-filter"
    request_bytes = 64 * 1024  # "All I/O requests are made in blocks of 64 KB"

    def prepare(self) -> None:
        total = max(32 * 1024, int(mpeg.PAPER_INPUT_BYTES * self.scale))
        stream = mpeg.generate_stream(total_bytes=total)
        self.stream = stream
        data = stream.data

        # Per-block byte composition, walking frames with carry (a frame
        # can straddle an I/O request boundary).
        frame_iter = iter(stream.frames)
        current = next(frame_iter, None)
        cursor_in = _INPUT_BASE
        cursor_out = _OUTPUT_BASE
        offset = 0
        self.total_i_bytes = 0
        while offset < len(data):
            nbytes = min(self.request_bytes, len(data) - offset)
            end = offset + nbytes
            i_bytes = 0
            frames_started = 0
            while current is not None and current.offset < end:
                overlap_start = max(current.offset, offset)
                overlap_end = min(current.offset + current.total_bytes, end)
                if current.is_intra:
                    i_bytes += max(0, overlap_end - overlap_start)
                if current.offset >= offset:
                    frames_started += 1
                if current.offset + current.total_bytes <= end:
                    current = next(frame_iter, None)
                else:
                    break
            self.total_i_bytes += i_bytes

            in_base = cursor_in
            out_base = cursor_out
            cursor_in += nbytes
            cursor_out += i_bytes

            def filter_stall(hierarchy, addr=in_base, size=nbytes):
                return hierarchy.load_range(addr, size)

            def reduce_stall(hierarchy, addr=out_base, size=i_bytes):
                # Output stores of the re-encoded mono frame.
                return hierarchy.store_range(addr, size) if size else 0

            def normal_stall(hierarchy, addr=in_base, size=nbytes,
                             out=out_base, out_size=i_bytes):
                stall = hierarchy.load_range(addr, size)
                if out_size:
                    stall += hierarchy.store_range(out, out_size)
                return stall

            filter_cycles = (nbytes * FILTER_HOST_CYCLES_PER_BYTE
                             + frames_started * FRAME_HEADER_CYCLES)
            reduce_cycles = i_bytes * REDUCE_CYCLES_PER_BYTE
            self.blocks.append(BlockWork(
                nbytes=nbytes,
                host_cycles=filter_cycles + reduce_cycles,
                host_stall_fn=normal_stall,
                handler_cycles=filter_cycles * SWITCH_FILTER_EFFICIENCY,
                handler_stall_fn=None,
                out_bytes=i_bytes,
                active_host_cycles=reduce_cycles,
                active_host_stall_fn=reduce_stall,
            ))
            offset = end

    @property
    def p_byte_fraction(self) -> float:
        """Filtered-out share (the paper's 36.5 % traffic reduction is
        1 - this for I frames... i.e. P bytes never reach the host)."""
        return 1.0 - self.total_i_bytes / len(self.stream.data)

"""MD5 benchmark (paper Section 5 and Figure 17).

MD5 is the paper's deliberate *failure case* for a single switch CPU —
"it is difficult to find an appropriate partitioning of this
compute-intensive code" — and the showcase for multiple embedded
processors: "There should be a predetermined finite number of blocks
processed from independent seeds, such that the I-th block is part of
the 'I mod K'-th chain.  The resulting K digests themselves form a
message, which can be MD5-encoded using a single-block algorithm."

The functional kernel is a from-scratch RFC 1321 MD5 (validated against
``hashlib`` in the tests) plus the K-way interleaved-chain variant.

Cost model: ~32 cycles/byte on the single-issue 2 GHz host (unoptimised
reference code: 64 steps per 64-byte chunk, each a handful of ALU ops
plus loads), the same instruction count at 0.95x on the switch CPU
(data-buffer loads are single-cycle).  The input is one 256 KB file
read with OS read-ahead already in train (``warm_start``), so the
experiment measures the compute partition rather than a first seek.
"""

from __future__ import annotations

import struct
from typing import List

from ..cluster.iostream import ReadStream
from ..cluster.system import System
from .base import BlockWork, StreamApp, _stall

#: Paper input size.
PAPER_INPUT_BYTES = 256 * 1024

#: Host cycles per hashed byte.
HOST_MD5_CYCLES_PER_BYTE = 32.0
#: Switch cycle ratio vs host (no load stalls from the data buffers).
SWITCH_MD5_EFFICIENCY = 0.95

_INPUT_BASE = 0x2000_0000


# ----------------------------------------------------------------------
# RFC 1321 MD5, from scratch
# ----------------------------------------------------------------------
_S = ([7, 12, 17, 22] * 4 + [5, 9, 14, 20] * 4
      + [4, 11, 16, 23] * 4 + [6, 10, 15, 21] * 4)
_K = [int(abs(__import__("math").sin(i + 1)) * 2 ** 32) & 0xFFFFFFFF
      for i in range(64)]
_INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)


def _left_rotate(x: int, amount: int) -> int:
    x &= 0xFFFFFFFF
    return ((x << amount) | (x >> (32 - amount))) & 0xFFFFFFFF


def _md5_compress(state, chunk: bytes):
    """One 512-bit block of the MD5 compression function."""
    a, b, c, d = state
    m = struct.unpack("<16I", chunk)
    aa, bb, cc, dd = a, b, c, d
    for i in range(64):
        if i < 16:
            f = (b & c) | (~b & d)
            g = i
        elif i < 32:
            f = (d & b) | (~d & c)
            g = (5 * i + 1) % 16
        elif i < 48:
            f = b ^ c ^ d
            g = (3 * i + 5) % 16
        else:
            f = c ^ (b | ~d)
            g = (7 * i) % 16
        f = (f + a + _K[i] + m[g]) & 0xFFFFFFFF
        a, d, c = d, c, b
        b = (b + _left_rotate(f, _S[i])) & 0xFFFFFFFF
    return ((aa + a) & 0xFFFFFFFF, (bb + b) & 0xFFFFFFFF,
            (cc + c) & 0xFFFFFFFF, (dd + d) & 0xFFFFFFFF)


def md5_digest(data: bytes) -> bytes:
    """MD5 of ``data`` (RFC 1321)."""
    state = _INIT
    length = len(data)
    data = data + b"\x80"
    data += b"\x00" * ((56 - len(data) % 64) % 64)
    data += struct.pack("<Q", (length * 8) & 0xFFFFFFFFFFFFFFFF)
    for offset in range(0, len(data), 64):
        state = _md5_compress(state, data[offset:offset + 64])
    return struct.pack("<4I", *state)


def md5_interleaved(data: bytes, chains: int,
                    block_bytes: int = 64 * 1024) -> bytes:
    """The paper's K-chain variant.

    Block i belongs to chain ``i mod chains``; the K chain digests form
    a message hashed by the single-block algorithm.  ``chains=1``
    reduces to a digest-of-digest of the plain stream, keeping the
    output format uniform across K.
    """
    if chains < 1:
        raise ValueError(f"need at least one chain, got {chains}")
    parts: List[List[bytes]] = [[] for _ in range(chains)]
    for index, offset in enumerate(range(0, len(data), block_bytes)):
        parts[index % chains].append(data[offset:offset + block_bytes])
    digests = b"".join(md5_digest(b"".join(chunks)) for chunks in parts)
    return md5_digest(digests)


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
class Md5App(StreamApp):
    """MD5 under the four configurations, with 1/2/4 switch CPUs."""

    name = "md5"
    # Fine-grained requests: the "I mod K" interleave only fills K CPUs
    # when several chain blocks are in flight per disk pass.
    request_bytes = 8 * 1024

    def __init__(self, scale: float = 1.0, num_switch_cpus: int = 1):
        self.num_switch_cpus = num_switch_cpus
        super().__init__(scale=scale)

    def prepare(self) -> None:
        total = max(16 * 1024, int(PAPER_INPUT_BYTES * self.scale))
        # Deterministic pseudo-file.
        stencil = bytes(range(256)) * 16
        data = (stencil * (total // len(stencil) + 1))[:total]
        self.data = data
        self.digest = md5_digest(data)
        self.chained_digest = md5_interleaved(
            data, self.num_switch_cpus, self.request_bytes)

        cursor = _INPUT_BASE
        for offset in range(0, total, self.request_bytes):
            nbytes = min(self.request_bytes, total - offset)
            base = cursor
            cursor += nbytes

            def host_stall(hierarchy, addr=base, size=nbytes):
                return hierarchy.load_range(addr, size)

            self.blocks.append(BlockWork(
                nbytes=nbytes,
                host_cycles=nbytes * HOST_MD5_CYCLES_PER_BYTE,
                host_stall_fn=host_stall,
                handler_cycles=(nbytes * HOST_MD5_CYCLES_PER_BYTE
                                * SWITCH_MD5_EFFICIENCY),
                handler_stall_fn=None,
                out_bytes=0,
                active_host_cycles=0,
                active_host_stall_fn=None,
            ))

    # ------------------------------------------------------------------
    # Flows: normal inherits StreamApp's, but with a warm-started stream;
    # active pins block i to switch CPU (i mod K).
    # ------------------------------------------------------------------
    #: Normal-case I/O request size (the host reads the file in
    #: ordinary 64 KB requests; the fine 8 KB granularity above is only
    #: the active case's chain-interleave unit).
    normal_request_bytes = 64 * 1024

    def run_normal(self, system: System, depth: int):
        host = system.host
        stream = ReadStream(system, host, total_bytes=self.total_bytes,
                            request_bytes=self.normal_request_bytes,
                            depth=depth, to_switch=False, request_cost="os",
                            warm_start=True)
        cursor = _INPUT_BASE
        for index in range(stream.num_blocks):
            arrival = yield from stream.next_block()
            yield from stream.consume_fully(arrival)
            stall = host.hierarchy.load_range(cursor, arrival.nbytes)
            cursor += arrival.nbytes
            yield from host.cpu.work(
                arrival.nbytes * HOST_MD5_CYCLES_PER_BYTE, stall)
            yield from stream.done_with(arrival)
        # Final digest delivered to the application: negligible.

    def run_active(self, system: System, depth: int):
        env = system.env
        host = system.host
        stream = ReadStream(system, host, total_bytes=self.total_bytes,
                            request_bytes=self.request_bytes, depth=depth,
                            to_switch=True, request_cost="active",
                            warm_start=True)
        from ..sim.resources import Store
        cpus = system.switch.cpus
        queues = [Store(env) for _ in cpus]
        done_events = []

        def chain_worker(cpu, queue, count):
            for _ in range(count):
                work, arrival = yield queue.get()
                yield from cpu.work(busy_cycles=work.handler_cycles)
                if not arrival.end_event.processed:
                    wait_start = env.now
                    yield arrival.end_event
                    cpu.accounting.add_stall(env.now - wait_start)

        counts = [0] * len(cpus)
        for index in range(len(self.blocks)):
            counts[index % len(cpus)] += 1
        for cpu, queue, count in zip(cpus, queues, counts):
            if count:
                done_events.append(env.process(
                    chain_worker(cpu, queue, count),
                    name=f"md5-chain-{cpu.cpu_id}"))

        def dispatcher(env):
            for index, work in enumerate(self.blocks):
                arrival = yield from stream.next_block()
                yield queues[index % len(cpus)].put((work, arrival))
                # The block is pinned to its chain's CPU; the stream can
                # fetch the next block as soon as this one has fully
                # arrived in that CPU's staging buffers.
                yield from stream.consume_fully(arrival)
                yield from stream.done_with(arrival)

        dispatch_proc = env.process(dispatcher(env), name="md5-dispatch")
        yield env.all_of([dispatch_proc] + done_events)
        # Digest-of-digests on one switch CPU: K * 16 bytes.
        final_bytes = 16 * len(cpus)
        yield from system.process_on_switch(
            cycles=final_bytes * HOST_MD5_CYCLES_PER_BYTE
            * SWITCH_MD5_EFFICIENCY, stall_ps=0)
        # Ship the 16-byte digest to the host.
        yield from system.switch_to_host_bulk(host, 16)

"""Grep benchmark (paper Section 5, Figures 9/10).

GNU-grep-style literal search: parse options (host), build the DFA, and
search.  The active version leaves option parsing on the host and runs
DFA setup + search on the switch; only matching lines travel to the
host, filtering almost all data.

Functional kernel: a real KMP automaton over the byte alphabet
(:class:`LiteralMatcher`), run block by block with carried state so
matches spanning I/O-request boundaries are found exactly as a streaming
handler would find them.

Cost model (cycles per unit, single-issue MIPS-like):

* DFA search: ~2.5 cycles/byte on the host (GNU grep's Boyer-Moore
  skip loop is sublinear); the switch handler runs the same inner loop at
  2.3 cycles/byte — slightly tighter because data-buffer loads are
  single-cycle and never miss, while the automaton's hot rows fit the
  1 KB D-cache;
* per matching line: ~200 cycles to record/copy it.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Tuple

from ..workloads import text
from .base import BlockWork, StreamApp

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: Host cycles per scanned byte (DFA transition loop).
HOST_SEARCH_CYCLES_PER_BYTE = 2.5
#: Switch handler cycles per scanned byte.
SWITCH_SEARCH_CYCLES_PER_BYTE = 2.3
#: Cycles to emit one matching line.
MATCH_EMIT_CYCLES = 200
#: One-time DFA construction (pattern compile) cycles.
DFA_SETUP_CYCLES = 25_000
#: Host cycles to consume one matching line in the active case.
ACTIVE_HOST_PER_MATCH_CYCLES = 100

#: Virtual address where arriving file data lands (advances per block).
_INPUT_BASE = 0x2000_0000


class LiteralMatcher:
    """KMP automaton for one literal pattern over bytes.

    ``state`` after feeding a prefix equals the length of the longest
    pattern prefix that is a suffix of the fed text — feeding can resume
    across block boundaries.
    """

    def __init__(self, pattern: bytes):
        if not pattern:
            raise ValueError("empty pattern")
        self.pattern = pattern
        # failure[i] = length of longest proper prefix-suffix of
        # pattern[:i].
        failure = [0] * (len(pattern) + 1)
        k = 0
        for i in range(1, len(pattern)):
            while k and pattern[i] != pattern[k]:
                k = failure[k]
            if pattern[i] == pattern[k]:
                k += 1
            failure[i + 1] = k
        self._failure = failure

    def feed(self, data: bytes, state: int = 0) -> Tuple[int, List[int]]:
        """Run the automaton over ``data`` from ``state``.

        Returns (new_state, list of end offsets of matches in data).
        """
        pattern = self.pattern
        failure = self._failure
        matches = []
        k = state
        for index, byte in enumerate(data):
            while k and byte != pattern[k]:
                k = failure[k]
            if byte == pattern[k]:
                k += 1
            if k == len(pattern):
                matches.append(index + 1)
                k = failure[k]
        return k, matches


class GrepApp(StreamApp):
    """The Grep benchmark under the four configurations."""

    name = "grep"
    request_bytes = 32 * 1024  # paper: "The I/O request size is 32 KB"

    def __init__(self, scale: float = 1.0, pattern: str = text.PAPER_PATTERN):
        self.pattern = pattern
        super().__init__(scale=scale)

    def prepare(self) -> None:
        total = max(8 * 1024, int(text.PAPER_FILE_BYTES * self.scale))
        match_lines = max(2, round(text.PAPER_MATCH_LINES * self.scale))
        data = text.generate_text(total_bytes=total, pattern=self.pattern,
                                  match_lines=match_lines)
        self.data = data
        needle = self.pattern.encode("ascii")

        # Feeding the KMP automaton chunk-by-chunk with carried state is
        # equivalent to one scan of the whole file, so find every
        # (overlapping) occurrence once at C speed and bucket the match
        # end offsets into I/O blocks — a match ending exactly on a
        # block boundary belongs to the earlier block, exactly as the
        # streaming automaton reports it.  LiteralMatcher remains the
        # definitional oracle (tests/apps/test_vectorized_kernels.py).
        all_ends: List[int] = []
        pos = data.find(needle)
        while pos != -1:
            all_ends.append(pos + len(needle))
            pos = data.find(needle, pos + 1)
        if _np is not None:
            boundaries = _np.arange(self.request_bytes,
                                    len(data) + self.request_bytes,
                                    self.request_bytes)
            per_block_matches = _np.diff(_np.searchsorted(
                _np.asarray(all_ends, dtype=_np.int64),
                boundaries, side="right"), prepend=0).tolist()
        else:
            cuts = [bisect_right(all_ends, hi)
                    for hi in range(self.request_bytes,
                                    len(data) + self.request_bytes,
                                    self.request_bytes)]
            per_block_matches = [hi - lo
                                 for lo, hi in zip([0] + cuts[:-1], cuts)]

        self.total_matches = 0
        self.total_match_bytes = 0
        line_carry = b""
        offset = 0
        block_index = 0
        input_cursor = [_INPUT_BASE]
        while offset < len(data):
            chunk = data[offset:offset + self.request_bytes]
            # The current line may have begun in the previous chunk
            # (line_carry) — matching-line bytes are reconstructed
            # exactly as a streaming handler would emit them.
            stream_chunk = line_carry + chunk
            match_bytes = 0
            matches_here = per_block_matches[block_index]
            block_index += 1
            if matches_here:
                lines = stream_chunk.split(b"\n")
                needle = self.pattern.encode("ascii")
                match_bytes = sum(len(line) + 1 for line in lines
                                  if needle in line)
            last_newline = stream_chunk.rfind(b"\n")
            line_carry = (b"" if last_newline < 0
                          else stream_chunk[last_newline + 1:])
            self.total_matches += matches_here
            self.total_match_bytes += match_bytes

            nbytes = len(chunk)
            base = input_cursor[0]
            input_cursor[0] += nbytes

            def host_stall(hierarchy, addr=base, size=nbytes):
                return hierarchy.load_range(addr, size)

            self.blocks.append(BlockWork(
                nbytes=nbytes,
                host_cycles=(nbytes * HOST_SEARCH_CYCLES_PER_BYTE
                             + matches_here * MATCH_EMIT_CYCLES),
                host_stall_fn=host_stall,
                handler_cycles=(nbytes * SWITCH_SEARCH_CYCLES_PER_BYTE
                                + matches_here * MATCH_EMIT_CYCLES),
                handler_stall_fn=None,
                out_bytes=match_bytes,
                active_host_cycles=matches_here * ACTIVE_HOST_PER_MATCH_CYCLES,
                active_host_stall_fn=None,
            ))
            offset += nbytes
        # DFA setup: on the host in normal runs, on the switch in active
        # runs (steps 2+3 move to the switch).
        self.blocks[0].host_cycles += DFA_SETUP_CYCLES
        self.blocks[0].handler_cycles += DFA_SETUP_CYCLES

    # Functional oracle used by the tests.
    def reference_match_count(self) -> int:
        return text.count_matching_lines(self.data, self.pattern)

"""Select benchmark (paper Section 5, Figures 7/8).

"Our database Select is a sequential range selection that checks if one
integer field of a record falls within a specific range.  The input data
table has a size of 128M bytes with the same configuration as in
HashJoin ... In the active cases, selection is done inside the switch
and the host CPU just counts the number of matching records."

Host caches are the paper's 8x-scaled database configuration.  When the
input is scaled down by N for simulation speed, the caches scale by the
same N (the paper's own methodology, applied once more).

Cost model: a record comparison is ~8 cycles (load key, two compares,
branch); the host's scan touches every record's first line (one 128 B
L2 line per record — this is where the "reduction in cache misses for
the host CPUs in the active cases" comes from).  The handler compares
from the data buffers (no misses by design).  In the active cases the
host only counts matches reported in the completion descriptor — it
does not touch the forwarded records during the selection phase.
"""

from __future__ import annotations

from ..workloads import records
from .base import BlockWork, StreamApp

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: Host cycles to evaluate the predicate on one record.
HOST_COMPARE_CYCLES = 8
#: Switch handler cycles per record (same compare, MIPS-like core).
SWITCH_COMPARE_CYCLES = 10
#: Host cycles per block in the active case (read completion, add count).
ACTIVE_HOST_PER_BLOCK_CYCLES = 40
#: Paper input size.
PAPER_INPUT_BYTES = 128 * 1024 * 1024

_INPUT_BASE = 0x2000_0000


def _pow2_divisor(scale: float) -> int:
    """Cache divisor matching a 1/N input scale (N a power of two)."""
    divisor = 1
    while divisor < 64 and scale * divisor * 2 <= 1.0:
        divisor *= 2
    return divisor


class SelectApp(StreamApp):
    """The Select benchmark under the four configurations."""

    name = "select"
    request_bytes = 64 * 1024
    database_scaled = True

    def __init__(self, scale: float = 1.0,
                 selectivity: float = records.PAPER_SELECT_SELECTIVITY):
        self.selectivity = selectivity
        self.cache_scale_divisor = _pow2_divisor(scale)
        super().__init__(scale=scale)

    def prepare(self) -> None:
        total = max(256 * records.RECORD_BYTES,
                    int(PAPER_INPUT_BYTES * self.scale))
        total -= total % records.RECORD_BYTES
        table = records.generate_select_table(total,
                                              selectivity=self.selectivity)
        self.table = table
        self.total_matches = 0
        per_block = records.records_per_block(self.request_bytes)
        cursor = _INPUT_BASE
        if _np is not None:
            all_keys = _np.asarray(table.keys, dtype=_np.int64)
            in_range = ((all_keys >= records.SELECT_LOW)
                        & (all_keys < records.SELECT_HIGH))
        for start in range(0, table.num_records, per_block):
            keys = table.keys[start:start + per_block]
            if _np is not None:
                matches = int(in_range[start:start + per_block].sum())
            else:
                matches = sum(1 for k in keys
                              if records.SELECT_LOW <= k < records.SELECT_HIGH)
            self.total_matches += matches
            nbytes = len(keys) * records.RECORD_BYTES
            base = cursor
            cursor += nbytes

            def host_stall(hierarchy, addr=base, count=len(keys)):
                # One key load per record: stride = record size, so each
                # record's first line misses (the paper's cold-miss cost
                # of scanning a table that streams through the caches).
                return hierarchy.load_stride(addr, records.RECORD_BYTES,
                                             count)

            self.blocks.append(BlockWork(
                nbytes=nbytes,
                host_cycles=len(keys) * HOST_COMPARE_CYCLES,
                host_stall_fn=host_stall,
                handler_cycles=len(keys) * SWITCH_COMPARE_CYCLES,
                handler_stall_fn=None,
                out_bytes=matches * records.RECORD_BYTES,
                active_host_cycles=ACTIVE_HOST_PER_BLOCK_CYCLES,
                active_host_stall_fn=None,
            ))

    def reference_match_count(self) -> int:
        """Functional oracle for the tests."""
        return sum(1 for k in self.table.keys
                   if records.SELECT_LOW <= k < records.SELECT_HIGH)

"""Parallel sort benchmark (paper Section 5, Figures 13/14).

One-pass parallel sort of Datamation records (100 B, 10 B uniform keys)
on p nodes; only the *data distribution* phase is simulated ("there is
no difference between the active and normal cases in the sorting
phase").  Normal: every node reads its 1/p of the input and sends each
record to the node owning its key range.  Active: the switch handler
redistributes records in flight so "each node only gets the records
assigned to it" — per-node traffic drops to 1/p of the total, i.e. a
fraction p/(3p-2) of the normal case's (the paper's formula).

Cost model: ~35 host cycles per record in the normal case (key extract,
range compare, copy into the destination's send buffer) plus scan/store
cache stalls; the switch handler spends ~14 cycles per record on the
range decision, forwarding straight from the data buffers.
"""

from __future__ import annotations

from typing import List

from ..cluster.config import ClusterConfig
from ..cluster.iostream import ReadStream
from ..cluster.system import System
from ..metrics.results import CaseResult
from ..workloads import datamation
from .base import finalize_case

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

HOST_DISTRIBUTE_CYCLES_PER_RECORD = 35
SWITCH_ROUTE_CYCLES_PER_RECORD = 14

_INPUT_BASE = 0x2000_0000
_SENDBUF_BASE = 0x6000_0000


def _block_owner_counts(keys: List[bytes], per_block: int,
                        num_nodes: int) -> List[List[int]]:
    """Per-block destination counts: ``owner = (key * p) >> 80``.

    The numpy path computes the 80-bit key x node product exactly in
    uint64 lanes — key = hi·2^48 + mid·2^16 + low (32/32/16-bit limbs),
    so ``(key·p) >> 80 = (hi·p + ((mid·p·2^16 + low·p) >> 48)) >> 32``
    with every intermediate < 2^64 for any realistic node count.  The
    scalar fallback is the definitional big-int loop; both produce the
    same integers (tests/apps/test_vectorized_kernels.py).
    """
    key_space_bits = 8 * datamation.KEY_BYTES
    if _np is not None and num_nodes <= 4096:
        words = _np.frombuffer(b"".join(keys), dtype=">u2")
        words = words.reshape(-1, datamation.KEY_BYTES // 2)
        words = words.astype(_np.uint64)
        p = _np.uint64(num_nodes)
        hi = (words[:, 0] << _np.uint64(16)) | words[:, 1]
        mid = (words[:, 2] << _np.uint64(16)) | words[:, 3]
        low = words[:, 4]
        tail = ((mid * p) << _np.uint64(16)) + low * p
        owners = (hi * p + (tail >> _np.uint64(48))) >> _np.uint64(32)
        return [_np.bincount(owners[start:start + per_block],
                             minlength=num_nodes).tolist()
                for start in range(0, len(owners), per_block)]
    blocks = []
    for start in range(0, len(keys), per_block):
        counts = [0] * num_nodes
        for key in keys[start:start + per_block]:
            owner = (int.from_bytes(key, "big")
                     * num_nodes) >> key_space_bits
            counts[owner] += 1
        blocks.append(counts)
    return blocks


class SortApp:
    """Parallel sort distribution phase under the four configurations."""

    name = "sort"
    #: ~256 KB requests, rounded to a whole number of 100 B records so
    #: the I/O blocks and the record blocks stay in lockstep.
    request_bytes = (256 * 1024 // datamation.RECORD_BYTES) * datamation.RECORD_BYTES

    def __init__(self, scale: float = 1.0, num_nodes: int = 4):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if num_nodes < 2:
            raise ValueError("parallel sort needs at least 2 nodes")
        self.scale = scale
        self.num_nodes = num_nodes
        total_records = max(num_nodes * 1024,
                            int(datamation.PAPER_NUM_RECORDS * scale))
        total_records -= total_records % num_nodes
        self.records_per_node = total_records // num_nodes
        self.total_records = total_records
        # Per source node: per-block destination counts.  Uniform keys
        # partition by high bits: node = key * p / keyspace (equivalent
        # to datamation.assign_node, vectorised for speed).
        per_block_records = self.request_bytes // datamation.RECORD_BYTES
        self.node_blocks: List[List[List[int]]] = []
        for node in range(num_nodes):
            keys = datamation.generate_keys(self.records_per_node,
                                            seed=17 + node)
            self.node_blocks.append(_block_owner_counts(
                keys, per_block_records, num_nodes))

    def cluster_config(self) -> ClusterConfig:
        return ClusterConfig(num_hosts=self.num_nodes,
                             num_storage=self.num_nodes)

    @property
    def bytes_per_node(self) -> int:
        return self.records_per_node * datamation.RECORD_BYTES

    # ------------------------------------------------------------------
    def _node_normal(self, system: System, node: int, depth: int):
        host = system.hosts[node]
        stream = ReadStream(system, host, total_bytes=self.bytes_per_node,
                            request_bytes=self.request_bytes, depth=depth,
                            to_switch=False, request_cost="os",
                            storage_index=node)
        cursor_in = _INPUT_BASE
        cursor_out = _SENDBUF_BASE
        for counts in self.node_blocks[node]:
            arrival = yield from stream.next_block()
            yield from stream.consume_fully(arrival)
            nrecords = sum(counts)
            stall = host.hierarchy.load_range(cursor_in, arrival.nbytes)
            stall += host.hierarchy.store_range(cursor_out, arrival.nbytes)
            cursor_in += arrival.nbytes
            cursor_out += arrival.nbytes
            yield from host.cpu.work(
                nrecords * HOST_DISTRIBUTE_CYCLES_PER_RECORD, stall)
            for dst, count in enumerate(counts):
                if dst == node or count == 0:
                    continue
                yield from system.host_to_host_bulk(
                    host, system.hosts[dst],
                    count * datamation.RECORD_BYTES)
            yield from stream.done_with(arrival)

    def _node_active(self, system: System, node: int, depth: int):
        host = system.hosts[node]
        stream = ReadStream(system, host, total_bytes=self.bytes_per_node,
                            request_bytes=self.request_bytes, depth=depth,
                            to_switch=True, request_cost="active",
                            storage_index=node)
        for counts in self.node_blocks[node]:
            arrival = yield from stream.next_block()
            nrecords = sum(counts)
            yield from system.process_on_switch(
                nrecords * SWITCH_ROUTE_CYCLES_PER_RECORD, 0,
                arrival_end_event=arrival.end_event,
                arrival_end_ps=arrival.end_ps)
            for dst, count in enumerate(counts):
                if count == 0:
                    continue
                yield from system.switch_to_host_bulk(
                    system.hosts[dst], count * datamation.RECORD_BYTES)
            yield from stream.done_with(arrival)

    # ------------------------------------------------------------------
    def run_case(self, config: ClusterConfig,
                 trace=None, metrics_sink=None) -> CaseResult:
        system = System(config)
        if trace is not None:
            system.attach_trace(trace)
        env = system.env
        runner = self._node_active if config.active else self._node_normal
        procs = [env.process(runner(system, node, config.prefetch_depth),
                             name=f"sort-node{node}")
                 for node in range(self.num_nodes)]
        gate = env.all_of(procs)
        env.run(until=gate)
        if metrics_sink is not None:
            metrics_sink.update(system.metrics.snapshot())
        return finalize_case(system, config.case_label)

    # Functional oracle ---------------------------------------------------
    def distribution_is_conservative(self) -> bool:
        """Every record lands on exactly one node."""
        total = 0
        for blocks in self.node_blocks:
            for counts in blocks:
                total += sum(counts)
        return total == self.total_records

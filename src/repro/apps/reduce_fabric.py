"""The scale-out reduction benchmark: ``repro.run("reduce", ...)``.

Runs one reduce-to-one collective over a declarative fabric and maps
the harness's four configurations onto the scale-out question:

normal / normal+pref
    Host-only software reduction — the MST (binomial) baseline running
    *over the same fabric* (messages really transit the leaf/spine or
    tree switches, paying per-hop routing latency).  Prefetch has no
    meaning for a collective; both labels run the identical baseline,
    so harness invariants (every case present) hold.
active / active+pref
    In-network aggregation with the requested handler ``placement``
    (``root_only``, ``leaf_combine``, ``per_level``) installed by the
    placement engine on the fabric's active switches.

The reduction is fully simulated at packet level and the result is
checked against the oracle every run — and because addition mod 2^32
is associative, the active result is bit-identical to the host-only
baseline's.

Examples::

    repro.run("reduce", topology="fat_tree", hosts=64,
              placement="per_level")
    repro.run("reduce", topology="tree", hosts=512, radix=4,
              cases=("normal", "active"))

Fault plans flow through unchanged: a config with ``faults`` enabled
builds the fabric with a :class:`~repro.faults.FaultInjector` attached
to every link and switch, so chaos presets cover multi-hop fabrics.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cluster.config import ClusterConfig
from ..cluster.fabric import TopologySpec, build_fabric
from ..cluster.placement import (PLACEMENT_POLICIES, plan_placement,
                                 run_placed_reduction)
from ..metrics.results import CaseResult
from ..obs.registry import MetricsRegistry
from ..sim.core import Environment
from .reduction import (REDUCE_TO_ONE, REDUCTION_HCA, VECTOR_BYTES,
                        _make_vectors, _oracle, run_normal_reduction)


class FabricReduceApp:
    """Reduce-to-one over a multi-stage fabric, placement-parameterized.

    Not a :class:`~repro.apps.StreamApp` — there is no disk stream; the
    app owns its whole ``run_case`` and builds the fabric itself.  The
    constructor parameters are all hashable, so specs fingerprint and
    cache like any other registered application.
    """

    name = "reduce"

    def __init__(self, topology: str = "tree", hosts: int = 64,
                 placement: str = "per_level", hosts_per_leaf: int = 8,
                 switch_ports: int = 16, vector_bytes: int = VECTOR_BYTES,
                 radix: Optional[int] = None, spines: Optional[int] = None,
                 oversubscription: float = 2.0, data_seed: int = 3):
        if placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement {placement!r}; "
                f"expected one of {PLACEMENT_POLICIES}")
        if vector_bytes < 4 or vector_bytes % 4:
            raise ValueError("vector_bytes must be a positive multiple of 4")
        self.placement = placement
        self.vector_bytes = vector_bytes
        self.data_seed = data_seed
        # Constructing the spec validates the shape parameters eagerly,
        # so a bad grid point fails at spec time, not mid-simulation.
        self.spec = TopologySpec(
            kind=topology, num_hosts=hosts, hosts_per_leaf=hosts_per_leaf,
            switch_ports=switch_ports, radix=radix, spines=spines,
            oversubscription=oversubscription)

    # ------------------------------------------------------------------
    def cluster_config(self) -> ClusterConfig:
        return ClusterConfig(num_hosts=self.spec.num_hosts,
                             hca=REDUCTION_HCA)

    # ------------------------------------------------------------------
    def run_case(self, config: ClusterConfig, trace=None,
                 metrics_sink: Optional[dict] = None) -> CaseResult:
        env = Environment()
        if trace is not None:
            env.trace = trace
        env.add_context(app=self.name, config=config.case_label)

        injector = None
        if config.faults is not None and config.faults.enabled:
            from dataclasses import replace as _replace

            from ..faults import FaultInjector
            from ..faults.plan import FailStopFaults
            plan = config.faults
            if not config.active and plan.failstop.enabled:
                # The MST baseline has no end-to-end recovery: a switch
                # killed mid-round would deadlock a receiver forever.
                # The normal cases therefore measure the failure-free
                # baseline (transient faults still apply), which is the
                # reference the availability comparison needs anyway.
                plan = _replace(plan, failstop=FailStopFaults())
            injector = FaultInjector(plan, seed=config.seed)
            env.add_context_provider(injector.failure_context)

        fabric = build_fabric(env, self.spec, cluster_config=config,
                              hca_config=config.hca, injector=injector)
        fabric.validate()
        vectors = _make_vectors(self.spec.num_hosts, seed=self.data_seed,
                                vector_bytes=self.vector_bytes)
        expected = _oracle(vectors)
        metrics = MetricsRegistry()
        metrics.register("sim.event_count", lambda: env.event_count)
        metrics.register("sim.now_ps", lambda: env.now)
        if fabric.failstop_armed:
            fabric.register_metrics(metrics)

        extra: Dict[str, float] = {}
        switch_breakdowns = []
        if config.active:
            plan = plan_placement(fabric, self.placement)
            done = run_placed_reduction(fabric, plan, vectors,
                                        metrics=metrics)
            result = done["result"]
            extra["placement_instances"] = float(plan.instances)
            if "attempts" in done:
                extra["collective_attempts"] = float(done["attempts"])
                extra["collective_repairs"] = float(done["repairs"])
            for name, value in metrics.snapshot("fabric").items():
                extra[name] = value
            placed = set(plan.placements)
            switch_breakdowns = [
                cpu.accounting.finalize(env.now)
                for node in fabric.switches if node.name in placed
                for cpu in node.switch.cpus]
        else:
            outcome = run_normal_reduction(fabric, vectors, REDUCE_TO_ONE)
            result = outcome.result_vector
        if list(result) != expected:
            raise AssertionError(
                f"reduce ({config.case_label}, {self.spec.kind}, "
                f"p={self.spec.num_hosts}, {self.placement}): result "
                f"does not match the oracle")

        exec_ps = env.now
        extra["fabric_depth"] = float(fabric.depth)
        extra["fabric_switches"] = float(len(fabric.switches))
        if injector is not None:
            retransmits = dropped = corrupted = 0
            capped = abandoned = 0
            for node in fabric.switches:
                for link in node.switch._tx_links:
                    if link is None:
                        continue
                    retransmits += link.stats.retransmits
                    dropped += link.stats.packets_dropped
                    corrupted += link.stats.packets_corrupted
                    capped += link.stats.capped_backoffs
                    abandoned += link.stats.packets_abandoned
            for host in fabric.hosts:
                tx = host.hca._tx_link
                if tx is not None:
                    retransmits += tx.stats.retransmits
                    dropped += tx.stats.packets_dropped
                    corrupted += tx.stats.packets_corrupted
                    capped += tx.stats.capped_backoffs
                    abandoned += tx.stats.packets_abandoned
            extra["link_retransmits"] = float(retransmits)
            extra["link_packets_dropped"] = float(dropped)
            extra["link_packets_corrupted"] = float(corrupted)
            if capped:
                extra["link_capped_backoffs"] = float(capped)
            if abandoned:
                extra["link_packets_abandoned"] = float(abandoned)
            if fabric.failstop_armed:
                extra["failstop_switch_kills"] = float(fabric.ft.switch_kills)
                extra["failstop_link_kills"] = float(fabric.ft.link_kills)
                for name, value in metrics.snapshot("fabric").items():
                    extra.setdefault(name, value)
            extra.update(injector.snapshot())
        if metrics_sink is not None:
            metrics_sink.update(metrics.snapshot())

        host = fabric.hosts[0]
        return CaseResult(
            label=config.case_label,
            exec_ps=exec_ps,
            host=host.cpu.accounting.finalize(exec_ps),
            switch_cpus=switch_breakdowns,
            host_bytes_in=host.hca.traffic.bytes_in,
            host_bytes_out=host.hca.traffic.bytes_out,
            extra=extra,
        )

"""HashJoin with bit-vector filter (paper Section 5, Figures 5/6).

DeWitt/Gerber bit-vector filtering: while the smaller relation R is
scanned, each R tuple's hashed join attribute sets a bit in a bit-vector
(8 bits per R record, i.e. the paper's 128 KB vector for a 16 MB R).
While S is scanned, tuples whose bit is clear are discarded before the
join.  In the active system the bit-vector lives *in the switch*: R
passes through (setting bits) on its way to the host, then the switch
filters S and forwards only passing records (reduction factor 0.24).

Both relations stream from storage back to back, so the benchmark is a
single :class:`StreamApp` whose early blocks are R (build + pass-through)
and later blocks are S (probe + filter).

Cost model: hash of a 4-byte key ~10 cycles; hash-table insert ~30
cycles plus two random stores; bit-vector probe is one random load into
a region twice the (scaled) L2 — the paper's main source of host cache
stalls; a passing record costs a ~3-line hash-table probe + ~40 cycles
of join work.  The switch handler pays its bit-vector references out of
a 1 KB D-cache backed by switch RDRAM ("the switch CPU also suffers
from cache misses because the bit-vector is too big for its limited L1
data cache ... However, this impact is small").
"""

from __future__ import annotations

import random

from ..workloads import records
from .base import BlockWork, StreamApp

#: Paper problem sizes (already the authors' 8x-scaled versions).
PAPER_R_BYTES = 16 * 1024 * 1024
PAPER_S_BYTES = 128 * 1024 * 1024

#: Bit-vector density: 8 bits per R record (128 KB for 16 MB R).
BITS_PER_R_RECORD = 8

# Cycle costs.
HASH_CYCLES = 10
HT_INSERT_CYCLES = 30
BV_SET_CYCLES = 6
BV_PROBE_CYCLES = 8
HT_PROBE_CYCLES = 25
JOIN_EMIT_CYCLES = 40
ACTIVE_HOST_PER_BLOCK_CYCLES = 40

# Virtual address map (host).
_INPUT_BASE = 0x2000_0000
_HASHTABLE_BASE = 0x5000_0000
_BITVECTOR_BASE = 0x5800_0000
# Switch local memory.
_SWITCH_BV_BASE = 0x0010_0000


def _pow2_divisor(scale: float) -> int:
    divisor = 1
    while divisor < 64 and scale * divisor * 2 <= 1.0:
        divisor *= 2
    return divisor


class HashJoinApp(StreamApp):
    """HashJoin with bit-vector filtering under the four configurations."""

    name = "hashjoin"
    request_bytes = 64 * 1024
    database_scaled = True

    def __init__(self, scale: float = 1.0,
                 reduction_factor: float = records.PAPER_REDUCTION_FACTOR):
        self.reduction_factor = reduction_factor
        self.cache_scale_divisor = _pow2_divisor(scale)
        super().__init__(scale=scale)

    def prepare(self) -> None:
        # Both relations are read back to back through one request-sized
        # stream, so align each to whole requests (otherwise a partial R
        # block would shift every subsequent S block boundary).
        r_bytes = max(self.request_bytes, int(PAPER_R_BYTES * self.scale))
        s_bytes = max(self.request_bytes, int(PAPER_S_BYTES * self.scale))
        r_bytes -= r_bytes % self.request_bytes
        s_bytes -= s_bytes % self.request_bytes
        r_table = records.generate_r_table(r_bytes)
        s_table = records.generate_s_table(s_bytes, r_table,
                                           pass_fraction=self.reduction_factor)
        self.r_table, self.s_table = r_table, s_table

        # Real bit-vector filter: hash into 8 bits per R record.
        bv_bits = r_table.num_records * BITS_PER_R_RECORD
        bit_vector = bytearray(bv_bits // 8)
        for key in r_table.keys:
            h = hash(key) % bv_bits
            bit_vector[h >> 3] |= 1 << (h & 7)
        self.bit_vector = bit_vector
        self.bv_bytes = len(bit_vector)
        ht_bytes = r_table.num_records * 16  # bucket headers
        rng = random.Random(99)

        self.s_passing = 0
        per_block = records.records_per_block(self.request_bytes)
        cursor = _INPUT_BASE

        # ---------------- R phase blocks ----------------
        for start in range(0, r_table.num_records, per_block):
            keys = r_table.keys[start:start + per_block]
            nbytes = len(keys) * records.RECORD_BYTES
            base = cursor
            cursor += nbytes
            probes = [hash(k) % bv_bits for k in keys]

            def host_build_stall(hierarchy, addr=base, keys=tuple(keys),
                                 probes=tuple(probes)):
                stall = 0
                for i, (key, h) in enumerate(zip(keys, probes)):
                    stall += hierarchy.load(addr + i * records.RECORD_BYTES)
                    # Hash-table insert: bucket header + record slot.
                    slot = (key * 2654435761) % ht_bytes
                    stall += hierarchy.store(_HASHTABLE_BASE + slot)
                    stall += hierarchy.store(
                        _HASHTABLE_BASE + ht_bytes + i * records.RECORD_BYTES)
                    # Normal case: the bit-vector is built on the host.
                    stall += hierarchy.store(_BITVECTOR_BASE + (h >> 3))
                return stall

            def host_build_active_stall(hierarchy, addr=base,
                                        keys=tuple(keys)):
                # Active: bit-vector lives on the switch; host only
                # builds the hash table.
                stall = 0
                for i, key in enumerate(keys):
                    stall += hierarchy.load(addr + i * records.RECORD_BYTES)
                    slot = (key * 2654435761) % ht_bytes
                    stall += hierarchy.store(_HASHTABLE_BASE + slot)
                return stall

            def handler_build_stall(hierarchy, probes=tuple(probes)):
                # Switch: set bits in local memory through the 1 KB D$.
                stall = 0
                for h in probes:
                    stall += hierarchy.store(_SWITCH_BV_BASE + (h >> 3))
                return stall

            build_cycles = len(keys) * (HASH_CYCLES + HT_INSERT_CYCLES
                                        + BV_SET_CYCLES)
            self.blocks.append(BlockWork(
                nbytes=nbytes,
                host_cycles=build_cycles,
                host_stall_fn=host_build_stall,
                handler_cycles=len(keys) * (HASH_CYCLES + BV_SET_CYCLES),
                handler_stall_fn=handler_build_stall,
                out_bytes=nbytes,  # R passes through to the host
                active_host_cycles=len(keys) * (HASH_CYCLES
                                                + HT_INSERT_CYCLES),
                active_host_stall_fn=host_build_active_stall,
            ))

        # ---------------- S phase blocks ----------------
        self.r_phase_blocks = len(self.blocks)
        for start in range(0, s_table.num_records, per_block):
            keys = s_table.keys[start:start + per_block]
            nbytes = len(keys) * records.RECORD_BYTES
            base = cursor
            cursor += nbytes
            probes = [hash(k) % bv_bits for k in keys]
            passing = [bool(bit_vector[h >> 3] & (1 << (h & 7)))
                       for h in probes]
            pass_count = sum(passing)
            self.s_passing += pass_count

            def host_probe_stall(hierarchy, addr=base, keys=tuple(keys),
                                 probes=tuple(probes),
                                 passing=tuple(passing)):
                stall = 0
                for i, (key, h, ok) in enumerate(zip(keys, probes, passing)):
                    stall += hierarchy.load(addr + i * records.RECORD_BYTES)
                    stall += hierarchy.load(_BITVECTOR_BASE + (h >> 3))
                    if ok:
                        slot = (key * 2654435761) % ht_bytes
                        stall += hierarchy.load(_HASHTABLE_BASE + slot)
                        stall += hierarchy.load(
                            _HASHTABLE_BASE + ht_bytes
                            + (key % max(1, ht_bytes)) )
                return stall

            def handler_probe_stall(hierarchy, probes=tuple(probes)):
                stall = 0
                for h in probes:
                    stall += hierarchy.load(_SWITCH_BV_BASE + (h >> 3))
                return stall

            def host_join_stall(hierarchy, addr=base, keys=tuple(keys),
                                passing=tuple(passing)):
                stall = 0
                slot_index = 0
                for key, ok in zip(keys, passing):
                    if not ok:
                        continue
                    stall += hierarchy.load(
                        addr + slot_index * records.RECORD_BYTES)
                    slot = (key * 2654435761) % ht_bytes
                    stall += hierarchy.load(_HASHTABLE_BASE + slot)
                    stall += hierarchy.load(
                        _HASHTABLE_BASE + ht_bytes + (key % max(1, ht_bytes)))
                    slot_index += 1
                return stall

            host_cycles = (len(keys) * (HASH_CYCLES + BV_PROBE_CYCLES)
                           + pass_count * (HT_PROBE_CYCLES + JOIN_EMIT_CYCLES))
            self.blocks.append(BlockWork(
                nbytes=nbytes,
                host_cycles=host_cycles,
                host_stall_fn=host_probe_stall,
                handler_cycles=len(keys) * (HASH_CYCLES + BV_PROBE_CYCLES),
                handler_stall_fn=handler_probe_stall,
                out_bytes=pass_count * records.RECORD_BYTES,
                active_host_cycles=(
                    ACTIVE_HOST_PER_BLOCK_CYCLES
                    + pass_count * (HASH_CYCLES + HT_PROBE_CYCLES
                                    + JOIN_EMIT_CYCLES)),
                active_host_stall_fn=host_join_stall,
            ))

    # Functional oracles -------------------------------------------------
    def reference_pass_fraction(self) -> float:
        """Fraction of S surviving the bit-vector (incl. false positives)."""
        return self.s_passing / self.s_table.num_records

    def reference_true_matches(self) -> int:
        """S records whose key actually exists in R."""
        r_keys = set(self.r_table.keys)
        return sum(1 for k in self.s_table.keys if k in r_keys)

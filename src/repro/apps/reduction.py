"""Collective reduction benchmarks (paper Section 5, Figures 15/16 and
Table 2).

Three reduction flavours combine one vector per compute node with an
associative operation; they differ in where the result goes:

* **Reduce-to-one** — the full result lands on node 0;
* **Distributed Reduce** — node i gets the i-th slice of the result;
* (Reduce-to-all behaves like Reduce-to-one per the paper and is
  provided for completeness.)

Normal baseline: a minimum-spanning-tree (binomial) software reduction —
``ceil(log2 p)`` rounds of (send, poll, add) between hosts, the
textbook lower bound ``ceil(log2 p)) * (alpha + lambda)``.  Active: each
host fires its vector at its leaf switch as an *active message*; leaf
handlers combine 8 vectors and forward one partial up the switch tree;
the root delivers (or redistributes) the result.  This is fully
simulated at packet level through the real ActiveSwitch machinery —
dispatch, data buffers, ATB, send unit — and the vectors are really
added, so the result is checked numerically against the oracle.

Cost model: vector add at 3 cycles/word on the host (load-load-add-
store on the single-issue core, some ILP) and 2 cycles/word on the
switch (one buffer operand streams in at single-cycle access, and the
add overlaps the copy thanks to the valid bits).  The hosts' messaging
software (an MPI-style reduction library over the queue-pair interface,
with polling receives) costs ~10 us per posted send and ~18 us per
polled receive — this is the alpha that dominates the MST baseline and
that the paper's switch-side reduction eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..cluster.topology import SwitchTree
from ..net.hca import HcaConfig
from ..net.packet import ActiveHeader
from ..sim.core import Environment
from ..sim.units import us

#: Paper vector size.
VECTOR_BYTES = 512
WORDS = VECTOR_BYTES // 4

#: Host-side costs.
HOST_ADD_CYCLES_PER_WORD = 3
#: Switch handler costs.
SWITCH_ADD_CYCLES_PER_WORD = 2

#: The MST implementation's messaging software overheads (per message).
REDUCTION_HCA = HcaConfig(send_overhead_ps=us(10), recv_poll_ps=us(18),
                          per_packet_ps=us(0.1))

#: Handler IDs.
H_REDUCE = 1
H_REDISTRIBUTE = 2
H_BROADCAST = 3

REDUCE_TO_ONE = "reduce-to-one"
DISTRIBUTED = "distributed"
REDUCE_TO_ALL = "reduce-to-all"


@dataclass
class ReductionResult:
    """Latency of one (p, mode, system) point."""

    mode: str
    num_hosts: int
    active: bool
    latency_ps: int
    result_vector: List[int]


def _oracle(vectors: List[List[int]]) -> List[int]:
    return [sum(column) & 0xFFFFFFFF for column in zip(*vectors)]


def _make_vectors(num_hosts: int, seed: int = 3,
                  vector_bytes: int = VECTOR_BYTES) -> List[List[int]]:
    import random
    rng = random.Random(seed)
    words = vector_bytes // 4
    return [[rng.randrange(1 << 16) for _ in range(words)]
            for _ in range(num_hosts)]


# ----------------------------------------------------------------------
# Normal: binomial (MST) software reduction between hosts
# ----------------------------------------------------------------------
def _mst_rounds(num_hosts: int) -> int:
    rounds = 0
    while (1 << rounds) < num_hosts:
        rounds += 1
    return rounds


def run_normal_reduction(tree: SwitchTree, vectors: List[List[int]],
                         mode: str) -> ReductionResult:
    """Binomial reduce (plus scatter/broadcast for the other modes)."""
    env = tree.env
    hosts = tree.hosts
    p = len(hosts)
    rounds = _mst_rounds(p)
    local = [list(v) for v in vectors]
    words = len(vectors[0])
    vector_bytes = words * 4

    def add_into(host, mine: List[int], incoming: List[int], lo: int,
                 hi: int):
        stall = 0
        for w in range(lo, hi):
            mine[w] = (mine[w] + incoming[w - lo]) & 0xFFFFFFFF
            if w % 8 == 0:  # one L2 line of the arriving vector
                stall += host.hierarchy.load(0x3000_0000 + w * 4)
        yield from host.cpu.work((hi - lo) * HOST_ADD_CYCLES_PER_WORD, stall)

    def host_proc_reduce_to_one(i: int, full_result: bool):
        host = hosts[i]
        # Binomial tree toward host 0.
        for k in range(rounds):
            step = 1 << k
            if i % (2 * step) == step:
                yield from host.hca.send(hosts[i - step].name, vector_bytes,
                                         payload=list(local[i]))
                break
            if i % (2 * step) == 0 and i + step < p:
                message = yield from host.hca.poll_receive()
                yield from add_into(host, local[i], message.payload, 0, words)
        if full_result and mode == REDUCE_TO_ALL:
            # Binomial broadcast back down.
            for k in reversed(range(rounds)):
                step = 1 << k
                if i % (2 * step) == 0 and i + step < p:
                    yield from host.hca.send(hosts[i + step].name,
                                             vector_bytes,
                                             payload=list(local[i]))
                elif i % (2 * step) == step:
                    message = yield from host.hca.poll_receive()
                    local[i][:] = message.payload

    def host_proc_reduce_scatter(i: int):
        # Recursive halving: after round k each host holds a reduced
        # half of half...; after log2(p) rounds host i holds slice i.
        # This is the standard distributed-reduce algorithm — its cost
        # is essentially one binomial reduction (the paper's normal
        # distributed case tracks its reduce-to-one closely).
        host = hosts[i]
        lo, hi = 0, words
        for k in reversed(range(rounds)):
            step = 1 << k
            partner = i ^ step
            if partner >= p:
                continue
            mid = (lo + hi) // 2
            keep_low = (i & step) == 0
            send_lo, send_hi = (mid, hi) if keep_low else (lo, mid)
            keep_lo, keep_hi = (lo, mid) if keep_low else (mid, hi)
            nbytes = max(4, (send_hi - send_lo) * 4)
            yield from host.hca.send(hosts[partner].name, nbytes,
                                     payload=local[i][send_lo:send_hi])
            message = yield from host.hca.poll_receive()
            yield from add_into(host, local[i], message.payload,
                                keep_lo, keep_hi)
            lo, hi = keep_lo, keep_hi

    def host_proc(i: int):
        if mode == DISTRIBUTED and p & (p - 1) == 0 and p > 1:
            yield from host_proc_reduce_scatter(i)
        else:
            yield from host_proc_reduce_to_one(
                i, full_result=(mode == REDUCE_TO_ALL))

    procs = [env.process(host_proc(i), name=f"mst-{i}") for i in range(p)]
    env.run(until=env.all_of(procs))
    return ReductionResult(mode=mode, num_hosts=p, active=False,
                           latency_ps=env.now, result_vector=local[0])


# ----------------------------------------------------------------------
# Active: switch-tree reduction via real handlers
# ----------------------------------------------------------------------
def _install_handlers(tree: SwitchTree, mode: str, done_events: Dict,
                      vector_bytes: int = VECTOR_BYTES):
    """Register the reduce handler on every switch in the tree."""
    env = tree.env
    words = vector_bytes // 4
    region_stride = -(-vector_bytes // 512) * 512

    for node in tree.switches:
        switch = node.switch
        switch.kernel_state["accumulator"] = [0] * words
        switch.kernel_state["count"] = 0
        switch.kernel_state["expected"] = node.fan_in
        switch.kernel_state["parent"] = (node.parent.name
                                         if node.parent else None)
        switch.kernel_state["child_slot"] = (
            node.parent.children.index(node) if node.parent else 0)

        def reduce_handler(ctx, node=node):
            switch = node.switch
            # Stream the vector in and combine (adds overlap the copy).
            yield from ctx.read(ctx.address, vector_bytes)
            accumulator = switch.kernel_state["accumulator"]
            incoming = ctx.arg
            for w in range(words):
                accumulator[w] = (accumulator[w] + incoming[w]) & 0xFFFFFFFF
            yield from ctx.compute(words * SWITCH_ADD_CYCLES_PER_WORD)
            # Range-exact: a retransmission-delayed sibling may stage a
            # *lower* slot after this one — deallocate() would free it.
            yield from ctx.deallocate_range(ctx.address,
                                            ctx.address + region_stride)
            switch.kernel_state["count"] += 1
            if switch.kernel_state["count"] < switch.kernel_state["expected"]:
                return
            # Last input: forward the partial (or finish at the root).
            parent = switch.kernel_state["parent"]
            result = list(accumulator)
            if parent is not None:
                # Each child forwards at a distinct staging address so
                # the parent's direct-mapped ATB takes all partials.
                slot = switch.kernel_state["child_slot"]
                yield from ctx.send(
                    parent, vector_bytes,
                    active=ActiveHeader(handler_id=H_REDUCE,
                                        address=slot * region_stride),
                    payload=result)
                return
            # Root: deliver per the reduction mode.
            if mode == REDUCE_TO_ONE:
                yield from ctx.send(tree.hosts[0].name, vector_bytes,
                                    payload=result)
            elif mode == DISTRIBUTED:
                p = len(tree.hosts)
                slice_words = max(1, words // p)
                for j, host in enumerate(tree.hosts):
                    yield from ctx.send(
                        host.name, max(4, vector_bytes // p),
                        payload=result[j * slice_words:(j + 1) * slice_words])
            else:  # reduce-to-all: broadcast down the switch tree
                yield from _broadcast_down(ctx, node, result)
            done_events["result"] = result

        def broadcast_handler(ctx, node=node):
            # Receive the final vector from the parent and fan out.
            yield from ctx.read(ctx.address, vector_bytes)
            yield from ctx.deallocate_range(ctx.address,
                                            ctx.address + region_stride)
            yield from _broadcast_down(ctx, node, ctx.arg)

        def _broadcast_down(ctx, node, vector):
            if node.hosts:
                # Leaf: deliver to every attached compute node.
                for host in node.hosts:
                    yield from ctx.send(host.name, vector_bytes,
                                        payload=list(vector))
            else:
                for child in node.children:
                    yield from ctx.send(
                        child.name, vector_bytes,
                        active=ActiveHeader(handler_id=H_BROADCAST,
                                            address=0x0),
                        payload=list(vector))

        switch.register_handler(H_REDUCE, reduce_handler)
        switch.register_handler(H_BROADCAST, broadcast_handler)


def run_active_reduction(tree: SwitchTree, vectors: List[List[int]],
                         mode: str) -> ReductionResult:
    """Switch-tree reduction: fully packet-level."""
    env = tree.env
    hosts = tree.hosts
    p = len(hosts)
    words = len(vectors[0])
    vector_bytes = words * 4
    region_stride = -(-vector_bytes // 512) * 512
    done: Dict = {}
    _install_handlers(tree, mode, done, vector_bytes=vector_bytes)

    def sender(i: int):
        # Each host stages its vector at a distinct switch address
        # (assigned when the hosts joined the reduction), so concurrent
        # messages occupy distinct entries of the direct-mapped ATB.
        host = hosts[i]
        leaf = tree.leaf_of(host)
        slot = leaf.hosts.index(host)
        yield from host.hca.send(
            leaf.name, vector_bytes,
            active=ActiveHeader(handler_id=H_REDUCE,
                                address=slot * region_stride),
            payload=list(vectors[i]))

    def receiver(i: int):
        host = hosts[i]
        if mode == REDUCE_TO_ONE and i != 0:
            return
            yield  # pragma: no cover
        message = yield from host.hca.poll_receive()
        return message.payload

    procs = [env.process(sender(i), name=f"red-send-{i}") for i in range(p)]
    expect_result = {REDUCE_TO_ONE: [0], DISTRIBUTED: range(p),
                     REDUCE_TO_ALL: range(p)}[mode]
    recv_procs = {i: env.process(receiver(i), name=f"red-recv-{i}")
                  for i in expect_result}
    env.run(until=env.all_of(list(recv_procs.values()) + procs))
    if mode == REDUCE_TO_ONE:
        result = recv_procs[0].value
    else:
        result = done.get("result", [])
    return ReductionResult(mode=mode, num_hosts=p, active=True,
                           latency_ps=env.now, result_vector=list(result))


# ----------------------------------------------------------------------
# The experiment: latency vs node count (Figures 15 and 16)
# ----------------------------------------------------------------------
def _build_tree(num_hosts: int) -> SwitchTree:
    env = Environment()
    return SwitchTree(env, num_hosts=num_hosts, hosts_per_leaf=8,
                      switch_ports=16, hca_config=REDUCTION_HCA)


def run_reduction_point(num_hosts: int, mode: str, active: bool,
                        seed: int = 3,
                        vector_bytes: int = VECTOR_BYTES) -> ReductionResult:
    """One latency measurement on a fresh fabric."""
    vectors = _make_vectors(num_hosts, seed=seed, vector_bytes=vector_bytes)
    tree = _build_tree(num_hosts)
    if active:
        result = run_active_reduction(tree, vectors, mode)
    else:
        result = run_normal_reduction(tree, vectors, mode)
    expected = _oracle(vectors)
    if mode in (REDUCE_TO_ONE, REDUCE_TO_ALL) and result.result_vector:
        if list(result.result_vector) != expected:
            raise AssertionError(
                f"{mode} ({'active' if active else 'normal'}, p={num_hosts}): "
                "reduction result does not match the oracle")
    return result


def reduction_sweep(mode: str, node_counts=(2, 4, 8, 16, 32, 64, 128),
                    vector_bytes: int = VECTOR_BYTES):
    """Latency and speedup vs node count — one figure's data series."""
    rows = []
    for p in node_counts:
        normal = run_reduction_point(p, mode, active=False,
                                     vector_bytes=vector_bytes)
        active = run_reduction_point(p, mode, active=True,
                                     vector_bytes=vector_bytes)
        rows.append({
            "nodes": p,
            "normal_us": normal.latency_ps / 1e6,
            "active_us": active.latency_ps / 1e6,
            "speedup": normal.latency_ps / active.latency_ps,
        })
    return rows


def vector_size_sweep(mode: str = REDUCE_TO_ONE, num_hosts: int = 64,
                      sizes=(128, 512, 2048, 8192)):
    """Speedup vs vector size (extension of Figures 15/16).

    The paper's lower-bound argument holds "for small vectors", where
    the per-round software overhead alpha dominates.  As vectors grow,
    bandwidth terms take over on both systems and the switch-tree
    advantage shrinks toward the fan-in ratio; multi-MTU vectors also
    exercise the ATB's conflict backpressure (a 8 KB vector spans 16
    regions — the whole direct-mapped reach).
    """
    rows = []
    for vector_bytes in sizes:
        normal = run_reduction_point(num_hosts, mode, active=False,
                                     vector_bytes=vector_bytes)
        active = run_reduction_point(num_hosts, mode, active=True,
                                     vector_bytes=vector_bytes)
        rows.append({
            "vector_bytes": vector_bytes,
            "normal_us": normal.latency_ps / 1e6,
            "active_us": active.latency_ps / 1e6,
            "speedup": normal.latency_ps / active.latency_ps,
        })
    return rows

"""Tar benchmark (paper Section 5, Figures 11/12).

``tar -cf``: create an archive from a set of input files.  Partitioning:
"the host portion of active Tar is responsible for parsing the
command-line options and generating a header for each input file ...
The handler on the active switch reads in the input files and outputs
them directly to the archive ... It redirects the output tar file to a
remote node, completely bypassing the host."  Tar is the one benchmark
whose switch handler initiates disk requests itself.

The functional kernel builds real USTAR (POSIX.1-1988) headers —
verified round-trippable by the tests — and the archive layout
(512-byte header + padded content per file, two zero blocks at the
end).

Cost model: ~3000 host cycles to format one USTAR header (name/size
formatting, octal fields, checksum); in the normal case the host also
copies every data byte through memory into SAN writes (~0.5 cycles/byte
plus cache stalls); the active handler just redirects buffers
(per-block send-unit work, no per-byte CPU cost).
"""

from __future__ import annotations

from typing import List

from ..cluster.config import ClusterConfig
from ..cluster.iostream import ReadStream
from ..cluster.system import System
from ..metrics.results import CaseResult
from ..workloads import files
from .base import finalize_case

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

TAR_BLOCK = 512
HEADER_FORMAT_CYCLES = 3000
HOST_COPY_CYCLES_PER_BYTE = 0.5
SWITCH_REDIRECT_CYCLES_PER_BLOCK = 60  # per 64 KB: status checks + sends

_INPUT_BASE = 0x2000_0000
_OUTPUT_BASE = 0x6000_0000


# ----------------------------------------------------------------------
# USTAR kernel
# ----------------------------------------------------------------------
def _octal(value: int, width: int) -> bytes:
    return f"{value:0{width - 1}o}".encode("ascii") + b"\x00"


def ustar_header(spec: files.FileSpec) -> bytes:
    """A real 512-byte USTAR header for ``spec``."""
    name = spec.name.encode("ascii")
    if len(name) > 100:
        raise ValueError(f"name too long for USTAR: {spec.name}")
    header = bytearray(TAR_BLOCK)
    header[0:len(name)] = name
    header[100:108] = _octal(spec.mode, 8)
    header[108:116] = _octal(0, 8)          # uid
    header[116:124] = _octal(0, 8)          # gid
    header[124:136] = _octal(spec.size, 12)
    header[136:148] = _octal(spec.mtime, 12)
    header[148:156] = b" " * 8              # checksum placeholder
    header[156] = ord("0")                  # regular file
    header[257:263] = b"ustar\x00"
    header[263:265] = b"00"
    checksum = sum(header)
    header[148:156] = f"{checksum:06o}".encode("ascii") + b"\x00 "
    return bytes(header)


def build_archive(specs: List[files.FileSpec]) -> bytes:
    """The full tar archive (functional oracle for small file sets)."""
    out = bytearray()
    for spec in specs:
        out += ustar_header(spec)
        content = spec.content()
        out += content
        pad = (-len(content)) % TAR_BLOCK
        out += b"\x00" * pad
    out += b"\x00" * (2 * TAR_BLOCK)
    return bytes(out)


def parse_archive(data: bytes) -> List[tuple]:
    """Parse (name, size) entries back out of an archive."""
    entries = []
    offset = 0
    while offset + TAR_BLOCK <= len(data):
        block = data[offset:offset + TAR_BLOCK]
        if block == b"\x00" * TAR_BLOCK:
            break
        name = block[0:100].rstrip(b"\x00").decode("ascii")
        size = int(block[124:135].rstrip(b"\x00 "), 8)
        entries.append((name, size))
        offset += TAR_BLOCK + size + ((-size) % TAR_BLOCK)
    return entries


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
class TarApp:
    """Tar under the four configurations (custom flows).

    The cluster has two hosts: host0 runs tar, host1 holds the output
    archive ("a remote node").
    """

    name = "tar"
    request_bytes = 64 * 1024

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        total = max(64 * 1024, int(files.PAPER_INPUT_BYTES * scale))
        self.files = files.generate_fileset(total_bytes=total)
        self.headers = [ustar_header(spec) for spec in self.files]
        self.total_input = files.total_size(self.files)
        self.archive_bytes = (sum(TAR_BLOCK + f.size + (-f.size) % TAR_BLOCK
                                  for f in self.files) + 2 * TAR_BLOCK)

    def cluster_config(self) -> ClusterConfig:
        return ClusterConfig(num_hosts=2)

    # ------------------------------------------------------------------
    def run_normal(self, system: System, depth: int):
        """Host reads every file and writes the archive to the remote."""
        host, remote = system.hosts[0], system.hosts[1]
        stream = ReadStream(system, host, total_bytes=self.total_input,
                            request_bytes=self.request_bytes, depth=depth,
                            to_switch=False, request_cost="os")
        # Header generation is interleaved with the data stream; charge
        # it against the block containing each file's start: the number
        # of headers in block b is the number of file starts below that
        # block's end offset, so one vectorised searchsorted over the
        # cumulative block ends replaces the per-file scan.
        file_starts = []
        offset = 0
        for spec in self.files:
            file_starts.append(offset)
            offset += spec.size
        block_ends = [min((b + 1) * self.request_bytes, self.total_input)
                      for b in range(stream.num_blocks)]
        if _np is not None:
            cumulative = _np.searchsorted(
                _np.asarray(file_starts, dtype=_np.int64),
                _np.asarray(block_ends, dtype=_np.int64), side="left")
            header_counts = _np.diff(cumulative, prepend=0).tolist()
        else:
            from bisect import bisect_left
            cuts = [bisect_left(file_starts, end) for end in block_ends]
            header_counts = [hi - lo
                             for lo, hi in zip([0] + cuts[:-1], cuts)]
        cursor_in = _INPUT_BASE
        cursor_out = _OUTPUT_BASE
        for block_index in range(stream.num_blocks):
            arrival = yield from stream.next_block()
            yield from stream.consume_fully(arrival)
            headers_here = header_counts[block_index]
            copy_stall = host.hierarchy.load_range(cursor_in, arrival.nbytes)
            copy_stall += host.hierarchy.store_range(cursor_out, arrival.nbytes)
            cursor_in += arrival.nbytes
            cursor_out += arrival.nbytes
            yield from host.cpu.work(
                headers_here * HEADER_FORMAT_CYCLES
                + arrival.nbytes * HOST_COPY_CYCLES_PER_BYTE,
                copy_stall)
            out_bytes = arrival.nbytes + headers_here * TAR_BLOCK
            yield from system.host_to_host_bulk(host, remote, out_bytes)
            yield from stream.done_with(arrival)

    def run_active(self, system: System, depth: int):
        """Host sends headers; the switch handler pulls the file data
        from storage and redirects it to the remote node."""
        host, remote = system.hosts[0], system.hosts[1]
        env = system.env

        def host_stage(env):
            # Parse options + generate and ship one header per file.
            for spec in self.files:
                yield from host.cpu.work(HEADER_FORMAT_CYCLES, 0)
                yield from system.host_to_host_bulk(host, remote, TAR_BLOCK)
            # One active request launches the switch-side tar handler.
            yield from host.active_request()

        def switch_stage(env):
            # The handler initiates its own disk reads — no host request
            # costs at all (request_cost="none").
            stream = ReadStream(system, host, total_bytes=self.total_input,
                                request_bytes=self.request_bytes,
                                depth=depth, to_switch=True,
                                request_cost="none")
            for _ in range(stream.num_blocks):
                arrival = yield from stream.next_block()
                yield from system.process_on_switch(
                    SWITCH_REDIRECT_CYCLES_PER_BLOCK, 0,
                    arrival_end_event=arrival.end_event,
                    arrival_end_ps=arrival.end_ps)
                yield from system.switch_to_remote_bulk(remote.name,
                                                        arrival.nbytes)
                remote.hca.account_bulk_in(arrival.nbytes)
                yield from stream.done_with(arrival)

        host_proc = env.process(host_stage(env), name="tar-host")
        switch_proc = env.process(switch_stage(env), name="tar-switch")
        yield env.all_of([host_proc, switch_proc])

    # ------------------------------------------------------------------
    def run_case(self, config: ClusterConfig,
                 trace=None, metrics_sink=None) -> CaseResult:
        system = System(config)
        if trace is not None:
            system.attach_trace(trace)
        runner = (self.run_active(system, config.prefetch_depth)
                  if config.active
                  else self.run_normal(system, config.prefetch_depth))
        proc = system.env.process(runner, name=f"tar-{config.case_label}")
        system.env.run(until=proc)
        if metrics_sink is not None:
            metrics_sink.update(system.metrics.snapshot())
        return finalize_case(system, config.case_label)

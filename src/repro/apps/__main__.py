"""Run one benchmark from the command line.

::

    python -m repro.apps grep
    python -m repro.apps hashjoin --scale 0.03125
    python -m repro.apps md5 --switch-cpus 4
    python -m repro.apps sort --preset fast_storage
    python -m repro.apps grep --parallel 4 --cache .repro-cache
    python -m repro.apps --list

Everything routes through :func:`repro.run`, so ``--parallel`` fans the
four configurations across worker processes and ``--cache`` reuses
results across invocations — with output bit-identical to serial runs.
"""

from __future__ import annotations

import argparse
import sys

from ..cluster.presets import PRESETS
from ..runner.api import run
from ..runner.spec import APP_REGISTRY, DEFAULT_SCALES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("app", nargs="?", choices=sorted(APP_REGISTRY),
                        help="benchmark to run")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale (1.0 = paper size)")
    parser.add_argument("--switch-cpus", type=int, default=1,
                        choices=(1, 2, 4), help="embedded CPUs (md5)")
    parser.add_argument("--preset", default="paper_2003",
                        choices=sorted(PRESETS),
                        help="technology preset for the cluster")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="worker processes for the four cases")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="reuse/store per-case results in DIR")
    parser.add_argument("--trace", action="store_true",
                        help="record structured traces and print the "
                             "terminal timelines (forces serial, uncached)")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write the Chrome trace_event JSON "
                             "(Perfetto-loadable) to FILE; implies --trace")
    parser.add_argument("--list", action="store_true",
                        help="list available benchmarks")
    args = parser.parse_args(argv)

    if args.list or args.app is None:
        for name in sorted(APP_REGISTRY):
            print(name)
        return 0

    scale = (args.scale if args.scale is not None
             else DEFAULT_SCALES.get(args.app, 1.0))
    params = {"scale": scale}
    if args.app == "md5":
        params["num_switch_cpus"] = args.switch_cpus
    preset = None if args.preset == "paper_2003" else args.preset

    trace = args.trace_out if args.trace_out else (args.trace or None)
    result = run(args.app, parallel=args.parallel, cache=args.cache,
                 preset=preset, trace=trace, **params)
    report = result.report()
    print(report.performance())
    print()
    print(report.breakdown())
    print()
    if trace:
        timeline = report.timeline()
        if timeline:
            print(timeline)
            print()
        if args.trace_out:
            print(f"trace written to {args.trace_out}", file=sys.stderr)
    print(f"active speedup (vs normal):           {result.active_speedup:.3f}")
    print(f"active+pref speedup (vs normal+pref): "
          f"{result.active_pref_speedup:.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

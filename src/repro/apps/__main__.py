"""Run one benchmark from the command line.

::

    python -m repro.apps grep
    python -m repro.apps hashjoin --scale 0.03125
    python -m repro.apps md5 --switch-cpus 4
    python -m repro.apps sort --preset fast_storage
    python -m repro.apps --list
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from ..cluster.presets import PRESETS, get_preset
from ..metrics.report import breakdown_table, performance_table
from ..metrics.results import BenchmarkResult
from .base import run_four_cases
from .grep import GrepApp
from .hashjoin import HashJoinApp
from .md5 import Md5App
from .mpeg_filter import MpegFilterApp
from .select import SelectApp
from .sort import SortApp
from .tar import TarApp

#: name -> (factory(scale, args), sensible default scale).
APPS = {
    "grep": (lambda scale, args: GrepApp(scale=scale), 1.0),
    "select": (lambda scale, args: SelectApp(scale=scale), 1 / 16),
    "hashjoin": (lambda scale, args: HashJoinApp(scale=scale), 1 / 16),
    "mpeg": (lambda scale, args: MpegFilterApp(scale=scale), 1.0),
    "tar": (lambda scale, args: TarApp(scale=scale), 1.0),
    "sort": (lambda scale, args: SortApp(scale=scale), 1 / 64),
    "md5": (lambda scale, args: Md5App(scale=scale,
                                       num_switch_cpus=args.switch_cpus),
            1.0),
}


def run_app(name: str, args) -> BenchmarkResult:
    factory, default_scale = APPS[name]
    scale = args.scale if args.scale is not None else default_scale

    def make():
        app = factory(scale, args)
        if args.preset != "paper_2003":
            base = get_preset(args.preset)
            original = app.cluster_config

            def patched_config(base=base, original=original):
                mine = original()
                return replace(
                    base,
                    num_hosts=mine.num_hosts,
                    num_storage=mine.num_storage,
                    num_switch_cpus=mine.num_switch_cpus,
                    database_scaled_caches=mine.database_scaled_caches,
                    cache_scale_divisor=mine.cache_scale_divisor,
                )

            app.cluster_config = patched_config
        return app

    return run_four_cases(make)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("app", nargs="?", choices=sorted(APPS),
                        help="benchmark to run")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale (1.0 = paper size)")
    parser.add_argument("--switch-cpus", type=int, default=1,
                        choices=(1, 2, 4), help="embedded CPUs (md5)")
    parser.add_argument("--preset", default="paper_2003",
                        choices=sorted(PRESETS),
                        help="technology preset for the cluster")
    parser.add_argument("--list", action="store_true",
                        help="list available benchmarks")
    args = parser.parse_args(argv)

    if args.list or args.app is None:
        for name in sorted(APPS):
            print(name)
        return 0

    result = run_app(args.app, args)
    print(performance_table(result))
    print()
    print(breakdown_table(result))
    print()
    print(f"active speedup (vs normal):           {result.active_speedup:.3f}")
    print(f"active+pref speedup (vs normal+pref): "
          f"{result.active_pref_speedup:.3f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Deterministic fault scheduling and accounting.

A :class:`FaultInjector` turns a :class:`~repro.faults.FaultPlan` into
concrete per-event decisions ("does *this* packet on *this* link drop?").
Determinism is the whole point: every component gets its own named
pseudo-random stream whose seed is :func:`stream_seed` — a SHA-256
derivation of ``(master seed, component name)`` — so a decision depends
only on ``(seed, component, draw index)``: never on how simulation
events from *other* components happen to interleave, and never on
process identity (interpreter hash randomisation, worker pid, spawn
order).  Re-running the same plan + seed reproduces the identical fault
schedule bit for bit — serially, in a pool worker, or from a cached
cell — which :meth:`fingerprint` makes checkable.

The injector also centralises fault *accounting* (how many drops,
corruptions, transient errors, and crashes were injected) and exposes a
failure-context provider so a wedged chaotic run's ``DeadlockError`` /
watchdog report shows what had been injected up to the hang.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional

from .plan import FailStopEvent, FaultPlan


class HandlerCrashError(Exception):
    """Injected switch-handler crash (fires at a suspension point)."""


def stream_seed(seed: int, component: str) -> int:
    """The integer seed of one component's pseudo-random stream.

    SHA-256 over ``"{seed}/{component}"`` — a pure function of the
    master seed and the component name.  Integer seeding of
    :class:`random.Random` is documented stable arithmetic, so the
    stream (and hence the fault schedule) is identical in every
    process: ``PYTHONHASHSEED``, worker identity, and platform `hash`
    details cannot leak in.
    """
    digest = hashlib.sha256(f"{seed}/{component}".encode()).digest()
    return int.from_bytes(digest, "big")


class FaultInjector:
    """Draws deterministic fault decisions for every instrumented component."""

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = plan.seed if plan.seed is not None else seed
        self._streams: Dict[str, random.Random] = {}
        self._counters: Dict[str, int] = {}
        #: Ordered decision log; basis of :meth:`fingerprint`.
        self._log: List[str] = []
        self.injected: Dict[str, int] = {
            "link_drops": 0,
            "link_corruptions": 0,
            "disk_errors": 0,
            "scsi_errors": 0,
            "handler_crashes": 0,
            "atb_corruptions": 0,
            "failstop_switch_down": 0,
            "failstop_link_down": 0,
        }

    # ------------------------------------------------------------------
    # Per-component deterministic streams
    # ------------------------------------------------------------------
    def _stream(self, component: str) -> random.Random:
        stream = self._streams.get(component)
        if stream is None:
            stream = random.Random(stream_seed(self.seed, component))
            self._streams[component] = stream
        return stream

    def _next_index(self, component: str) -> int:
        index = self._counters.get(component, 0)
        self._counters[component] = index + 1
        return index

    def _record(self, component: str, index: int, decision: str) -> None:
        if decision != "ok":
            self._log.append(f"{component}#{index}:{decision}")

    # ------------------------------------------------------------------
    # Link faults
    # ------------------------------------------------------------------
    def link_outcome(self, link_name: str) -> str:
        """Outcome for one serialization attempt: ``ok``/``drop``/``corrupt``."""
        cfg = self.plan.link
        component = f"link/{link_name}"
        index = self._next_index(component)
        if index in cfg.drop_attempts:
            outcome = "drop"
        elif index in cfg.corrupt_attempts:
            outcome = "corrupt"
        else:
            draw = self._stream(component).random()
            if draw < cfg.drop_rate:
                outcome = "drop"
            elif draw < cfg.drop_rate + cfg.bit_error_rate:
                outcome = "corrupt"
            else:
                outcome = "ok"
        if outcome == "drop":
            self.injected["link_drops"] += 1
        elif outcome == "corrupt":
            self.injected["link_corruptions"] += 1
        self._record(component, index, outcome)
        return outcome

    # ------------------------------------------------------------------
    # Storage faults
    # ------------------------------------------------------------------
    def disk_error(self, disk_name: str, write: bool) -> bool:
        """Whether this disk request attempt hits a transient media error."""
        cfg = self.plan.disk
        component = f"disk/{disk_name}"
        index = self._next_index(component)
        if index in cfg.error_requests:
            errored = True
        else:
            rate = cfg.write_error_rate if write else cfg.read_error_rate
            errored = self._stream(component).random() < rate
        if errored:
            self.injected["disk_errors"] += 1
        self._record(component, index, "error" if errored else "ok")
        return errored

    def scsi_error(self, bus_name: str) -> bool:
        """Whether this SCSI transaction attempt hits a parity error."""
        cfg = self.plan.scsi
        component = f"scsi/{bus_name}"
        index = self._next_index(component)
        errored = self._stream(component).random() < cfg.error_rate
        if errored:
            self.injected["scsi_errors"] += 1
        self._record(component, index, "error" if errored else "ok")
        return errored

    # ------------------------------------------------------------------
    # Switch faults
    # ------------------------------------------------------------------
    def handler_crash(self, switch_name: str, handler_id: int,
                      invocation: int) -> bool:
        """Whether this handler invocation should crash mid-flight."""
        cfg = self.plan.handler
        component = f"handler/{switch_name}/{handler_id}"
        if (handler_id, invocation) in cfg.crash_invocations:
            crashed = True
            # Keep the random stream aligned with invocation count so a
            # scripted crash doesn't shift later random decisions.
            self._stream(component).random()
        else:
            crashed = self._stream(component).random() < cfg.crash_rate
        if crashed:
            self.injected["handler_crashes"] += 1
            self._log.append(f"{component}#{invocation}:crash")
        return crashed

    def atb_corruption(self, switch_name: str) -> bool:
        """Whether this ATB lookup reads a parity-corrupted entry."""
        cfg = self.plan.handler
        component = f"atb/{switch_name}"
        index = self._next_index(component)
        corrupted = self._stream(component).random() < cfg.atb_corruption_rate
        if corrupted:
            self.injected["atb_corruptions"] += 1
        self._record(component, index, "corrupt" if corrupted else "ok")
        return corrupted

    # ------------------------------------------------------------------
    # Fail-stop faults
    # ------------------------------------------------------------------
    def failstop_schedule(self, candidates) -> List[FailStopEvent]:
        """The run's concrete fail-stop schedule, in firing order.

        Scripted :attr:`~repro.faults.FailStopFaults.events` pass
        through verbatim; ``random_switch_kills`` victims are drawn
        (without replacement) from ``candidates`` — the fabric's
        top-level switch names — with kill times uniform in the plan's
        window.  Both come from the dedicated ``failstop`` stream, so
        the schedule is a pure function of (seed, candidate order) and
        lands in :meth:`fingerprint` like every other decision.
        """
        cfg = self.plan.failstop
        events = list(cfg.events)
        candidates = list(candidates)
        kills = min(cfg.random_switch_kills, len(candidates))
        if kills:
            stream = self._stream("failstop")
            lo, hi = cfg.kill_window_ps
            victims = stream.sample(candidates, kills)
            for victim in victims:
                at_ps = stream.randrange(lo, hi + 1)
                events.append(FailStopEvent(kind="switch_down",
                                            target=victim, at_ps=at_ps))
        events.sort(key=lambda e: (e.at_ps, e.kind, e.target))
        return events

    def failstop_fired(self, event: FailStopEvent) -> None:
        """Account one fail-stop event actually applied to the fabric."""
        key = f"failstop_{event.kind}"
        self.injected[key] = self.injected.get(key, 0) + 1
        self._log.append(
            f"failstop/{event.target}@{event.at_ps}:{event.kind}")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Digest of every non-ok decision, in injection order.

        Two runs with the same plan + seed (and the same workload) must
        produce identical fingerprints — the chaos suite asserts this.
        """
        digest = hashlib.sha256("\n".join(self._log).encode()).hexdigest()
        return digest[:16]

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def snapshot(self) -> Dict[str, float]:
        """Injection counters, prefixed for merging into run reports."""
        return {f"injected_{key}": float(value)
                for key, value in self.injected.items() if value}

    def failure_context(self) -> dict:
        """Context provider for DeadlockError / watchdog reports."""
        active = {key: value for key, value in self.injected.items() if value}
        return {"fault-injector": (
            f"seed={self.seed} injected={active or 'nothing'}")}

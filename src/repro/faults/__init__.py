"""Deterministic fault injection for the simulated SAN.

Declare *what can fail* with a frozen :class:`FaultPlan`, then let a
seeded :class:`FaultInjector` decide *when* — per-component pseudo-random
streams make every schedule reproducible bit for bit from a single seed.
The recovery mechanisms live with the components they protect (links
retransmit, disks retry, the active switch quarantines crashing handlers
and falls back to cut-through forwarding); this package only decides and
accounts.
"""

from .injector import FaultInjector, HandlerCrashError, stream_seed
from .plan import (DiskFaults, FailStopEvent, FailStopFaults, FaultPlan,
                   HandlerFaults, LinkFaults, ScsiFaults)

__all__ = [
    "DiskFaults",
    "FailStopEvent",
    "FailStopFaults",
    "FaultInjector",
    "FaultPlan",
    "HandlerCrashError",
    "HandlerFaults",
    "LinkFaults",
    "ScsiFaults",
    "stream_seed",
]

"""Declarative fault plans for the simulated SAN.

A :class:`FaultPlan` describes *what can go wrong* in one run: per-packet
link drops and bit errors, transient disk and SCSI-bus errors, and
switch-handler crashes / ATB parity corruption.  The plan is pure data —
frozen, hashable, reusable across runs.  Pair it with a seed (usually
``ClusterConfig.seed``) inside a :class:`~repro.faults.FaultInjector` to
get a concrete, deterministic fault *schedule*: the same plan and seed
always fault the same packets, requests, and invocations, so a chaotic
run is exactly reproducible bit for bit.

Every rate defaults to zero and every plan knob is additive: a default
``FaultPlan()`` injects nothing, and a ``ClusterConfig`` without a plan
never touches the fault machinery at all — the fault-free datapaths are
the exact pre-existing code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..sim.units import us


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value}")


@dataclass(frozen=True)
class LinkFaults:
    """Per-packet wire faults and the link-layer recovery policy.

    Every serialized packet independently draws one outcome:
    ``drop`` (the packet vanishes in the fabric; the sender recovers via
    an ACK timeout with exponential backoff), ``corrupt`` (delivered
    with a CRC violation; the receiving port discards it and NACKs, and
    the sender retransmits immediately), or ``ok``.
    """

    drop_rate: float = 0.0
    bit_error_rate: float = 0.0
    #: First ACK-timeout window; attempt ``k`` waits
    #: ``ack_timeout_ps * backoff_factor**k`` before retransmitting.
    ack_timeout_ps: int = us(5)
    backoff_factor: float = 2.0
    #: Retransmissions allowed per packet before the link gives up.
    max_retries: int = 8
    #: Deterministic fault script (mainly for tests): serialization
    #: attempt indices, per link, forced to drop / corrupt regardless of
    #: the rates.
    drop_attempts: Tuple[int, ...] = ()
    corrupt_attempts: Tuple[int, ...] = ()

    def __post_init__(self):
        _check_rate("drop_rate", self.drop_rate)
        _check_rate("bit_error_rate", self.bit_error_rate)
        if self.drop_rate + self.bit_error_rate > 1.0:
            raise ValueError("drop_rate + bit_error_rate cannot exceed 1")
        if self.ack_timeout_ps <= 0:
            raise ValueError("ack_timeout_ps must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")

    @property
    def enabled(self) -> bool:
        return (self.drop_rate > 0 or self.bit_error_rate > 0
                or bool(self.drop_attempts) or bool(self.corrupt_attempts))


@dataclass(frozen=True)
class DiskFaults:
    """Transient (recoverable-by-retry) media errors.

    A failing request pays positioning plus roughly half the transfer
    before the error is detected, then the firmware re-positions and
    retries after an exponentially backed-off recalibration delay.
    """

    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    #: Firmware recovery delay before retry ``k`` (scaled by ``2**k``).
    retry_backoff_ps: int = us(500)
    max_retries: int = 4
    #: Deterministic request indices, per spindle, forced to error.
    error_requests: Tuple[int, ...] = ()

    def __post_init__(self):
        _check_rate("read_error_rate", self.read_error_rate)
        _check_rate("write_error_rate", self.write_error_rate)
        if self.retry_backoff_ps <= 0:
            raise ValueError("retry_backoff_ps must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")

    @property
    def enabled(self) -> bool:
        return (self.read_error_rate > 0 or self.write_error_rate > 0
                or bool(self.error_requests))


@dataclass(frozen=True)
class ScsiFaults:
    """Transient bus (parity/arbitration) errors, retried per transaction."""

    error_rate: float = 0.0
    max_retries: int = 4

    def __post_init__(self):
        _check_rate("error_rate", self.error_rate)
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")

    @property
    def enabled(self) -> bool:
        return self.error_rate > 0


@dataclass(frozen=True)
class HandlerFaults:
    """Switch-handler crashes and ATB parity corruption.

    ``crash_invocations`` schedules deterministic crashes as
    ``(handler_id, invocation_index)`` pairs (0-based, counted per
    switch per handler); ``crash_rate`` draws additional crashes at
    random.  An injected crash fires at the handler's first suspension
    point, i.e. mid-flight with its stream buffers mapped.  A handler
    that has crashed ``quarantine_threshold`` times is quarantined: its
    registered flush hook drains any partial state, and subsequent
    traffic falls back to normal cut-through forwarding toward the
    message's ``fallback_dst``.
    """

    crash_rate: float = 0.0
    crash_invocations: Tuple[Tuple[int, int], ...] = ()
    atb_corruption_rate: float = 0.0
    quarantine_threshold: int = 2

    def __post_init__(self):
        _check_rate("crash_rate", self.crash_rate)
        _check_rate("atb_corruption_rate", self.atb_corruption_rate)
        if self.quarantine_threshold < 1:
            raise ValueError("quarantine_threshold must be >= 1")
        for pair in self.crash_invocations:
            handler_id, invocation = pair
            if handler_id < 0 or invocation < 0:
                raise ValueError(f"invalid crash schedule entry {pair}")

    @property
    def enabled(self) -> bool:
        return (self.crash_rate > 0 or self.atb_corruption_rate > 0
                or bool(self.crash_invocations))


@dataclass(frozen=True)
class FaultPlan:
    """Everything that may be injected into one simulated run."""

    link: LinkFaults = field(default_factory=LinkFaults)
    disk: DiskFaults = field(default_factory=DiskFaults)
    scsi: ScsiFaults = field(default_factory=ScsiFaults)
    handler: HandlerFaults = field(default_factory=HandlerFaults)
    #: Optional seed override; ``None`` defers to the cluster seed so a
    #: single ``ClusterConfig.seed`` reproduces the whole run.
    seed: Optional[int] = None

    @property
    def enabled(self) -> bool:
        """True when any component can actually fault."""
        return (self.link.enabled or self.disk.enabled
                or self.scsi.enabled or self.handler.enabled)

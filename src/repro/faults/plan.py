"""Declarative fault plans for the simulated SAN.

A :class:`FaultPlan` describes *what can go wrong* in one run: per-packet
link drops and bit errors, transient disk and SCSI-bus errors, and
switch-handler crashes / ATB parity corruption.  The plan is pure data —
frozen, hashable, reusable across runs.  Pair it with a seed (usually
``ClusterConfig.seed``) inside a :class:`~repro.faults.FaultInjector` to
get a concrete, deterministic fault *schedule*: the same plan and seed
always fault the same packets, requests, and invocations, so a chaotic
run is exactly reproducible bit for bit.

Every rate defaults to zero and every plan knob is additive: a default
``FaultPlan()`` injects nothing, and a ``ClusterConfig`` without a plan
never touches the fault machinery at all — the fault-free datapaths are
the exact pre-existing code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..sim.units import us


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value}")


@dataclass(frozen=True)
class LinkFaults:
    """Per-packet wire faults and the link-layer recovery policy.

    Every serialized packet independently draws one outcome:
    ``drop`` (the packet vanishes in the fabric; the sender recovers via
    an ACK timeout with exponential backoff), ``corrupt`` (delivered
    with a CRC violation; the receiving port discards it and NACKs, and
    the sender retransmits immediately), or ``ok``.
    """

    drop_rate: float = 0.0
    bit_error_rate: float = 0.0
    #: First ACK-timeout window; attempt ``k`` waits
    #: ``ack_timeout_ps * backoff_factor**k`` before retransmitting.
    ack_timeout_ps: int = us(5)
    backoff_factor: float = 2.0
    #: Ceiling on one backed-off wait.  ``backoff_factor ** attempt`` is
    #: unbounded, so a long outage (a fail-stopped neighbor) would
    #: otherwise schedule absurd timeouts; capped waits are counted in
    #: :attr:`~repro.net.link.LinkStats.capped_backoffs`.  ``None``
    #: keeps the pre-1.5 unbounded behavior.
    max_backoff_ps: Optional[int] = None
    #: Retransmissions allowed per packet before the link gives up.
    max_retries: int = 8
    #: Deterministic fault script (mainly for tests): serialization
    #: attempt indices, per link, forced to drop / corrupt regardless of
    #: the rates.
    drop_attempts: Tuple[int, ...] = ()
    corrupt_attempts: Tuple[int, ...] = ()

    def __post_init__(self):
        _check_rate("drop_rate", self.drop_rate)
        _check_rate("bit_error_rate", self.bit_error_rate)
        if self.drop_rate + self.bit_error_rate > 1.0:
            raise ValueError("drop_rate + bit_error_rate cannot exceed 1")
        if self.ack_timeout_ps <= 0:
            raise ValueError("ack_timeout_ps must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_backoff_ps is not None \
                and self.max_backoff_ps < self.ack_timeout_ps:
            raise ValueError(
                "max_backoff_ps cannot undercut the first ack_timeout_ps")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")

    @property
    def enabled(self) -> bool:
        return (self.drop_rate > 0 or self.bit_error_rate > 0
                or bool(self.drop_attempts) or bool(self.corrupt_attempts))


@dataclass(frozen=True)
class DiskFaults:
    """Transient (recoverable-by-retry) media errors.

    A failing request pays positioning plus roughly half the transfer
    before the error is detected, then the firmware re-positions and
    retries after an exponentially backed-off recalibration delay.
    """

    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    #: Firmware recovery delay before retry ``k`` (scaled by ``2**k``).
    retry_backoff_ps: int = us(500)
    max_retries: int = 4
    #: Deterministic request indices, per spindle, forced to error.
    error_requests: Tuple[int, ...] = ()

    def __post_init__(self):
        _check_rate("read_error_rate", self.read_error_rate)
        _check_rate("write_error_rate", self.write_error_rate)
        if self.retry_backoff_ps <= 0:
            raise ValueError("retry_backoff_ps must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")

    @property
    def enabled(self) -> bool:
        return (self.read_error_rate > 0 or self.write_error_rate > 0
                or bool(self.error_requests))


@dataclass(frozen=True)
class ScsiFaults:
    """Transient bus (parity/arbitration) errors, retried per transaction."""

    error_rate: float = 0.0
    max_retries: int = 4

    def __post_init__(self):
        _check_rate("error_rate", self.error_rate)
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")

    @property
    def enabled(self) -> bool:
        return self.error_rate > 0


@dataclass(frozen=True)
class HandlerFaults:
    """Switch-handler crashes and ATB parity corruption.

    ``crash_invocations`` schedules deterministic crashes as
    ``(handler_id, invocation_index)`` pairs (0-based, counted per
    switch per handler); ``crash_rate`` draws additional crashes at
    random.  An injected crash fires at the handler's first suspension
    point, i.e. mid-flight with its stream buffers mapped.  A handler
    that has crashed ``quarantine_threshold`` times is quarantined: its
    registered flush hook drains any partial state, and subsequent
    traffic falls back to normal cut-through forwarding toward the
    message's ``fallback_dst``.
    """

    crash_rate: float = 0.0
    crash_invocations: Tuple[Tuple[int, int], ...] = ()
    atb_corruption_rate: float = 0.0
    quarantine_threshold: int = 2

    def __post_init__(self):
        _check_rate("crash_rate", self.crash_rate)
        _check_rate("atb_corruption_rate", self.atb_corruption_rate)
        if self.quarantine_threshold < 1:
            raise ValueError("quarantine_threshold must be >= 1")
        for pair in self.crash_invocations:
            handler_id, invocation = pair
            if handler_id < 0 or invocation < 0:
                raise ValueError(f"invalid crash schedule entry {pair}")

    @property
    def enabled(self) -> bool:
        return (self.crash_rate > 0 or self.atb_corruption_rate > 0
                or bool(self.crash_invocations))


@dataclass(frozen=True)
class FailStopEvent:
    """One scheduled fail-stop: a component dies outright at ``at_ps``.

    ``kind`` is ``"switch_down"`` (``target`` is a switch name; every
    link touching it dies with it) or ``"link_down"`` (``target`` is one
    link direction, named ``"src->dst"``).  ``revive_at_ps`` optionally
    brings the component back — its *wires* recover; any handler state
    it held is gone, which is exactly what the epoch-numbered collective
    recovery is built to survive.  Targets not present in the fabric
    under test are ignored, so one plan can ride a topology sweep.
    """

    kind: str
    target: str
    at_ps: int
    revive_at_ps: Optional[int] = None

    def __post_init__(self):
        if self.kind not in ("switch_down", "link_down"):
            raise ValueError(
                f"unknown fail-stop kind {self.kind!r}; "
                f"expected 'switch_down' or 'link_down'")
        if self.at_ps < 0:
            raise ValueError("fail-stop time cannot be negative")
        if self.revive_at_ps is not None and self.revive_at_ps <= self.at_ps:
            raise ValueError("revive_at_ps must come after at_ps")


@dataclass(frozen=True)
class FailStopFaults:
    """Fail-stop (whole-component) failures and the recovery policy.

    Two ways to schedule deaths: ``events`` scripts them exactly, and
    ``random_switch_kills`` draws that many victims from the fabric's
    top (core/spine) level, with kill times uniform in ``kill_window_ps``
    — both deterministic functions of the injector seed, like every
    other fault stream.

    Detection and recovery knobs live here because they only matter
    when something can actually die: ``heartbeat_interval_ps`` paces the
    per-switch liveness monitor (detection latency is bounded by one
    interval), ``collective_timeout_ps`` is the end-to-end deadline a
    placed collective waits before declaring the attempt lost and
    repairing, and ``max_attempts`` bounds the repair/retry loop.
    """

    events: Tuple[FailStopEvent, ...] = ()
    #: Seeded random spine/core kills (drawn from the fabric's top level).
    random_switch_kills: int = 0
    kill_window_ps: Tuple[int, int] = (us(5), us(50))
    #: Liveness-monitor period on every switch (and detection bound).
    heartbeat_interval_ps: int = us(10)
    #: End-to-end deadline per collective attempt before repair.
    collective_timeout_ps: int = us(400)
    #: Collective attempts (initial + repairs) before giving up.
    max_attempts: int = 4

    def __post_init__(self):
        if self.random_switch_kills < 0:
            raise ValueError("random_switch_kills cannot be negative")
        lo, hi = self.kill_window_ps
        if lo < 0 or hi < lo:
            raise ValueError(f"bad kill window {self.kill_window_ps}")
        if self.heartbeat_interval_ps <= 0:
            raise ValueError("heartbeat_interval_ps must be positive")
        if self.collective_timeout_ps <= 0:
            raise ValueError("collective_timeout_ps must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    @property
    def enabled(self) -> bool:
        return bool(self.events) or self.random_switch_kills > 0


@dataclass(frozen=True)
class FaultPlan:
    """Everything that may be injected into one simulated run."""

    link: LinkFaults = field(default_factory=LinkFaults)
    disk: DiskFaults = field(default_factory=DiskFaults)
    scsi: ScsiFaults = field(default_factory=ScsiFaults)
    handler: HandlerFaults = field(default_factory=HandlerFaults)
    failstop: FailStopFaults = field(default_factory=FailStopFaults)
    #: Optional seed override; ``None`` defers to the cluster seed so a
    #: single ``ClusterConfig.seed`` reproduces the whole run.
    seed: Optional[int] = None

    @property
    def enabled(self) -> bool:
        """True when any component can actually fault."""
        return (self.link.enabled or self.disk.enabled
                or self.scsi.enabled or self.handler.enabled
                or self.failstop.enabled)

"""Ablation: non-active traffic under active load.

Design claim probed: design goal #1 — "the presence of active switches
should not degrade the performance of (the likely more common)
non-active messages".  The control path (dispatch, switch CPU) is
separate from the forwarding datapath, so probe messages between two
endpoints see the same latency whether or not a third endpoint is
saturating the switch CPU with handler work.
"""

import pytest

from repro.experiments.ablations import ablate_noninterference


def test_ablation_noninterference(benchmark):
    result = benchmark.pedantic(ablate_noninterference, rounds=1,
                                iterations=1)
    print()
    print(f"  forwarding latency, quiet switch:  {result['quiet_us']:.3f} us")
    print(f"  forwarding latency, loaded switch: {result['loaded_us']:.3f} us")
    print(f"  slowdown: {result['slowdown']:.4f}x")
    assert result["slowdown"] == pytest.approx(1.0, abs=0.02)

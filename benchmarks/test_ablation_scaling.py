"""Ablations: storage technology scaling and predicate selectivity.

* Storage scaling probes the design's forward trajectory: the 500 MHz
  handler has headroom over 100-200 MB/s disks (the paper's era) but
  becomes the bottleneck as storage approaches NVMe-class rates — the
  active+pref advantage crosses below 1.0.
* Selectivity confirms the traffic win *is* the predicate selectivity:
  ship 5 % and the fabric sees 5 %; ship 90 % and little is left to win.
"""

from repro.experiments.ablations import (
    ablate_selectivity,
    ablate_storage_scaling,
)


def test_ablation_storage_scaling(benchmark):
    rows = benchmark.pedantic(ablate_storage_scaling, rounds=1, iterations=1)
    print()
    for row in rows:
        print(f"  disk {row['disk_mb_s']:6.0f} MB/s: "
              f"a+p speedup {row['speedup']:.3f}, "
              f"switch busy {row['switch_busy_frac']:.1%}")
    by_rate = {row["disk_mb_s"]: row["speedup"] for row in rows}
    # At the paper's 100 MB/s the active system holds its ground...
    assert by_rate[100.0] >= 1.0
    # ...but at 8x the handler is the bottleneck and the win is gone.
    assert by_rate[800.0] < 1.0
    # The erosion is monotone from 200 MB/s up.
    assert by_rate[200.0] >= by_rate[400.0] >= by_rate[800.0]


def test_ablation_selectivity(benchmark):
    rows = benchmark.pedantic(ablate_selectivity, rounds=1, iterations=1)
    print()
    for row in rows:
        print(f"  selectivity {row['selectivity']:.2f}: "
              f"traffic fraction {row['traffic_fraction']:.3f}")
    for row in rows:
        # Host traffic tracks the selectivity within noise.
        assert abs(row["traffic_fraction"] - row["selectivity"]) < 0.05

"""Figures 7/8: database Select (sequential range selection).

Paper shape: the benchmark is I/O bound — normal is worst, the other
three nearly identical; average normal host utilization ~21x the active
one; active I/O traffic is 25 % of normal (the selectivity).
"""

from conftest import run_experiment


def test_fig07_08_select(benchmark):
    result = run_experiment(benchmark, "fig07_08_select")

    # Normal is the only slow case; the rest are within a few percent.
    assert result.normalized_time("normal+pref") < 0.95
    times = [result.case(label).exec_ps
             for label in ("normal+pref", "active", "active+pref")]
    assert max(times) / min(times) < 1.10
    # Utilization ratio (paper: 21x).
    normal_avg = (result.utilization("normal")
                  + result.utilization("normal+pref")) / 2
    active_avg = (result.utilization("active")
                  + result.utilization("active+pref")) / 2
    assert 10 < normal_avg / active_avg < 40
    # Traffic equals the selectivity (paper: 25 %).
    assert 0.2 < result.normalized_traffic("active") < 0.3

"""Ablation: key skew in the parallel sort's distribution phase.

The p/(3p-2) formula assumes uniform keys.  Under Zipf skew the static
range partition becomes unbalanced (the eventual per-node *sort* work
would too), yet the distribution phase itself is robust: every node
still reads its full 1/p of the input, and reads — not the skewed
sends — bound the phase.  Active traffic drops slightly below the
formula because hot-range records stay local more often.
"""

from repro.experiments.ablations import ablate_sort_skew


def test_ablation_sort_skew(benchmark):
    rows = benchmark.pedantic(ablate_sort_skew, rounds=1, iterations=1)
    print()
    for row in rows:
        print(f"  zipf s={row['zipf_exponent']:.1f}: "
              f"imbalance {row['imbalance']:.2f}x, "
              f"n+p {row['normal_exec_ms']:.1f} ms, "
              f"a+p {row['active_exec_ms']:.1f} ms, "
              f"traffic {row['traffic_fraction']:.3f}")
    by_exp = {row["zipf_exponent"]: row for row in rows}
    # Skew produces real partition imbalance...
    assert by_exp[1.0]["imbalance"] > by_exp[0.0]["imbalance"] * 1.2
    # ...but the read-bound distribution phase barely moves (<5%).
    assert (by_exp[1.0]["active_exec_ms"]
            < by_exp[0.0]["active_exec_ms"] * 1.05)
    # Uniform keys land on the paper's formula.
    assert abs(by_exp[0.0]["traffic_fraction"] - 0.40) < 0.02

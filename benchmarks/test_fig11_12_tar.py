"""Figures 11/12: Tar (switch-initiated disk reads, host bypassed).

Paper shape: normal worst (synchronous I/O); the other three cases tie;
active host utilization ~0 — not from offloading computation but from
eliminating the per-request OS/interrupt overhead; host traffic is just
the 512-byte headers.
"""

from conftest import run_experiment


def test_fig11_12_tar(benchmark):
    result = run_experiment(benchmark, "fig11_12_tar")

    # Normal is worst; the rest tie within ~10 %.
    assert result.normalized_time("normal+pref") < 0.9
    times = [result.case(label).exec_ps
             for label in ("normal+pref", "active", "active+pref")]
    assert max(times) / min(times) < 1.12
    # Host bypassed: traffic is headers only, utilization ~0.
    assert result.normalized_traffic("active") < 0.01
    assert result.utilization("active") < 0.01
    assert result.case("active").host_bytes_in == 0

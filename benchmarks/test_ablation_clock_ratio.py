"""Ablation: embedded-CPU clock vs the one-CPU MD5 failure case.

Design claim probed: MD5 on a single switch CPU loses *because* the
embedded core runs at a quarter of the host's clock — the paper's
argument for why handlers "must not be compute-intensive".  Sweeping
the switch clock shows the crossover: at parity (2 GHz) the offload
wins even for whole-application compute.
"""

from repro.experiments.ablations import ablate_clock_ratio


def test_ablation_clock_ratio(benchmark):
    rows = benchmark.pedantic(ablate_clock_ratio, rounds=1, iterations=1)
    print()
    for row in rows:
        print(f"  {row['freq_mhz']:6.0f} MHz: "
              f"active+pref speedup {row['speedup']:.2f}")
    by_freq = {row["freq_mhz"]: row["speedup"] for row in rows}
    # The paper's 500 MHz point loses badly.
    assert by_freq[500.0] < 0.6
    # Speedup is monotone in clock rate.
    speedups = [row["speedup"] for row in rows]
    assert speedups == sorted(speedups)
    # At host parity the offload finally wins (no host cache stalls).
    assert by_freq[2000.0] > 1.0

"""Figures 15/16: collective reductions, latency vs node count.

Paper shape: the active switch tree beats the MST lower bound with a
speedup that *grows* with node count — up to 5.61 (Reduce-to-one) and
5.92 (Distributed Reduce) at 128 nodes — because its scaling factor is
log_{N/2}(p) instead of log2(p) and host software overhead is paid once
instead of per round.
"""

from conftest import run_experiment


def _print_series(rows):
    print()
    print(f"{'nodes':>6} {'normal (us)':>12} {'active (us)':>12} {'speedup':>8}")
    for row in rows:
        print(f"{row['nodes']:>6} {row['normal_us']:>12.1f} "
              f"{row['active_us']:>12.1f} {row['speedup']:>8.2f}")


def test_fig15_reduce_to_one(benchmark):
    rows = run_experiment(benchmark, "fig15_reduce_to_one")
    _print_series(rows)
    speedups = {row["nodes"]: row["speedup"] for row in rows}
    # Monotone growth with node count, up to ~5x at 128 (paper: 5.61).
    assert speedups[128] > 4.0
    assert speedups[128] > speedups[8] > speedups[2] * 0.95
    # Small systems see little benefit.
    assert speedups[2] < 1.5


def test_fig16_distributed_reduce(benchmark):
    rows = run_experiment(benchmark, "fig16_distributed_reduce")
    _print_series(rows)
    speedups = {row["nodes"]: row["speedup"] for row in rows}
    assert speedups[128] > 4.0
    assert speedups[128] > speedups[8]

"""Figures 3/4: MPEG-filter performance and execution-time breakdown.

Paper shape: normal+pref ~1.13x over normal; active cases ~1.23/1.36x
over the corresponding normals; host traffic cut by the P-frame share;
host and switch both busy in the active cases (a balanced pipeline).
"""

from conftest import run_experiment


def test_fig03_04_mpeg(benchmark):
    result = run_experiment(benchmark, "fig03_04_mpeg")

    # Normal+pref beats normal by overlapping I/O (paper: 1.13x).
    assert 1.05 < result.speedup("normal", "normal+pref") < 1.25
    # Active wins in both modes (paper: 1.23x and 1.36x).
    assert result.active_speedup > 1.15
    assert 1.2 < result.active_pref_speedup < 1.5
    # Only I-frame bytes reach the host (~36.5 % of the stream).
    assert 0.3 < result.normalized_traffic("active") < 0.45
    # Balanced pipeline: both processors busy in active cases.
    active = result.case("active+pref")
    assert active.host.utilization > 0.8
    assert active.switch_cpus[0].busy_frac > 0.4

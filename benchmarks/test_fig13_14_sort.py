"""Figures 13/14: parallel sort distribution phase.

Paper shape: like Grep (normal worst, others close, active host ~idle);
the headline: per-node traffic in the active cases is 40 % of normal at
p = 4 nodes — the p/(3p-2) formula, limiting to 1/3.
"""

import pytest

from conftest import run_experiment


def test_fig13_14_sort(benchmark):
    result = run_experiment(benchmark, "fig13_14_sort")

    # The paper's formula at p = 4.
    p = 4
    assert result.normalized_traffic("active") == pytest.approx(
        p / (3 * p - 2), abs=0.02)
    # Normal is worst; active host nearly idle.
    assert result.normalized_time("normal+pref") < 0.95
    assert result.utilization("active") < 0.02
    # Prefetch cases tie (both disk-bound).
    assert 0.9 < result.active_pref_speedup < 1.1

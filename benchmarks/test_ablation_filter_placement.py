"""Ablation: filter at the switch vs one active device per stream.

Design claim probed (Related Work): "the cost of the embedded switch
CPUs in active switches can be amortized across multiple I/O devices
... it will be possible to actively process four streams (for example)
from four passive I/O devices with a single switch, rather than
investing in four active I/O devices."  Two concurrent filtered scans
from two passive disk arrays leave a single switch CPU almost idle
while the run stays disk-bound — one embedded core really does the work
of N per-device cores for streaming filters.
"""

from repro.experiments.ablations import ablate_filter_placement


def test_ablation_filter_placement(benchmark):
    result = benchmark.pedantic(ablate_filter_placement, rounds=1,
                                iterations=1)
    print()
    print(f"  concurrent filtered streams: {result['streams']:.0f}")
    print(f"  execution time:              {result['exec_ms']:.2f} ms")
    print(f"  switch CPU busy fraction:    "
          f"{result['switch_cpu_busy_frac']:.1%}")
    # One CPU serves both streams with big headroom...
    assert result["switch_cpu_busy_frac"] < 0.5
    # ...without becoming the bottleneck (the run stays disk-bound).
    assert result["disk_bound"] == 1.0

"""Ablation: reduction vector size (extension of Figures 15/16).

Design claim probed: the paper's lower-bound argument — and its up-to-
5.9x win — is stated "for small vectors", where per-round software
overhead dominates.  Sweeping the vector size shows the advantage decay
as bandwidth terms take over, and multi-MTU vectors exercise the ATB's
conflict backpressure (an 8 KB vector spans the ATB's entire 16-region
reach).
"""

from repro.apps.reduction import vector_size_sweep


def test_ablation_vector_size(benchmark):
    rows = benchmark.pedantic(vector_size_sweep, rounds=1, iterations=1)
    print()
    for row in rows:
        print(f"  {row['vector_bytes']:6d} B: "
              f"normal {row['normal_us']:8.1f} us, "
              f"active {row['active_us']:8.1f} us, "
              f"speedup {row['speedup']:.2f}x")
    speedups = [row["speedup"] for row in rows]
    # Monotone decay with vector size...
    assert speedups == sorted(speedups, reverse=True)
    # ...from a strong small-vector win to near-parity at 8 KB.
    assert speedups[0] > 4.0
    assert speedups[-1] < 1.5

"""Shared helpers for the per-figure benchmark modules.

Each benchmark runs one paper artifact once (``rounds=1`` — a run is a
full discrete-event simulation, deterministic by construction), prints
the regenerated figure tables plus the paper-vs-measured comparison,
and asserts the paper's qualitative shape.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.experiments import compare, get
from repro.metrics import breakdown_table, comparison_table, performance_table
from repro.metrics.results import BenchmarkResult


def run_experiment(benchmark, experiment_id: str, scale=None):
    """Benchmark one experiment and print its report."""
    experiment = get(experiment_id)
    chosen = experiment.default_scale if scale is None else scale
    result = benchmark.pedantic(
        experiment.run, kwargs={"scale": chosen}, rounds=1, iterations=1)
    print()
    if isinstance(result, BenchmarkResult):
        print(performance_table(result))
        print()
        print(breakdown_table(result))
    print()
    print(comparison_table(experiment_id, compare(experiment, result)))
    if experiment.notes:
        print(f"note: {experiment.notes}")
    return result

"""Ablation: central output queue vs input queuing (HOL blocking).

Design claim probed: the paper builds on "a central output queue scheme
similar to that in the IBM Switch-3".  Under adversarial fan-in (many
senders sharing one hot output while also carrying cold flows), the
classical input-queued alternative head-of-line blocks: cold packets
wait behind hot ones for an output they do not even want.
"""

from repro.experiments.ablations import ablate_queueing_discipline


def test_ablation_queueing_discipline(benchmark):
    result = benchmark.pedantic(ablate_queueing_discipline, rounds=1,
                                iterations=1)
    print()
    print(f"  output-queued makespan: {result['output_queued_ms']:.3f} ms")
    print(f"  input-queued makespan:  {result['input_queued_ms']:.3f} ms "
          f"({result['hol_penalty']:.2f}x)")
    print(f"  cold-flow latency penalty under HOL blocking: "
          f"{result['cold_latency_ratio']:.1f}x")
    # HOL blocking must visibly hurt both makespan and cold flows.
    assert result["hol_penalty"] > 1.2
    assert result["cold_latency_ratio"] > 3.0

"""Extension: the two-level active I/O system (Related Work, quantified).

Not a paper figure — it quantifies the paper's Related-Work argument:
active disks minimise *fabric* traffic (only survivors enter the SAN),
active switches minimise *host* traffic while staying device-agnostic,
and the two compose ("a two-level active I/O system") splitting the
filtering work.
"""

from conftest import run_experiment


def test_ext_two_level(benchmark):
    rows = run_experiment(benchmark, "ext_two_level")
    print()
    header = f"{'placement':>10} {'exec (ms)':>10} {'host in':>10} {'fabric':>10}"
    print(header)
    for row in rows:
        print(f"{row['placement']:>10} {row['exec_ms']:>10.2f} "
              f"{row['host_in_bytes']:>10,} {row['fabric_bytes']:>10,}")
    by = {row["placement"]: row for row in rows}
    # Everyone is disk-bound; the metrics that differ are byte placement.
    times = [row["exec_ms"] for row in rows]
    assert max(times) / min(times) < 1.10
    assert by["device"]["fabric_bytes"] == by["host"]["fabric_bytes"] // 4
    assert by["switch"]["host_in_bytes"] == by["host"]["host_in_bytes"] // 4

"""Runner-harness and DES hot-path speedups (PR acceptance criteria).

Four measurements:

* the full 9-spec x 4-case paper grid at ``parallel=4`` matches the
  serial pass field-for-field and, on a machine with >= 4 cores, runs
  >= 2.5x faster wall-clock;
* a second, cache-warmed invocation finishes in < 10% of the uncached
  serial time;
* the DES kernel's event-storm throughput (heap slot reuse + inlined
  run loop) via the standard benchmark fixture;
* the tracing gate is free when disabled: the untraced event storm
  runs within 2% of the same storm on an `Environment` that has never
  seen a collector (and a traced storm stays within 2x).

Run with::

    pytest benchmarks/test_runner_speedup.py -s
"""

from __future__ import annotations

import os
import time

from repro.runner.cache import encode_case
from repro.runner.harness import ExperimentRunner
from repro.runner.spec import paper_grid
from repro.sim.core import Environment


def _snapshot(grid):
    """Lossless, order-stable encoding of a whole grid for comparison."""
    return {
        key: {label: encode_case(case)
              for label, case in result.cases.items()}
        for key, result in grid.items()
    }


def test_parallel_grid_matches_serial_and_speeds_up(tmp_path):
    specs = paper_grid()

    start = time.perf_counter()
    serial = ExperimentRunner(parallel=1, cache=None).run_grid(specs)
    serial_s = time.perf_counter() - start

    cache_dir = tmp_path / "grid-cache"
    start = time.perf_counter()
    fanned = ExperimentRunner(parallel=4, cache=cache_dir).run_grid(specs)
    parallel_s = time.perf_counter() - start

    # Bit-identical regardless of worker count or machine.
    assert _snapshot(fanned) == _snapshot(serial)

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    print(f"\nserial {serial_s:.1f}s  parallel=4 {parallel_s:.1f}s  "
          f"speedup {speedup:.2f}x  (cores: {os.cpu_count()})")
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.5

    # Warm-cache rerun restores every cell without simulating.
    start = time.perf_counter()
    cached = ExperimentRunner(parallel=1, cache=cache_dir).run_grid(specs)
    cached_s = time.perf_counter() - start
    assert _snapshot(cached) == _snapshot(serial)
    print(f"cached rerun {cached_s:.2f}s "
          f"({cached_s / serial_s:.1%} of uncached serial)")
    assert cached_s < 0.10 * serial_s


def _event_storm(producers: int, events_each: int) -> int:
    env = Environment()

    def producer(env):
        for _ in range(events_each):
            yield env.timeout(100)

    for _ in range(producers):
        env.process(producer(env))
    env.run()
    return env.now


def test_event_loop_throughput(benchmark):
    """Pure kernel drain: interleaved timeout storms, no app logic."""
    now = benchmark.pedantic(
        _event_storm, args=(16, 20_000), rounds=3, iterations=1)
    assert now == 20_000 * 100


def _traced_event_storm(producers: int, events_each: int) -> int:
    from repro.obs import TraceCollector

    env = Environment()
    env.trace = TraceCollector()

    def producer(env):
        for _ in range(events_each):
            yield env.timeout(100)

    for _ in range(producers):
        env.process(producer(env))
    env.run()
    return len(env.trace)


def test_untraced_run_never_enters_the_traced_loop(monkeypatch):
    """The disabled gate costs one check at run() entry, nothing per
    event: an untraced run must execute the original drain loops only."""
    def boom(self, until):
        raise AssertionError("untraced run entered _run_traced")

    monkeypatch.setattr(Environment, "_run_traced", boom)
    assert _event_storm(4, 1_000) == 1_000 * 100


def test_tracing_gate_overhead():
    """Wall-clock guard for the tracing gate.

    The < 2% "unchanged when disabled" criterion is guaranteed
    structurally — the untraced drain loops are the pre-obs loops,
    byte for byte, and ``test_untraced_run_never_enters_the_traced_loop``
    proves untraced runs execute only them.  This test bounds what
    timing can honestly bound: interleaved untraced samples must agree
    to within scheduler noise, and the traced loop must stay within a
    small constant factor on a pure-kernel storm (real benchmarks,
    dominated by model work, see far less).
    """
    _event_storm(16, 2_000)          # warm-up
    untraced_a, untraced_b, traced = [], [], []
    for _ in range(7):
        for samples, fn in ((untraced_a, _event_storm),
                            (untraced_b, _event_storm),
                            (traced, _traced_event_storm)):
            start = time.perf_counter()
            fn(16, 20_000)
            samples.append(time.perf_counter() - start)

    untraced_s = min(min(untraced_a), min(untraced_b))
    drift = abs(min(untraced_a) - min(untraced_b)) / untraced_s
    overhead = min(traced) / untraced_s
    print(f"\nuntraced {untraced_s * 1e3:.1f}ms "
          f"(run-to-run drift {drift:.1%})  "
          f"traced {min(traced) * 1e3:.1f}ms ({overhead:.2f}x)")
    # Identical code measured twice: anything beyond scheduler noise
    # would mean the gate leaked into the untraced path.
    assert drift < 0.10
    # Heap-occupancy sampling every 64 events keeps the traced loop
    # within a small constant factor even on this pure-kernel storm.
    assert overhead < 2.0

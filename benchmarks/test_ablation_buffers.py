"""Ablation: on-chip data-buffer count.

Design claim probed: "because of the streaming nature of active switch
applications, only a limited number of data buffers are needed" — the
DBA recycles buffers as fast as the (serial) handler drains them, so an
8-input leaf reduction does not slow down even with the minimum of two
buffers.  The 16 of the paper's design are headroom for multi-stream
handlers plus non-active throughput.
"""

from repro.experiments.ablations import ablate_buffer_count


def test_ablation_buffer_count(benchmark):
    rows = benchmark.pedantic(ablate_buffer_count, rounds=1, iterations=1)
    print()
    for row in rows:
        print(f"  {row['buffers']:>3} buffers: {row['latency_us']:8.2f} us")
    by_count = {row["buffers"]: row["latency_us"] for row in rows}
    # More buffers never hurt...
    assert by_count[16] <= by_count[2] * 1.01
    # ...and the streaming model keeps even 2 buffers within 25 % of 16
    # (prompt release is what makes the small buffer pool viable).
    assert by_count[2] <= by_count[16] * 1.25

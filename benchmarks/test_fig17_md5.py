"""Figure 17: MD5 with multiple switch processors.

Paper shape: one switch CPU makes MD5 *slower* than normal (the
partition fails — the switch does all the compute at a quarter of the
host clock); with 4 CPUs and the K-chain algorithm the active system
recovers to 1.50x (no prefetch) and 1.18x (prefetch).
"""

from conftest import run_experiment
from repro.metrics import performance_table


def test_fig17_md5_multicpu(benchmark):
    results = run_experiment(benchmark, "fig17_md5_multicpu")
    for k, result in results.items():
        print()
        print(f"--- {k} switch CPU(s) ---")
        print(performance_table(result))

    # One CPU: a clear slowdown (the paper's failure case).
    assert results[1].active_speedup < 0.7
    assert results[1].active_pref_speedup < 0.7
    # Two CPUs: roughly break-even without prefetch.
    assert 0.7 < results[2].active_speedup < 1.3
    # Four CPUs: a real speedup in both modes (paper: 1.50 / 1.18).
    assert results[4].active_speedup > 1.3
    assert results[4].active_pref_speedup > 1.05
    # More CPUs never hurt.
    assert (results[4].case("active").exec_ps
            <= results[2].case("active").exec_ps
            <= results[1].case("active").exec_ps)

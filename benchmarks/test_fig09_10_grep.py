"""Figures 9/10: Grep.

Paper shape: active ~1.14x over normal (the handler starts searching as
soon as data enters the switch); normal+pref beats active; active+pref
is best; active host utilization ~0; nearly all data filtered (only 16
matching lines return).
"""

from conftest import run_experiment


def test_fig09_10_grep(benchmark):
    result = run_experiment(benchmark, "fig09_10_grep")

    # Active beats normal without prefetch (paper: 1.14x).
    assert 1.05 < result.active_speedup < 1.35
    # Prefetching lets the normal case edge out synchronous active.
    assert (result.case("normal+pref").exec_ps
            <= result.case("active").exec_ps)
    # Active+pref is the overall best case.
    best = min(case.exec_ps for case in result.cases.values())
    assert result.case("active+pref").exec_ps == best
    # Host nearly idle; nearly everything filtered at the switch.
    assert result.utilization("active") < 0.02
    assert result.normalized_traffic("active") < 0.01

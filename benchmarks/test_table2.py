"""Table 2: collective reduction semantics (functional verification).

Distributed Reduce leaves slice i of the combined vector on node i;
Reduce-to-one leaves the whole vector on node 0.  Both are verified
numerically against the oracle inside the experiment.
"""

from conftest import run_experiment


def test_table2(benchmark):
    results = run_experiment(benchmark, "table2")
    assert set(results) == {"reduce-to-one", "distributed"}
    for result in results.values():
        assert result.active
        assert result.latency_ps > 0

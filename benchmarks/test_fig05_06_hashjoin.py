"""Figures 5/6: HashJoin with bit-vector filtering.

Paper shape: active ~1.10x over normal; the two prefetch cases tie
(both disk-bound); the switch filter cuts the host's cache-stall share
(27.6 % -> 16.1 % of execution for the +pref cases); host traffic drops
to roughly the bit-vector pass fraction.
"""

from conftest import run_experiment


def test_fig05_06_hashjoin(benchmark):
    result = run_experiment(benchmark, "fig05_06_hashjoin")

    # Active beats normal without prefetch (paper: 1.10x).
    assert 1.0 < result.active_speedup < 1.45
    # The prefetch cases tie (paper: "performance is the same").
    assert 0.95 < result.active_pref_speedup < 1.08
    # Cache-stall share drops on the host in the active cases.
    npref = result.case("normal+pref").host.stall_frac
    apref = result.case("active+pref").host.stall_frac
    assert apref < npref * 0.75
    assert npref > 0.10
    # Filtered S + pass-through R: traffic well below normal.
    assert result.normalized_traffic("active") < 0.6

"""Table 1: applications and problem sizes."""

from conftest import run_experiment


def test_table1(benchmark):
    rows = run_experiment(benchmark, "table1")
    print()
    width = max(len(name) for name, _ in rows)
    for name, size in rows:
        print(f"  {name:<{width}}  {size}")
    assert len(rows) == 8
    assert dict(rows)["Select"] == 128 * 1024 * 1024

"""Ablation: valid-bit streaming (cut-through handlers) on/off.

Design claim probed: "the switch processor can start processing without
waiting for the data buffer copy to complete" — the cache-line valid
bits let a Grep handler overlap its search with the block's arrival.
Turning the overlap off (store-and-forward handlers) must cost real
time.
"""

from repro.experiments.ablations import ablate_cut_through


def test_ablation_cut_through(benchmark):
    times = benchmark.pedantic(ablate_cut_through, rounds=1, iterations=1)
    print()
    print(f"cut-through:        {times['cut-through'] / 1e9:8.2f} ms")
    print(f"store-and-forward:  {times['store-and-forward'] / 1e9:8.2f} ms")
    print(f"overlap benefit:    {times['overlap benefit']:.3f}x")
    # The overlap must help, and substantially for a streaming handler.
    assert times["overlap benefit"] > 1.10
    assert times["cut-through"] < times["store-and-forward"]

"""Extension: multiprogrammed-server throughput (the conclusion's claim).

Even where the scan itself shows "little or no speedup", the active
system leaves ~99 % of the host idle instead of ~86 %, convertible to
background work at no cost to the scan.
"""

from conftest import run_experiment


def test_ext_multiprogramming(benchmark):
    rows = run_experiment(benchmark, "ext_multiprogramming")
    print()
    print(f"{'case':>12} {'scan (ms)':>10} {'idle':>7} {'bg ops/ms':>10}")
    for row in rows:
        print(f"{row['case']:>12} {row['scan_ms']:>10.2f} "
              f"{row['host_idle_frac']:>7.1%} {row['bg_ops_per_ms']:>10.1f}")
    by_case = {row["case"]: row for row in rows}
    # The scan does not slow down...
    assert (by_case["active+pref"]["scan_ms"]
            <= by_case["normal+pref"]["scan_ms"] * 1.02)
    # ...while background throughput rises.
    assert (by_case["active+pref"]["bg_ops_per_ms"]
            > by_case["normal+pref"]["bg_ops_per_ms"] * 1.10)
    # The active host is nearly entirely available.
    assert by_case["active+pref"]["host_idle_frac"] > 0.95

"""Micro-benchmarks for the memory-hierarchy hot path.

Times the layer in isolation — scalar cache access, batched range
walks, strided record scans, and the per-line reference path — so a
change too small to move grid cells is still measurable.  Standalone
(no pytest-benchmark dependency)::

    PYTHONPATH=src python benchmarks/perf/bench_cache_hotpath.py

Deterministic work, wall-clock measured with ``time.perf_counter``;
compare runs on the same machine only.
"""

from __future__ import annotations

import time

from repro.mem import Cache, CacheConfig
from repro.mem.hierarchy import build_host_hierarchy
from repro.sim.units import Clock

#: Bytes of sequential scan per measurement (64 K lines at 32 B).
SCAN_BYTES = 2 * 1024 * 1024
#: Records per strided measurement (the select/hashjoin pattern).
RECORDS = 20_000
RECORD_BYTES = 100


def _timed(label: str, fn, repeat: int = 3) -> float:
    best = min(_once(fn) for _ in range(repeat))
    print(f"{label:<44} {best * 1e3:8.2f} ms")
    return best


def _once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def bench_cache_scalar_access():
    cache = Cache(CacheConfig("bench-l1", 32 * 1024, 32, 2))
    access = cache.access

    def run():
        for addr in range(0, SCAN_BYTES, 32):
            access(addr)
    return run


def bench_cache_int_access():
    cache = Cache(CacheConfig("bench-l1", 32 * 1024, 32, 2))
    _access = cache._access

    def run():
        for addr in range(0, SCAN_BYTES, 32):
            _access(addr)
    return run


def bench_cache_access_range():
    cache = Cache(CacheConfig("bench-l1", 32 * 1024, 32, 2))

    def run():
        for base in range(0, SCAN_BYTES, 64 * 1024):
            cache.access_range(base, 64 * 1024)
    return run


def bench_hierarchy_load_range(batched: bool):
    hier = build_host_hierarchy(Clock(2e9), batched=batched)

    def run():
        for base in range(0, SCAN_BYTES, 64 * 1024):
            hier.load_range(base, 64 * 1024)
    return run


def bench_hierarchy_load_stride(batched: bool):
    hier = build_host_hierarchy(Clock(2e9), batched=batched)

    def run():
        hier.load_stride(0, RECORD_BYTES, RECORDS)
    return run


def main() -> None:
    print(f"scan = {SCAN_BYTES // 1024} KB sequential, "
          f"stride = {RECORDS} x {RECORD_BYTES} B records\n")
    _timed("Cache.access (public, per line)", bench_cache_scalar_access())
    _timed("Cache._access (int-coded, per line)", bench_cache_int_access())
    _timed("Cache.access_range (batched)", bench_cache_access_range())
    perline = _timed("hierarchy load_range (per-line path)",
                     bench_hierarchy_load_range(batched=False))
    batched = _timed("hierarchy load_range (batched path)",
                     bench_hierarchy_load_range(batched=True))
    print(f"{'-> load_range speedup':<44} {perline / batched:7.2f} x")
    perline = _timed("hierarchy load_stride (per-line path)",
                     bench_hierarchy_load_stride(batched=False))
    batched = _timed("hierarchy load_stride (batched path)",
                     bench_hierarchy_load_stride(batched=True))
    print(f"{'-> load_stride speedup':<44} {perline / batched:7.2f} x")


if __name__ == "__main__":
    main()

"""Ablation: polling vs interrupt-driven receives.

Design claim probed: "The message receiver uses polling instead of
interrupts, which favors the normal case since active switches can
eliminate most of the interrupts."  With interrupt-driven receives the
MST baseline pays the interrupt path on every round while the active
system pays it once — the speedup widens, confirming polling is the
conservative choice.
"""

from repro.experiments.ablations import ablate_receive_discipline


def test_ablation_receive_discipline(benchmark):
    results = benchmark.pedantic(ablate_receive_discipline, rounds=1,
                                 iterations=1)
    print()
    for mode, row in results.items():
        print(f"  {mode:>10}: normal {row['normal_us']:7.1f} us, "
              f"active {row['active_us']:6.1f} us, "
              f"speedup {row['speedup']:.2f}x")
    # Interrupts hurt the round-heavy baseline more than the active path.
    assert results["interrupt"]["speedup"] > results["polling"]["speedup"]
    assert (results["interrupt"]["normal_us"]
            > results["polling"]["normal_us"] * 1.2)

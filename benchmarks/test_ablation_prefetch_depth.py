"""Ablation: outstanding I/O request count.

Design claim probed: the paper evaluates exactly two configurations of
the I/O software — synchronous and "two outstanding I/O requests" —
implying depth 2 is where the benefit saturates.  Sweeping 1-4 shows
one read-ahead request suffices to keep the disk streaming; more
outstanding requests buy nothing for a sequential scan.
"""

from repro.experiments.ablations import ablate_prefetch_depth


def test_ablation_prefetch_depth(benchmark):
    rows = benchmark.pedantic(ablate_prefetch_depth, rounds=1, iterations=1)
    print()
    for row in rows:
        print(f"  depth {row['depth']}: {row['exec_ms']:8.2f} ms, "
              f"disk busy {row['disk_utilization']:.1%}")
    by_depth = {row["depth"]: row["exec_ms"] for row in rows}
    # Depth 2 clearly beats synchronous...
    assert by_depth[2] < by_depth[1] * 0.95
    # ...and deeper queues add nothing for a sequential stream.
    assert abs(by_depth[4] - by_depth[2]) / by_depth[2] < 0.02
    # Because depth 2 already saturates the spindles.
    utils = {row["depth"]: row["disk_utilization"] for row in rows}
    assert utils[1] < 0.95
    assert utils[2] > 0.95

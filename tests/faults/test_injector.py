"""Unit tests for fault plans and the deterministic injector."""

import pytest

from repro.faults import (
    DiskFaults,
    FaultInjector,
    FaultPlan,
    HandlerFaults,
    LinkFaults,
    ScsiFaults,
)


# ----------------------------------------------------------------------
# Plan validation
# ----------------------------------------------------------------------
def test_default_plan_injects_nothing():
    assert not FaultPlan().enabled
    assert not LinkFaults().enabled
    assert not DiskFaults().enabled
    assert not ScsiFaults().enabled
    assert not HandlerFaults().enabled


def test_any_knob_enables_the_plan():
    assert FaultPlan(link=LinkFaults(drop_rate=0.1)).enabled
    assert FaultPlan(disk=DiskFaults(error_requests=(0,))).enabled
    assert FaultPlan(scsi=ScsiFaults(error_rate=0.1)).enabled
    assert FaultPlan(handler=HandlerFaults(crash_invocations=((1, 0),))).enabled


def test_rate_validation():
    with pytest.raises(ValueError):
        LinkFaults(drop_rate=1.5)
    with pytest.raises(ValueError):
        LinkFaults(drop_rate=0.7, bit_error_rate=0.7)
    with pytest.raises(ValueError):
        LinkFaults(backoff_factor=0.5)
    with pytest.raises(ValueError):
        DiskFaults(read_error_rate=-0.1)
    with pytest.raises(ValueError):
        ScsiFaults(error_rate=2.0)
    with pytest.raises(ValueError):
        HandlerFaults(quarantine_threshold=0)
    with pytest.raises(ValueError):
        HandlerFaults(crash_invocations=((1, -1),))


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def _chatter(injector, n=40):
    """A fixed interaction script touching every fault family."""
    outcomes = []
    for i in range(n):
        outcomes.append(injector.link_outcome("a->b"))
        outcomes.append(injector.link_outcome("b->a"))
        outcomes.append(injector.disk_error("d0", write=i % 2 == 0))
        outcomes.append(injector.scsi_error("bus"))
        outcomes.append(injector.handler_crash("sw0", 1, i))
        outcomes.append(injector.atb_corruption("sw0"))
    return outcomes


def _noisy_plan():
    return FaultPlan(
        link=LinkFaults(drop_rate=0.2, bit_error_rate=0.1),
        disk=DiskFaults(read_error_rate=0.3, write_error_rate=0.2),
        scsi=ScsiFaults(error_rate=0.2),
        handler=HandlerFaults(crash_rate=0.2, atb_corruption_rate=0.1),
    )


def test_same_seed_reproduces_schedule_and_fingerprint():
    a = FaultInjector(_noisy_plan(), seed=11)
    b = FaultInjector(_noisy_plan(), seed=11)
    assert _chatter(a) == _chatter(b)
    assert a.fingerprint() == b.fingerprint()
    assert a.injected == b.injected


def test_different_seeds_differ():
    a = FaultInjector(_noisy_plan(), seed=11)
    b = FaultInjector(_noisy_plan(), seed=12)
    assert _chatter(a) != _chatter(b)
    assert a.fingerprint() != b.fingerprint()


def test_component_streams_are_independent():
    """Interleaving another component's draws must not perturb a stream."""
    alone = FaultInjector(_noisy_plan(), seed=5)
    outcomes_alone = [alone.link_outcome("a->b") for _ in range(30)]

    mixed = FaultInjector(_noisy_plan(), seed=5)
    outcomes_mixed = []
    for i in range(30):
        # Other components drawing in between must not matter.
        mixed.disk_error("d0", write=False)
        mixed.scsi_error("bus")
        outcomes_mixed.append(mixed.link_outcome("a->b"))
        mixed.atb_corruption("sw0")
    assert outcomes_alone == outcomes_mixed


def test_plan_seed_overrides_constructor_seed():
    plan = FaultPlan(link=LinkFaults(drop_rate=0.5), seed=99)
    injector = FaultInjector(plan, seed=1)
    assert injector.seed == 99
    reference = FaultInjector(
        FaultPlan(link=LinkFaults(drop_rate=0.5)), seed=99)
    assert ([injector.link_outcome("l") for _ in range(20)]
            == [reference.link_outcome("l") for _ in range(20)])


# ----------------------------------------------------------------------
# Scripted (deterministic) faults
# ----------------------------------------------------------------------
def test_scripted_link_attempts():
    plan = FaultPlan(link=LinkFaults(drop_attempts=(0, 2),
                                     corrupt_attempts=(1,)))
    injector = FaultInjector(plan, seed=0)
    assert [injector.link_outcome("l") for _ in range(4)] == [
        "drop", "corrupt", "drop", "ok"]
    assert injector.injected["link_drops"] == 2
    assert injector.injected["link_corruptions"] == 1


def test_scripted_attempts_are_per_link():
    plan = FaultPlan(link=LinkFaults(drop_attempts=(0,)))
    injector = FaultInjector(plan, seed=0)
    assert injector.link_outcome("x") == "drop"
    assert injector.link_outcome("y") == "drop"
    assert injector.link_outcome("x") == "ok"


def test_scripted_disk_requests():
    plan = FaultPlan(disk=DiskFaults(error_requests=(1,)))
    injector = FaultInjector(plan, seed=0)
    assert [injector.disk_error("d", False) for _ in range(3)] == [
        False, True, False]


def test_scripted_handler_crashes():
    plan = FaultPlan(handler=HandlerFaults(crash_invocations=((7, 1),)))
    injector = FaultInjector(plan, seed=0)
    assert not injector.handler_crash("sw0", 7, 0)
    assert injector.handler_crash("sw0", 7, 1)
    assert not injector.handler_crash("sw0", 8, 1)
    assert injector.injected["handler_crashes"] == 1


# ----------------------------------------------------------------------
# Accounting and context
# ----------------------------------------------------------------------
def test_snapshot_reports_only_nonzero_counters():
    plan = FaultPlan(link=LinkFaults(drop_attempts=(0,)))
    injector = FaultInjector(plan, seed=0)
    assert injector.snapshot() == {}
    injector.link_outcome("l")
    assert injector.snapshot() == {"injected_link_drops": 1.0}
    assert injector.total_injected == 1


def test_failure_context_mentions_seed_and_injections():
    injector = FaultInjector(
        FaultPlan(link=LinkFaults(drop_attempts=(0,))), seed=42)
    context = injector.failure_context()
    assert "seed=42" in context["fault-injector"]
    assert "nothing" in context["fault-injector"]
    injector.link_outcome("l")
    assert "link_drops" in injector.failure_context()["fault-injector"]


def test_fingerprint_ignores_ok_decisions():
    a = FaultInjector(FaultPlan(link=LinkFaults(drop_attempts=(5,))), seed=0)
    b = FaultInjector(FaultPlan(link=LinkFaults(drop_attempts=(5,))), seed=0)
    for _ in range(6):
        a.link_outcome("l")
    for _ in range(3):
        b.link_outcome("l")
    assert a.fingerprint() != b.fingerprint()  # a reached the scripted drop
    for _ in range(3):
        b.link_outcome("l")
    assert a.fingerprint() == b.fingerprint()

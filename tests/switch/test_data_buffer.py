"""Unit tests for data buffers, valid bits, and the DBA."""

import pytest

from repro.sim import Environment
from repro.sim.units import ns
from repro.switch import (
    BUFFER_BYTES,
    NUM_BUFFERS,
    BufferError,
    DataBuffer,
    DataBufferPool,
)


def test_paper_parameters():
    assert NUM_BUFFERS == 16
    assert BUFFER_BYTES == 512


def test_fill_sets_valid_progressively():
    env = Environment()
    buffer = DataBuffer(env, 0)
    env.process(buffer.fill(512, bandwidth_bytes_per_s=1e9))
    env.run(until=ns(64))
    assert buffer.valid_bytes == 64
    env.run(until=ns(512))
    assert buffer.valid_bytes == 512


def test_wait_valid_blocks_until_line_arrives():
    env = Environment()
    buffer = DataBuffer(env, 0)

    def reader(env):
        yield from buffer.wait_valid(128)
        return env.now

    env.process(buffer.fill(512, bandwidth_bytes_per_s=1e9))
    proc = env.process(reader(env))
    # 128 bytes = two 64-byte lines at 64 ns each.
    assert env.run(until=proc) == ns(128)


def test_wait_valid_returns_immediately_when_ready():
    env = Environment()
    buffer = DataBuffer(env, 0)
    buffer.mark_all_valid()

    def reader(env):
        yield from buffer.wait_valid(512)
        return env.now

    proc = env.process(reader(env))
    assert env.run(until=proc) == 0


def test_reader_overlaps_fill_cut_through_style():
    """A reader consuming line by line tracks the fill front."""
    env = Environment()
    buffer = DataBuffer(env, 0)
    times = []

    def reader(env):
        for end in range(64, 513, 64):
            yield from buffer.wait_valid(end)
            times.append(env.now)

    env.process(buffer.fill(512, bandwidth_bytes_per_s=1e9))
    env.process(reader(env))
    env.run()
    assert times == [ns(64 * i) for i in range(1, 9)]


def test_fill_oversize_rejected():
    env = Environment()
    buffer = DataBuffer(env, 0)
    with pytest.raises(BufferError):
        list(buffer.fill(513, 1e9))


def test_wait_beyond_buffer_rejected():
    env = Environment()
    buffer = DataBuffer(env, 0)
    with pytest.raises(BufferError):
        list(buffer.wait_valid(513))


def test_reset_clears_state():
    env = Environment()
    buffer = DataBuffer(env, 0)
    buffer.mark_all_valid()
    buffer.payload = "x"
    buffer.reset()
    assert buffer.valid_bytes == 0
    assert buffer.payload is None


def test_pool_allocate_release_cycle():
    env = Environment()
    pool = DataBufferPool(env)

    def worker(env):
        buffer = yield from pool.allocate()
        assert pool.in_use == 1
        pool.release(buffer)
        return pool.in_use

    proc = env.process(worker(env))
    assert env.run(until=proc) == 0


def test_pool_blocks_when_exhausted():
    env = Environment()
    pool = DataBufferPool(env, count=2)
    grabbed = []
    release_time = ns(1000)

    def hog(env):
        a = yield from pool.allocate()
        b = yield from pool.allocate()
        yield env.timeout(release_time)
        pool.release(a)
        pool.release(b)

    def latecomer(env):
        yield env.timeout(ns(10))  # let the hog claim both buffers first
        buffer = yield from pool.allocate()
        grabbed.append(env.now)
        pool.release(buffer)

    env.process(hog(env))
    env.process(latecomer(env))
    env.run()
    assert grabbed == [release_time]


def test_pool_double_free_rejected():
    env = Environment()
    pool = DataBufferPool(env)

    def worker(env):
        buffer = yield from pool.allocate()
        pool.release(buffer)
        pool.release(buffer)

    env.process(worker(env))
    with pytest.raises(BufferError):
        env.run()


def test_pool_stats_track_peak():
    env = Environment()
    pool = DataBufferPool(env, count=4)

    def worker(env):
        buffers = []
        for _ in range(3):
            buffers.append((yield from pool.allocate()))
        for buffer in buffers:
            pool.release(buffer)

    env.process(worker(env))
    env.run()
    assert pool.stats.peak_in_use == 3
    assert pool.stats.allocations == 3
    assert pool.stats.frees == 3


def test_pool_minimum_two_buffers():
    env = Environment()
    with pytest.raises(ValueError):
        DataBufferPool(env, count=1)

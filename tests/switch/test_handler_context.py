"""Direct unit tests for the HandlerContext programming model."""

import pytest

from repro.net import ActiveHeader, ChannelAdapter, Link, Message
from repro.sim import Environment
from repro.switch import ActiveSwitch


def run_handler(handler, payload=None, size=512, address=0x0, env=None):
    """Wire a minimal fabric, run one active message through ``handler``."""
    env = env or Environment()
    switch = ActiveSwitch(env, "sw0")
    adapters = {}
    for port, name in enumerate(("src", "dst")):
        to_switch = Link(env, f"{name}->sw0")
        from_switch = Link(env, f"sw0->{name}")
        adapter = ChannelAdapter(env, name)
        adapter.attach(tx_link=to_switch, rx_link=from_switch)
        switch.connect(port, tx_link=from_switch, rx_link=to_switch)
        switch.routing.add(name, port)
        adapters[name] = adapter
    switch.register_handler(1, handler)

    def sender(env):
        yield from adapters["src"].transmit(Message(
            "src", "sw0", size_bytes=size,
            active=ActiveHeader(handler_id=1, address=address),
            payload=payload))

    env.process(sender(env))
    env.run()
    return env, switch, adapters


def test_context_exposes_message_metadata():
    seen = {}

    def handler(ctx):
        seen["arg"] = ctx.arg
        seen["address"] = ctx.address
        seen["size"] = ctx.message.size_bytes
        seen["src"] = ctx.message.src
        yield from ctx.deallocate(ctx.address + 512)

    run_handler(handler, payload={"k": 1}, size=300, address=0x2000)
    assert seen == {"arg": {"k": 1}, "address": 0x2000, "size": 300,
                    "src": "src"}


def test_local_load_store_charge_cache_stalls():
    stalls = {}

    def handler(ctx):
        yield from ctx.local_load(0x100000)   # cold: miss to switch RDRAM
        yield from ctx.local_load(0x100000)   # warm
        yield from ctx.local_store(0x200000)  # cold store
        stalls["total"] = ctx.cpu.hierarchy.total_stall_ps
        yield from ctx.deallocate(ctx.address + 512)

    env, switch, _ = run_handler(handler)
    assert stalls["total"] > 0
    cpu = switch.cpus[0]
    assert cpu.hierarchy.l1d.stats.misses >= 2
    assert cpu.hierarchy.l1d.stats.hits >= 1


def test_local_scan_walks_lines():
    def handler(ctx):
        yield from ctx.local_scan(0x0, 256)  # 8 x 32 B lines
        yield from ctx.deallocate(ctx.address + 512)

    env, switch, _ = run_handler(handler)
    assert switch.cpus[0].hierarchy.l1d.stats.accesses >= 8


def test_payload_at_returns_mapped_payload():
    seen = {}

    def handler(ctx):
        yield from ctx.read(ctx.address, 64)
        seen["payload"] = ctx.payload_at(ctx.address)
        seen["unmapped"] = ctx.payload_at(0xDEAD000)
        yield from ctx.deallocate(ctx.address + 512)

    run_handler(handler, payload=b"bytes", address=0x1000)
    assert seen["payload"] == b"bytes"
    assert seen["unmapped"] is None


def test_kernel_state_default():
    seen = {}

    def handler(ctx):
        seen["missing"] = ctx.kernel_state("nope", default=7)
        ctx.set_kernel_state("written", 11)
        yield from ctx.deallocate(ctx.address + 512)

    env, switch, _ = run_handler(handler)
    assert seen["missing"] == 7
    assert switch.kernel_state["written"] == 11


def test_compute_charges_switch_cycles():
    def handler(ctx):
        yield from ctx.compute(cycles=1234)
        yield from ctx.deallocate(ctx.address + 512)

    env, switch, _ = run_handler(handler)
    assert switch.cpus[0].accounting.busy_ps >= 1234 * 2000


def test_send_to_unroutable_destination_raises():
    from repro.net.routing import RoutingError

    def handler(ctx):
        yield from ctx.send("nowhere", 64)

    with pytest.raises(RoutingError):
        run_handler(handler)

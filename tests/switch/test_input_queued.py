"""Unit tests for the input-queued switch variant."""

import pytest

from repro.net import ChannelAdapter, Link, Message, Packet
from repro.net.packet import ActiveHeader
from repro.sim import Environment
from repro.sim.units import us
from repro.switch import InputQueuedConfig, InputQueuedSwitch, SwitchConfig
from repro.switch.base import RoutingToSwitchError


def star(env, num_endpoints=3):
    switch = InputQueuedSwitch(env, "sw0",
                               SwitchConfig(num_ports=num_endpoints))
    adapters = []
    for i in range(num_endpoints):
        name = f"ep{i}"
        to_switch = Link(env, f"{name}->sw0")
        from_switch = Link(env, f"sw0->{name}")
        adapter = ChannelAdapter(env, name)
        adapter.attach(tx_link=to_switch, rx_link=from_switch)
        switch.connect(i, tx_link=from_switch, rx_link=to_switch)
        switch.routing.add(name, i)
        adapters.append(adapter)
    return switch, adapters


def test_basic_forwarding():
    env = Environment()
    switch, adapters = star(env)

    def sender(env):
        yield from adapters[0].transmit(Message("ep0", "ep1", 256))

    def receiver(env):
        return (yield adapters[1].recv_queue.get())

    env.process(sender(env))
    proc = env.process(receiver(env))
    message = env.run(until=proc)
    assert message.size_bytes == 256
    assert switch.stats.forwarded == 1


def test_in_order_delivery_per_flow():
    env = Environment()
    switch, adapters = star(env)
    received = []

    def sender(env):
        for i in range(10):
            yield from adapters[0].transmit(
                Message("ep0", "ep1", 128, payload=i))

    def receiver(env):
        for _ in range(10):
            message = yield adapters[1].recv_queue.get()
            received.append(message.payload)

    env.process(sender(env))
    proc = env.process(receiver(env))
    env.run(until=proc)
    assert received == list(range(10))


def test_hol_blocking_delays_cold_flow():
    """A cold packet behind a hot one waits for the hot output's grant
    even though its own output is idle."""
    env = Environment()
    switch, adapters = star(env, num_endpoints=4)
    arrivals = {}

    def hog(env):
        # ep1 saturates ep0's output with a burst.
        for _ in range(8):
            yield from adapters[1].transmit(Message("ep1", "ep0", 512))

    def mixed(env):
        # ep2 sends one hot packet, then one cold packet to ep3.
        yield from adapters[2].transmit(Message("ep2", "ep0", 512))
        yield from adapters[2].transmit(Message("ep2", "ep3", 512,
                                                payload=env.now))

    def cold_receiver(env):
        message = yield adapters[3].recv_queue.get()
        arrivals["cold"] = env.now - message.payload

    env.process(hog(env))
    env.process(mixed(env))
    proc = env.process(cold_receiver(env))
    env.run(until=proc)
    # Unblocked, the cold hop takes ~1.2 us; behind the hot queue it
    # must wait for at least one full hot transmission more.
    assert arrivals["cold"] > us(1.5)


def test_active_packets_rejected():
    env = Environment()
    switch, adapters = star(env)

    def sender(env):
        packet = Packet("ep0", "sw0", payload_bytes=64,
                        active=ActiveHeader(handler_id=1, address=0))
        yield from adapters[0]._tx_link.send(packet)

    env.process(sender(env))
    with pytest.raises(RoutingToSwitchError):
        env.run()


def test_config_validation():
    with pytest.raises(ValueError):
        InputQueuedConfig(input_queue_packets=0)


def test_wiring_validation():
    env = Environment()
    switch = InputQueuedSwitch(env, "sw0")
    switch.connect(0, Link(env, "a"), Link(env, "b"))
    with pytest.raises(ValueError):
        switch.connect(0, Link(env, "c"), Link(env, "d"))
    with pytest.raises(ValueError):
        switch.connect(99, Link(env, "e"), Link(env, "f"))


def test_no_loss_under_saturation():
    env = Environment()
    switch, adapters = star(env, num_endpoints=4)
    received = []

    def sender(env, src):
        for i in range(20):
            yield from src.transmit(Message(src.node_id, "ep0", 256,
                                            payload=(src.node_id, i)))

    def receiver(env):
        for _ in range(60):
            message = yield adapters[0].recv_queue.get()
            received.append(message.payload)

    for adapter in adapters[1:]:
        env.process(sender(env, adapter))
    proc = env.process(receiver(env))
    env.run(until=proc)
    assert len(received) == 60
    assert len(set(received)) == 60  # no duplicates either

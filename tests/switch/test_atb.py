"""Unit tests for the address translation buffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.switch import ATBError, AddressTranslationBuffer, DataBuffer


def make_buffer(env=None, buffer_id=0):
    return DataBuffer(env or Environment(), buffer_id)


def test_map_and_translate():
    atb = AddressTranslationBuffer()
    buffer = make_buffer()
    atb.map(0x1000, buffer)
    got, offset = atb.translate(0x1000)
    assert got is buffer
    assert offset == 0


def test_translate_offset_within_region():
    atb = AddressTranslationBuffer()
    buffer = make_buffer()
    atb.map(0x1000, buffer)
    _, offset = atb.translate(0x11FF)
    assert offset == 0x1FF


def test_translate_unmapped_raises():
    atb = AddressTranslationBuffer()
    with pytest.raises(ATBError):
        atb.translate(0x2000)
    assert atb.stats.misses == 1


def test_lookup_returns_none_on_miss():
    atb = AddressTranslationBuffer()
    assert atb.lookup(0x0) is None


def test_direct_mapped_conflict_detected():
    atb = AddressTranslationBuffer()
    atb.map(0x0000, make_buffer(buffer_id=0))
    # 16 entries x 512 B regions: address 16*512 maps to entry 0 again.
    with pytest.raises(ATBError):
        atb.map(16 * 512, make_buffer(buffer_id=1))
    assert atb.stats.conflicts == 1


def test_sequential_stream_fills_all_entries():
    atb = AddressTranslationBuffer()
    for i in range(16):
        atb.map(i * 512, make_buffer(buffer_id=i))
    assert atb.mapped_count() == 16


def test_release_below_frees_only_lower_regions():
    atb = AddressTranslationBuffer()
    buffers = [make_buffer(buffer_id=i) for i in range(4)]
    for i, buffer in enumerate(buffers):
        atb.map(i * 512, buffer)
    released = atb.release_below(2 * 512)
    assert sorted(b.buffer_id for b in released) == [0, 1]
    assert not atb.is_mapped(0)
    assert atb.is_mapped(2 * 512)


def test_release_below_partial_region_not_freed():
    atb = AddressTranslationBuffer()
    atb.map(0, make_buffer())
    # End address inside the region: the region is NOT entirely below it.
    assert atb.release_below(511) == []
    assert atb.release_below(512) != []


def test_clear_returns_everything():
    atb = AddressTranslationBuffer()
    atb.map(0, make_buffer(buffer_id=0))
    atb.map(512, make_buffer(buffer_id=1))
    cleared = atb.clear()
    assert len(cleared) == 2
    assert atb.mapped_count() == 0


def test_remap_after_release():
    atb = AddressTranslationBuffer()
    atb.map(0, make_buffer(buffer_id=0))
    atb.release_below(512)
    atb.map(16 * 512, make_buffer(buffer_id=1))  # same entry, new region
    buffer, offset = atb.translate(16 * 512 + 8)
    assert buffer.buffer_id == 1
    assert offset == 8


def test_constructor_validation():
    with pytest.raises(ValueError):
        AddressTranslationBuffer(num_entries=0)
    with pytest.raises(ValueError):
        AddressTranslationBuffer(region_bytes=100)


@given(base=st.integers(min_value=0, max_value=(1 << 20) // 512 - 1),
       offset=st.integers(min_value=0, max_value=511))
@settings(max_examples=100, deadline=None)
def test_property_translate_recovers_offset(base, offset):
    """For any mapped region, translate(base*512+off) yields exactly off."""
    atb = AddressTranslationBuffer()
    buffer = make_buffer()
    address = base * 512
    atb.map(address, buffer)
    got, got_offset = atb.translate(address + offset)
    assert got is buffer
    assert got_offset == offset


@given(regions=st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                        max_size=16, unique=True))
@settings(max_examples=50, deadline=None)
def test_property_release_below_is_exact(regions):
    """release_below(k*512) frees exactly the regions < k, if mappable."""
    atb = AddressTranslationBuffer()
    mapped = {}
    for region in regions:
        buffer = make_buffer(buffer_id=region)
        try:
            atb.map(region * 512, buffer)
            mapped[region] = buffer
        except ATBError:
            pass  # direct-mapped conflict: skip
    if not mapped:
        return
    cutoff = max(mapped) // 2 + 1
    released = atb.release_below(cutoff * 512)
    expected = {r for r in mapped if r < cutoff}
    assert {b.buffer_id for b in released} == expected

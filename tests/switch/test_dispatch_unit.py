"""Unit tests for the jump table, CPU scheduler, and send unit stats."""

import pytest

from repro.cpu import SwitchCPU
from repro.net import ActiveHeader, ChannelAdapter, Link, Message
from repro.sim import Environment
from repro.switch import ActiveSwitch, ActiveSwitchConfig, DispatchError, JumpTable
from repro.switch.dispatch import CpuScheduler


# ----------------------------------------------------------------------
# Jump table
# ----------------------------------------------------------------------
def test_jump_table_register_and_lookup():
    table = JumpTable()
    handler = lambda ctx: None
    table.register(5, handler)
    assert table.lookup(5) is handler
    assert 5 in table
    assert len(table) == 1


def test_jump_table_rejects_out_of_range_ids():
    table = JumpTable()
    with pytest.raises(DispatchError):
        table.register(64, lambda ctx: None)  # 6-bit field
    with pytest.raises(DispatchError):
        table.register(-1, lambda ctx: None)


def test_jump_table_rejects_duplicates():
    table = JumpTable()
    table.register(1, lambda ctx: None)
    with pytest.raises(DispatchError):
        table.register(1, lambda ctx: None)


def test_jump_table_unknown_lookup_raises():
    with pytest.raises(DispatchError):
        JumpTable().lookup(9)


# ----------------------------------------------------------------------
# CPU scheduler
# ----------------------------------------------------------------------
def make_scheduler(env, count=2):
    cpus = [SwitchCPU(env, cpu_id=i) for i in range(count)]
    return CpuScheduler(env, cpus), cpus


def test_scheduler_pick_prefers_idle_cpu():
    env = Environment()
    scheduler, cpus = make_scheduler(env)

    def busy_gen(cpu):
        yield from cpu.work(busy_cycles=100_000)

    first = scheduler.pick()
    scheduler.dispatch_on(first, lambda cpu: busy_gen(cpu))
    second = scheduler.pick()
    assert second is not first


def test_scheduler_pick_respects_pin():
    env = Environment()
    scheduler, cpus = make_scheduler(env, count=4)
    assert scheduler.pick(cpu_id=3) is cpus[3]
    with pytest.raises(DispatchError):
        scheduler.pick(cpu_id=4)


def test_scheduler_counts_queued_waits():
    env = Environment()
    scheduler, cpus = make_scheduler(env, count=1)

    def slow(cpu):
        yield from cpu.work(busy_cycles=50_000)

    scheduler.dispatch_on(cpus[0], slow)
    scheduler.dispatch_on(cpus[0], slow)
    env.run()
    assert scheduler.stats.dispatched == 2
    assert scheduler.stats.queued_waits == 1


def test_scheduler_completion_event_carries_result():
    env = Environment()
    scheduler, cpus = make_scheduler(env)

    def compute(cpu):
        yield from cpu.work(busy_cycles=10)
        return 99

    done = scheduler.dispatch(lambda cpu: compute(cpu))
    assert env.run(until=done) == 99


def test_scheduler_requires_cpus():
    env = Environment()
    with pytest.raises(ValueError):
        CpuScheduler(env, [])


# ----------------------------------------------------------------------
# Send unit stats
# ----------------------------------------------------------------------
def test_send_unit_counts_messages_and_packets():
    env = Environment()
    switch = ActiveSwitch(env, "sw0")
    to_switch = Link(env, "ep0->sw0")
    from_switch = Link(env, "sw0->ep0")
    adapter = ChannelAdapter(env, "ep0")
    adapter.attach(tx_link=to_switch, rx_link=from_switch)
    switch.connect(0, tx_link=from_switch, rx_link=to_switch)
    switch.routing.add("ep0", 0)

    def chatty_handler(ctx):
        yield from ctx.send("ep0", 1200)  # 3 packets
        yield from ctx.deallocate(ctx.address + 512)

    switch.register_handler(1, chatty_handler)

    def sender(env):
        yield from adapter.transmit(Message(
            "ep0", "sw0", size_bytes=64,
            active=ActiveHeader(handler_id=1, address=0)))

    env.process(sender(env))
    env.run()
    assert switch.send_unit.stats.messages == 1
    assert switch.send_unit.stats.packets == 3
    assert switch.send_unit.stats.bytes == 1200
    # Compose buffers recycled.
    assert switch.buffers.in_use == 0


def test_atb_stats_track_translations():
    env = Environment()
    switch = ActiveSwitch(env, "sw0")
    to_switch = Link(env, "ep0->sw0")
    from_switch = Link(env, "sw0->ep0")
    adapter = ChannelAdapter(env, "ep0")
    adapter.attach(tx_link=to_switch, rx_link=from_switch)
    switch.connect(0, tx_link=from_switch, rx_link=to_switch)
    switch.routing.add("ep0", 0)

    def reader(ctx):
        yield from ctx.read(ctx.address, 512)
        yield from ctx.deallocate(ctx.address + 512)

    switch.register_handler(1, reader)

    def sender(env):
        yield from adapter.transmit(Message(
            "ep0", "sw0", size_bytes=512,
            active=ActiveHeader(handler_id=1, address=0)))

    env.process(sender(env))
    env.run()
    atb = switch.atb_for(switch.cpus[0])
    assert atb.stats.translations >= 1
    assert atb.stats.misses == 0

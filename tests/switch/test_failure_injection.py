"""Failure-injection tests: how the active switch behaves under misuse.

The protection model of Section 2 ("for protection reasons, we assume
there is a small run-time kernel...") implies handler faults must be
containable and resource misuse detectable; these tests pin down the
library's failure semantics.
"""

import pytest

from repro.net import ActiveHeader, ChannelAdapter, Link, Message
from repro.sim import DeadlockError, Environment
from repro.sim.units import us
from repro.switch import (
    ATBError,
    ActiveSwitch,
    ActiveSwitchConfig,
    BufferError,
)


def build_fabric(env, num_buffers=16):
    switch = ActiveSwitch(
        env, "sw0",
        active_config=ActiveSwitchConfig(num_buffers=num_buffers))
    adapters = []
    for i in range(2):
        name = f"ep{i}"
        to_switch = Link(env, f"{name}->sw0")
        from_switch = Link(env, f"sw0->{name}")
        adapter = ChannelAdapter(env, name)
        adapter.attach(tx_link=to_switch, rx_link=from_switch)
        switch.connect(i, tx_link=from_switch, rx_link=to_switch)
        switch.routing.add(name, i)
        adapters.append(adapter)
    return switch, adapters


def send_active(adapter, handler_id, address, nbytes=64, cpu_id=None):
    def sender(env):
        yield from adapter.transmit(Message(
            "ep0", "sw0", size_bytes=nbytes,
            active=ActiveHeader(handler_id=handler_id, address=address,
                                cpu_id=cpu_id)))
    return sender


def test_handler_exception_propagates():
    """A crashing handler surfaces its error instead of hanging."""
    env = Environment()
    switch, (a, b) = build_fabric(env)

    def bad_handler(ctx):
        yield from ctx.compute(cycles=1)
        raise RuntimeError("handler bug")

    switch.register_handler(1, bad_handler)
    env.process(send_active(a, 1, 0x0)(env))
    with pytest.raises(RuntimeError, match="handler bug"):
        env.run()


def test_forgotten_deallocate_leaks_and_is_observable():
    """A handler that never deallocates leaves buffers accounted in-use."""
    env = Environment()
    switch, (a, b) = build_fabric(env)

    def leaky_handler(ctx):
        yield from ctx.compute(cycles=10)
        # no deallocate

    switch.register_handler(2, leaky_handler)
    env.process(send_active(a, 2, 0x0)(env))
    env.run()
    assert switch.buffers.in_use == 1
    assert switch.buffers.stats.frees == 0


def test_buffer_exhaustion_backpressures_instead_of_dropping():
    """With every buffer leaked, further active messages queue at the
    DBA; the stream resumes as soon as one buffer frees."""
    env = Environment()
    switch, (a, b) = build_fabric(env, num_buffers=2)
    processed = []

    def hold_handler(ctx):
        # Holds its buffer until explicitly released via kernel state.
        processed.append(ctx.address)
        gate = ctx.kernel_state("gate")
        yield gate
        yield from ctx.deallocate(ctx.address + 512)

    gate = env.event()
    switch.kernel_state["gate"] = gate
    switch.register_handler(3, hold_handler)

    def sender(env):
        for i in range(3):
            yield from a.transmit(Message(
                "ep0", "sw0", size_bytes=512,
                active=ActiveHeader(handler_id=3, address=i * 512)))

    def opener(env):
        yield env.timeout(us(100))
        gate.succeed()

    env.process(sender(env))
    env.process(opener(env))
    env.run()
    # All three eventually dispatched; the third had to wait for a free
    # buffer (i.e. after the gate opened).
    assert len(processed) == 3
    assert switch.buffers.stats.peak_in_use == 2


def test_atb_conflict_from_aliasing_addresses_backpressures():
    """Two live messages whose addresses alias the direct-mapped ATB do
    not fail: the second message's dispatch stalls (backpressuring its
    input port) until the first handler deallocates the entry."""
    env = Environment()
    switch, (a, b) = build_fabric(env)
    started = []

    def slow_handler(ctx):
        started.append((ctx.address, env.now))
        yield from ctx.compute(cycles=100_000)  # 200 us at 500 MHz
        yield from ctx.deallocate(ctx.address + 512)

    switch.register_handler(4, slow_handler)

    def sender(env):
        # 0x0 and 16*512 alias to ATB entry 0.
        for address in (0x0, 16 * 512):
            yield from a.transmit(Message(
                "ep0", "sw0", size_bytes=512,
                active=ActiveHeader(handler_id=4, address=address)))

    env.process(sender(env))
    env.run()
    assert [addr for addr, _ in started] == [0x0, 16 * 512]
    # The second message could not even map until the first handler
    # finished (~200 us in).
    assert started[1][1] >= us(200)
    assert switch.buffers.in_use == 0


def test_double_free_by_handler_rejected():
    env = Environment()
    switch, (a, b) = build_fabric(env)

    def double_free_handler(ctx):
        yield from ctx.compute(cycles=1)
        yield from ctx.deallocate(ctx.address + 512)
        # Second deallocate finds nothing mapped: harmless no-op...
        yield from ctx.deallocate(ctx.address + 512)

    switch.register_handler(5, double_free_handler)
    env.process(send_active(a, 5, 0x0)(env))
    env.run()  # must not raise: release_below is idempotent on empty
    assert switch.buffers.in_use == 0


def test_direct_pool_double_free_rejected():
    """The DBA itself refuses a raw double free."""
    env = Environment()
    switch, _ = build_fabric(env)

    def worker(env):
        buffer = yield from switch.buffers.allocate()
        switch.buffers.release(buffer)
        switch.buffers.release(buffer)

    env.process(worker(env))
    with pytest.raises(BufferError):
        env.run()


def test_continuation_packet_without_dispatch_rejected():
    """A seq>0 packet for an unknown message is a protocol violation."""
    from repro.net.packet import Packet
    from repro.switch import DispatchError
    env = Environment()
    switch, (a, b) = build_fabric(env)

    def sender(env):
        packet = Packet("ep0", "sw0", payload_bytes=512,
                        active=ActiveHeader(handler_id=1, address=0x0),
                        seq=1, last=True)
        yield from a._tx_link.send(packet)

    env.process(sender(env))
    with pytest.raises(DispatchError):
        env.run()


def test_reads_past_stream_end_stall_forever_reported_as_deadlock():
    """A handler waiting for data that never comes parks (deadlock is
    the simulated hardware's real behaviour) — and the kernel now
    reports the wedged handler by name instead of draining silently."""
    env = Environment()
    switch, (a, b) = build_fabric(env)
    reached = []

    def overreader(ctx):
        yield from ctx.read(ctx.address, 512)
        reached.append("first")
        # Next region never arrives: the CPU stalls on the ATB mapping.
        yield from ctx.read(ctx.address + 512, 512)
        reached.append("second")

    switch.register_handler(6, overreader)
    env.process(send_active(a, 6, 0x0, nbytes=512)(env))
    with pytest.raises(DeadlockError) as excinfo:
        env.run()
    assert reached == ["first"]
    assert "handler" in str(excinfo.value)

"""Tests for the reusable handler patterns."""

import pytest

from repro.net import ActiveHeader, ChannelAdapter, Link, Message
from repro.sim import Environment
from repro.switch import ActiveSwitch
from repro.switch.patterns import (
    aggregate_handler,
    filter_handler,
    redirect_handler,
    stream_loop,
)


def build_fabric(env, endpoints=("src", "dst")):
    switch = ActiveSwitch(env, "sw0")
    adapters = {}
    for port, name in enumerate(endpoints):
        to_switch = Link(env, f"{name}->sw0")
        from_switch = Link(env, f"sw0->{name}")
        adapter = ChannelAdapter(env, name)
        adapter.attach(tx_link=to_switch, rx_link=from_switch)
        switch.connect(port, tx_link=from_switch, rx_link=to_switch)
        switch.routing.add(name, port)
        adapters[name] = adapter
    return switch, adapters


def send(adapter, handler_id, size, payload=None, address=0):
    def sender(env):
        yield from adapter.transmit(Message(
            adapter.node_id, "sw0", size_bytes=size,
            active=ActiveHeader(handler_id=handler_id, address=address),
            payload=payload))
    return sender


def test_stream_loop_releases_all_buffers():
    env = Environment()
    switch, adapters = build_fabric(env)
    seen = []

    def handler(ctx):
        def process(ctx, offset, chunk):
            seen.append((offset, chunk))
            yield from ctx.compute(cycles=1)
        yield from stream_loop(ctx, process)

    switch.register_handler(1, handler)
    env.process(send(adapters["src"], 1, 1300)(env))
    env.run()
    assert seen == [(0, 512), (512, 512), (1024, 276)]
    assert switch.buffers.in_use == 0


def test_stream_loop_without_process_data():
    env = Environment()
    switch, adapters = build_fabric(env)

    def handler(ctx):
        yield from stream_loop(ctx)

    switch.register_handler(1, handler)
    env.process(send(adapters["src"], 1, 700)(env))
    env.run()
    assert switch.buffers.in_use == 0


def test_filter_handler_forwards_selection():
    env = Environment()
    switch, adapters = build_fabric(env)

    def selector(payload):
        kept = [x for x in payload if x % 2 == 0]
        return len(kept) * 4, kept

    switch.register_handler(1, filter_handler("dst", 2.0, selector))
    env.process(send(adapters["src"], 1, 512,
                     payload=list(range(128)))(env))

    results = []

    def receiver(env):
        message = yield adapters["dst"].recv_queue.get()
        results.append(message)

    done = env.process(receiver(env))
    env.run(until=done)
    assert results[0].payload == list(range(0, 128, 2))
    assert results[0].size_bytes == 64 * 4
    assert switch.buffers.in_use == 0


def test_filter_handler_sends_nothing_when_empty():
    env = Environment()
    switch, adapters = build_fabric(env)
    switch.register_handler(1, filter_handler("dst", 1.0,
                                              lambda payload: (0, None)))
    env.process(send(adapters["src"], 1, 256, payload=[1])(env))
    env.run()
    assert adapters["dst"].traffic.messages_in == 0
    assert switch.buffers.in_use == 0


def test_redirect_handler_passthrough():
    env = Environment()
    switch, adapters = build_fabric(env)
    switch.register_handler(1, redirect_handler("dst"))
    env.process(send(adapters["src"], 1, 1024, payload=b"data")(env))

    def receiver(env):
        return (yield adapters["dst"].recv_queue.get())

    done = env.process(receiver(env))
    message = env.run(until=done)
    assert message.size_bytes == 1024
    assert message.payload == b"data"
    env.run()
    assert switch.buffers.in_use == 0


def test_aggregate_handler_combines_and_finishes():
    env = Environment()
    switch, adapters = build_fabric(env)
    switch.kernel_state["total"] = 0
    switch.kernel_state["expected"] = 3

    def finish(ctx, state):
        yield from ctx.send("dst", 16, payload=state)

    switch.register_handler(1, aggregate_handler(
        state_key="total",
        combine=lambda state, payload: state + payload,
        expected_key="expected",
        count_key="count",
        finish=finish))

    def sender(env):
        for i, value in enumerate((10, 20, 12)):
            yield from adapters["src"].transmit(Message(
                "src", "sw0", size_bytes=64,
                active=ActiveHeader(handler_id=1, address=i * 512),
                payload=value))

    env.process(sender(env))

    def receiver(env):
        return (yield adapters["dst"].recv_queue.get())

    done = env.process(receiver(env))
    message = env.run(until=done)
    assert message.payload == 42
    assert adapters["dst"].traffic.messages_in <= 1


def test_filter_charges_compute_cycles():
    env = Environment()
    switch, adapters = build_fabric(env)
    switch.register_handler(1, filter_handler("dst", 4.0,
                                              lambda p: (0, None)))
    env.process(send(adapters["src"], 1, 512, payload=[])(env))
    env.run()
    # 512 bytes * 4 cycles at 2 ns/cycle.
    assert switch.cpus[0].accounting.busy_ps >= 512 * 4 * 2000


# ----------------------------------------------------------------------
# Property tests: the canonical loop for arbitrary message sizes
# ----------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st


@given(size=st.integers(min_value=1, max_value=6 * 512))
@settings(max_examples=25, deadline=None)
def test_property_stream_loop_any_size_releases_everything(size):
    env = Environment()
    switch, adapters = build_fabric(env)
    chunks = []

    def handler(ctx):
        def process(ctx, offset, chunk):
            chunks.append(chunk)
            yield from ctx.compute(cycles=1)
        yield from stream_loop(ctx, process)

    switch.register_handler(1, handler)
    env.process(send(adapters["src"], 1, size)(env))
    env.run()
    assert sum(chunks) == size
    assert all(c <= 512 for c in chunks)
    assert switch.buffers.in_use == 0

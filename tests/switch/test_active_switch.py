"""Integration tests: active messages dispatched end to end."""

import pytest

from repro.net import ActiveHeader, ChannelAdapter, Link, Message
from repro.sim import Environment
from repro.sim.units import ns
from repro.switch import ActiveSwitch, ActiveSwitchConfig, DispatchError


def build_active_fabric(env, num_cpus=1, num_endpoints=2):
    switch = ActiveSwitch(env, "sw0",
                          active_config=ActiveSwitchConfig(num_cpus=num_cpus))
    adapters = []
    for i in range(num_endpoints):
        name = f"ep{i}"
        to_switch = Link(env, f"{name}->sw0")
        from_switch = Link(env, f"sw0->{name}")
        adapter = ChannelAdapter(env, name)
        adapter.attach(tx_link=to_switch, rx_link=from_switch)
        switch.connect(i, tx_link=from_switch, rx_link=to_switch)
        switch.routing.add(name, i)
        adapters.append(adapter)
    return switch, adapters


def test_handler_invoked_by_active_message():
    env = Environment()
    switch, (a, b) = build_active_fabric(env)
    invocations = []

    def echo_handler(ctx):
        invocations.append(ctx.address)
        yield from ctx.compute(cycles=10)
        yield from ctx.deallocate(ctx.address + 512)

    switch.register_handler(1, echo_handler)

    def sender(env):
        yield from a.transmit(Message(
            "ep0", "sw0", size_bytes=128,
            active=ActiveHeader(handler_id=1, address=0x4000)))

    env.process(sender(env))
    env.run()
    assert invocations == [0x4000]
    assert switch.stats.delivered_local == 1
    assert switch.buffers.in_use == 0  # handler deallocated


def test_handler_reads_stream_with_valid_bit_stalls():
    env = Environment()
    switch, (a, b) = build_active_fabric(env)
    read_done = []

    def stream_handler(ctx):
        yield from ctx.read(ctx.address, 512)
        read_done.append(env.now)
        yield from ctx.deallocate(ctx.address + 512)

    switch.register_handler(2, stream_handler)

    def sender(env):
        yield from a.transmit(Message(
            "ep0", "sw0", size_bytes=512,
            active=ActiveHeader(handler_id=2, address=0x8000)))

    env.process(sender(env))
    env.run()
    assert len(read_done) == 1
    # The read must wait for the full 512 B to stream into the buffer.
    assert read_done[0] >= ns(512)
    assert switch.cpus[0].accounting.stall_ps > 0


def test_handler_sends_reply_to_host():
    env = Environment()
    switch, (a, b) = build_active_fabric(env)

    def reply_handler(ctx):
        yield from ctx.read(ctx.address, 64)
        yield from ctx.compute(cycles=100)
        yield from ctx.send("ep1", 64, payload="result")
        yield from ctx.deallocate(ctx.address + 512)

    switch.register_handler(3, reply_handler)

    def sender(env):
        yield from a.transmit(Message(
            "ep0", "sw0", size_bytes=64,
            active=ActiveHeader(handler_id=3, address=0x0)))

    def receiver(env):
        return (yield b.recv_queue.get())

    env.process(sender(env))
    proc = env.process(receiver(env))
    message = env.run(until=proc)
    assert message.payload == "result"
    assert message.src == "sw0"
    assert switch.buffers.in_use == 0


def test_multi_packet_stream_processed_in_order():
    env = Environment()
    switch, (a, b) = build_active_fabric(env)
    chunks = []

    def stream_handler(ctx):
        total = 1536  # 3 packets
        offset = 0
        while offset < total:
            yield from ctx.read(ctx.address + offset, 512)
            chunks.append(offset)
            offset += 512
            yield from ctx.deallocate(ctx.address + offset)

    switch.register_handler(4, stream_handler)

    def sender(env):
        yield from a.transmit(Message(
            "ep0", "sw0", size_bytes=1536,
            active=ActiveHeader(handler_id=4, address=0x0)))

    env.process(sender(env))
    env.run()
    assert chunks == [0, 512, 1024]
    assert switch.buffers.in_use == 0


def test_unknown_handler_id_raises():
    env = Environment()
    switch, (a, b) = build_active_fabric(env)

    def sender(env):
        yield from a.transmit(Message(
            "ep0", "sw0", size_bytes=64,
            active=ActiveHeader(handler_id=9, address=0x0)))

    env.process(sender(env))
    with pytest.raises(DispatchError):
        env.run()


def test_cpu_id_pins_handler_to_core():
    env = Environment()
    switch, (a, b) = build_active_fabric(env, num_cpus=4)
    ran_on = []

    def pin_handler(ctx):
        ran_on.append(ctx.cpu.cpu_id)
        yield from ctx.compute(cycles=1)
        yield from ctx.deallocate(ctx.address + 512)

    switch.register_handler(5, pin_handler)

    def sender(env):
        for cpu_id in (2, 0, 3):
            yield from a.transmit(Message(
                "ep0", "sw0", size_bytes=64,
                active=ActiveHeader(handler_id=5, address=0x0,
                                    cpu_id=cpu_id)))

    env.process(sender(env))
    env.run()
    assert ran_on == [2, 0, 3]


def test_concurrent_handlers_on_multiple_cpus():
    env = Environment()
    switch, (a, b) = build_active_fabric(env, num_cpus=2)
    spans = []

    def slow_handler(ctx):
        start = env.now
        yield from ctx.compute(cycles=10_000)  # 20 us at 500 MHz
        spans.append((start, env.now))
        yield from ctx.deallocate(ctx.address + 512)

    switch.register_handler(6, slow_handler)

    def sender(env):
        for i in range(2):
            yield from a.transmit(Message(
                "ep0", "sw0", size_bytes=64,
                active=ActiveHeader(handler_id=6, address=i * 512)))

    env.process(sender(env))
    env.run()
    assert len(spans) == 2
    # With two CPUs the handlers overlap in time.
    (s0, e0), (s1, e1) = sorted(spans)
    assert s1 < e0


def test_single_cpu_serializes_handlers():
    env = Environment()
    switch, (a, b) = build_active_fabric(env, num_cpus=1)
    spans = []

    def slow_handler(ctx):
        start = env.now
        yield from ctx.compute(cycles=10_000)
        spans.append((start, env.now))
        yield from ctx.deallocate(ctx.address + 512)

    switch.register_handler(7, slow_handler)

    def sender(env):
        for i in range(2):
            yield from a.transmit(Message(
                "ep0", "sw0", size_bytes=64,
                active=ActiveHeader(handler_id=7, address=i * 512)))

    env.process(sender(env))
    env.run()
    (s0, e0), (s1, e1) = sorted(spans)
    assert s1 >= e0  # no overlap on one core


def test_kernel_state_shared_across_invocations():
    env = Environment()
    switch, (a, b) = build_active_fabric(env)
    switch.kernel_state["count"] = 0

    def counting_handler(ctx):
        yield from ctx.compute(cycles=5)
        ctx.set_kernel_state("count", ctx.kernel_state("count") + 1)
        yield from ctx.deallocate(ctx.address + 512)

    switch.register_handler(8, counting_handler)

    def sender(env):
        for i in range(3):
            yield from a.transmit(Message(
                "ep0", "sw0", size_bytes=64,
                active=ActiveHeader(handler_id=8, address=0x0)))

    env.process(sender(env))
    env.run()
    assert switch.kernel_state["count"] == 3


def test_non_active_traffic_unaffected_by_active_switch():
    env = Environment()
    switch, (a, b) = build_active_fabric(env)

    def sender(env):
        yield from a.transmit(Message("ep0", "ep1", 256))

    def receiver(env):
        return (yield b.recv_queue.get())

    env.process(sender(env))
    proc = env.process(receiver(env))
    message = env.run(until=proc)
    assert message.size_bytes == 256
    assert switch.stats.forwarded == 1
    assert switch.stats.delivered_local == 0


def test_active_config_validation():
    with pytest.raises(ValueError):
        ActiveSwitchConfig(num_cpus=0)
    with pytest.raises(ValueError):
        ActiveSwitchConfig(num_cpus=5)
    with pytest.raises(ValueError):
        ActiveSwitchConfig(num_buffers=1)


def test_handler_sees_full_message_size_from_first_packet():
    """Regression: a handler invoked by packet 0 of a multi-packet
    message must see the logical message size, not the first packet's
    512 bytes (it deallocates and exits early otherwise, leaking the
    remaining stream's buffers)."""
    env = Environment()
    switch, (a, b) = build_active_fabric(env)
    seen = []

    def whole_stream_handler(ctx):
        size = ctx.message.size_bytes
        seen.append(size)
        offset = 0
        while offset < size:
            chunk = min(512, size - offset)
            yield from ctx.read(ctx.address + offset, chunk)
            offset += chunk
        yield from ctx.deallocate(
            ctx.address + ((size + 511) // 512) * 512)

    switch.register_handler(11, whole_stream_handler)

    def sender(env):
        yield from a.transmit(Message(
            "ep0", "sw0", size_bytes=1300,
            active=ActiveHeader(handler_id=11, address=0x0)))

    env.process(sender(env))
    env.run()
    assert seen == [1300]
    assert switch.buffers.in_use == 0
